"""Legacy setup shim: this environment's setuptools lacks bdist_wheel, so
editable installs go through ``pip install -e . --no-use-pep517``."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
