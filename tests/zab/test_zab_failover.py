"""Zab epoch changes: leader faults, leader sync, early-commit buffering.

Drives the epoch-bump path (FOLLOWER-INFO / NEW-EPOCH with history
re-proposal) on the shared :class:`ClusterHarness` fixture, plus the
commit-before-proposal reordering unit tests for the `_on_commit` buffer.
"""

import pytest

from repro.common.config import ProtocolName
from repro.faults.injector import FaultSchedule
from repro.protocols.zab.replica import Ack, CommitZab, Proposal
from repro.smr.messages import Batch, Request
from tests.conftest import make_cluster, make_harness


def run_with_crash(crash_at, downtime, duration=8_000.0, victim=0):
    harness = make_harness(ProtocolName.ZAB)
    harness.arm(FaultSchedule().crash_for(crash_at, victim, downtime))
    driver = harness.drive(duration_ms=duration)
    return harness, driver


class TestEpochChange:
    def test_progress_resumes_after_leader_crash(self):
        harness, driver = run_with_crash(1_000.0, 2_000.0)
        harness.checker.assert_safe()
        assert driver.throughput.total > 500
        live_views = {r.view for r in harness.replicas if not r.crashed}
        assert max(live_views) >= 1

    def test_commits_continue_after_failover_settles(self):
        harness, driver = run_with_crash(1_000.0, 2_000.0)
        last_commit = max(c.completions[-1][1]
                          for c in harness.runtime.clients
                          if c.completions)
        assert last_commit > 7_000.0, \
            f"commits stopped at t={last_commit:.0f} ms"

    def test_acked_history_survives_the_epoch_bump(self):
        """The new leader syncs from the freshest acked prefix: every
        client observes gap-free monotone timestamps across epochs."""
        harness, driver = run_with_crash(1_500.0, 2_000.0)
        harness.checker.assert_safe()
        assert harness.checker.violations() == []
        for client in harness.runtime.clients:
            timestamps = [rid[1] for _, _, rid in client.completions]
            assert timestamps == list(range(1, len(timestamps) + 1))

    def test_deposed_leader_rejoins_as_follower(self):
        harness, _ = run_with_crash(1_000.0, 1_000.0, duration=6_000.0)
        r0 = harness.replica(0)
        assert r0.view >= 1
        assert not r0.is_leader
        assert r0.committed_requests > 0

    def test_quorum_blackout_recovers(self):
        harness = make_harness(ProtocolName.ZAB)
        harness.arm(FaultSchedule()
                    .crash_for(1_500.0, 1, 1_500.0)
                    .crash_for(1_500.0, 2, 1_500.0))
        driver = harness.drive(duration_ms=8_000.0)
        harness.checker.assert_safe()
        last_commit = max(c.completions[-1][1]
                          for c in harness.runtime.clients
                          if c.completions)
        assert last_commit > 7_000.0

    def test_no_elections_in_fault_free_run(self):
        harness = make_harness(ProtocolName.ZAB)
        harness.drive(duration_ms=3_000.0)
        assert all(r.elections_started == 0 for r in harness.replicas)
        assert all(r.view == 0 for r in harness.replicas)


def _batch(client, timestamp):
    return Batch((Request(op=("noop",), timestamp=timestamp, client=client,
                          size_bytes=8),))


class TestEarlyCommitBuffering:
    """The `_on_commit` bugfix: a COMMITZAB that outruns its PROPOSAL is
    buffered and delivered when the proposal lands, instead of being
    dropped (which permanently lost the zxid on that follower)."""

    def make_follower(self):
        runtime = make_cluster(ProtocolName.ZAB, num_clients=1)
        return runtime.replica(1)

    def test_commit_before_proposal_is_buffered_then_delivered(self):
        follower = self.make_follower()
        batch = _batch(0, 1)
        follower._on_commit(CommitZab(0, 1))
        assert follower.ex == 0  # nothing lost, nothing delivered yet
        follower._on_proposal("r0", Proposal(0, 1, batch))
        assert follower.ex == 1
        assert [rid for sn, rid in follower.execution_trace] == [(0, 1)]

    def test_in_order_delivery_still_works(self):
        follower = self.make_follower()
        follower._on_proposal("r0", Proposal(0, 1, _batch(0, 1)))
        assert follower.ex == 0  # acked, awaiting commit
        follower._on_commit(CommitZab(0, 1))
        assert follower.ex == 1

    def test_duplicate_commit_is_harmless(self):
        follower = self.make_follower()
        follower._on_commit(CommitZab(0, 1))
        follower._on_proposal("r0", Proposal(0, 1, _batch(0, 1)))
        follower._on_commit(CommitZab(0, 1))
        assert follower.ex == 1
        assert follower.committed_requests == 1

    def test_interleaved_reordering_across_slots(self):
        """Commit 2 arrives before proposal 2 while slot 1 flows in
        order: both slots must execute, in order."""
        follower = self.make_follower()
        follower._on_proposal("r0", Proposal(0, 1, _batch(0, 1)))
        follower._on_commit(CommitZab(0, 2))      # outran proposal 2
        follower._on_commit(CommitZab(0, 1))
        assert follower.ex == 1
        follower._on_proposal("r0", Proposal(0, 2, _batch(1, 1)))
        assert follower.ex == 2
        assert [rid for sn, rid in follower.execution_trace] == \
            [(0, 1), (1, 1)]
