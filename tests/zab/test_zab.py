"""Tests for the Zab baseline (ZooKeeper's native protocol)."""

import pytest

from repro.common.config import ProtocolName
from repro.faults.checker import SafetyChecker
from tests.conftest import make_cluster, run_workload


@pytest.fixture
def zab_t1():
    return make_cluster(ProtocolName.ZAB, t=1)


class TestCommonCase:
    def test_uses_2t_plus_1_replicas(self, zab_t1):
        assert zab_t1.config.n == 3

    def test_requests_commit(self, zab_t1):
        driver = run_workload(zab_t1)
        assert driver.throughput.total > 100

    def test_total_order(self, zab_t1):
        run_workload(zab_t1)
        assert SafetyChecker(zab_t1).violations() == []

    def test_leader_ships_to_all_followers(self, zab_t1):
        """The fact behind Figure 10: the Zab leader sends every proposal
        to all 2t followers (vs t for XPaxos)."""
        leader = zab_t1.replica(0)
        assert len(leader.follower_ids()) == 2

    def test_all_replicas_deliver(self, zab_t1):
        run_workload(zab_t1)
        counts = [r.committed_requests for r in zab_t1.replicas]
        assert min(counts) > 0.9 * max(counts)

    def test_commit_requires_quorum_ack(self, zab_t1):
        """A proposal only commits after a majority of acks."""
        # Partition the leader from both followers: the isolated leader
        # can never commit anything itself.  (The majority side elects a
        # new epoch and moves on -- that is the failover path's job.)
        zab_t1.network.partitions.block_pair("r0", "r1")
        zab_t1.network.partitions.block_pair("r0", "r2")
        run_workload(zab_t1, duration_ms=1_000.0, warmup_ms=0.0)
        assert zab_t1.replica(0).committed_requests == 0
        # Any progress the cluster made happened in a fresher epoch.
        assert max(r.view for r in zab_t1.replicas) >= 1

    def test_minority_partition_does_not_block(self, zab_t1):
        zab_t1.network.partitions.block_pair("r0", "r2")
        driver = run_workload(zab_t1, duration_ms=1_000.0)
        assert driver.throughput.total > 0


class TestLeaderBandwidthProfile:
    def test_zab_leader_sends_more_bytes_than_xpaxos_primary(self):
        """Zab leader uplink carries ~2x the XPaxos primary's payload
        bytes -- the root cause of Figure 10's peak-throughput gap."""
        from repro.net.bandwidth import BandwidthModel
        from repro.common.config import ClusterConfig, WorkloadConfig
        from repro.protocols.registry import build_cluster
        from repro.workloads.clients import ClosedLoopDriver
        from tests.conftest import FAST_TIMEOUTS

        def leader_bytes(protocol):
            bw = BandwidthModel()
            config = ClusterConfig(t=1, protocol=protocol,
                                   sites=("CA", "VA", "JP"),
                                   **FAST_TIMEOUTS)
            runtime = build_cluster(config, num_clients=4, bandwidth=bw,
                                    seed=3)
            driver = ClosedLoopDriver(
                runtime, WorkloadConfig(num_clients=4, request_size=1024,
                                        duration_ms=2_000.0,
                                        warmup_ms=100.0))
            driver.run()
            return bw.bytes_sent("r0"), driver.throughput.total

        zab_bytes, zab_ops = leader_bytes(ProtocolName.ZAB)
        xp_bytes, xp_ops = leader_bytes(ProtocolName.XPAXOS)
        assert zab_ops > 0 and xp_ops > 0
        # Normalize per committed op: Zab's leader sends ~2x.
        assert zab_bytes / zab_ops > 1.5 * (xp_bytes / xp_ops)
