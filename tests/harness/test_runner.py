"""Tests for the experiment runner."""

import pytest

from repro.common.config import ClusterConfig, ProtocolName, WorkloadConfig
from repro.crypto.costs import CostModel
from repro.harness.runner import ExperimentRunner
from repro.net.latency import LatencyModel


def lan_runner(**kwargs):
    return ExperimentRunner(
        latency_factory=lambda seed: LatencyModel.uniform(
            ["CA", "VA", "JP", "EU", "OR", "AU", "SG"], one_way_ms=1.0,
            seed=seed),
        cost_model=CostModel.free(),
        **kwargs,
    )


def fast_config(protocol=ProtocolName.XPAXOS, **overrides):
    return ClusterConfig(t=1, protocol=protocol, delta_ms=50.0,
                         request_retransmit_ms=500.0,
                         view_change_timeout_ms=1_000.0,
                         batch_timeout_ms=2.0, **overrides)


class TestRunPoint:
    def test_result_fields_populated(self):
        runner = lan_runner()
        workload = WorkloadConfig(num_clients=4, request_size=128,
                                  duration_ms=1_000.0, warmup_ms=100.0)
        result = runner.run_point(fast_config(), workload)
        assert result.protocol == "xpaxos"
        assert result.num_clients == 4
        assert result.throughput_kops > 0
        assert result.mean_latency_ms > 0
        assert result.committed > 0
        assert result.timeouts == 0
        assert len(result.cpu_by_replica) == 3

    def test_cpu_accounting_nonzero_with_cost_model(self):
        runner = ExperimentRunner(
            latency_factory=lambda seed: LatencyModel.uniform(
                ["CA", "VA", "JP"], one_way_ms=1.0, seed=seed),
            cost_model=CostModel())
        workload = WorkloadConfig(num_clients=4, request_size=128,
                                  duration_ms=1_000.0, warmup_ms=100.0)
        result = runner.run_point(fast_config(), workload)
        assert result.cpu_percent_most_loaded > 0

    def test_deterministic_across_identical_runs(self):
        workload = WorkloadConfig(num_clients=3, request_size=128,
                                  duration_ms=800.0, warmup_ms=100.0)
        a = lan_runner(seed=5).run_point(fast_config(), workload)
        b = lan_runner(seed=5).run_point(fast_config(), workload)
        assert a.throughput_kops == b.throughput_kops
        assert a.mean_latency_ms == b.mean_latency_ms


class TestSweep:
    def test_throughput_increases_with_clients(self):
        runner = lan_runner()
        workload = WorkloadConfig(num_clients=1, request_size=128,
                                  duration_ms=1_000.0, warmup_ms=100.0)
        points = runner.sweep_clients(fast_config(), [1, 8, 32], workload)
        throughputs = [p.result.throughput_kops for p in points]
        assert throughputs[2] > throughputs[0]

    def test_sweep_preserves_all_workload_fields(self):
        # Regression: sweep_clients used to hand-copy fields, silently
        # dropping any WorkloadConfig field added later.  With
        # dataclasses.replace only num_clients and seed may differ.
        import dataclasses

        runner = lan_runner()
        base = WorkloadConfig(num_clients=1, request_size=256, reply_size=64,
                              duration_ms=400.0, warmup_ms=50.0,
                              client_site="CA", seed=9)
        seen = []
        original = runner.run_point

        def spy(config, workload):
            seen.append(workload)
            return original(config, workload)

        runner.run_point = spy
        runner.sweep_clients(fast_config(), [1, 2], base)
        assert [w.num_clients for w in seen] == [1, 2]
        for workload in seen:
            for f in dataclasses.fields(WorkloadConfig):
                if f.name == "num_clients":
                    continue
                expected = (base.seed + workload.num_clients
                            if f.name == "seed" else getattr(base, f.name))
                assert getattr(workload, f.name) == expected, f.name

    def test_peak_and_format(self):
        runner = lan_runner()
        workload = WorkloadConfig(num_clients=1, request_size=128,
                                  duration_ms=500.0, warmup_ms=50.0)
        points = runner.sweep_clients(fast_config(), [1, 4], workload)
        assert ExperimentRunner.peak_throughput(points) == max(
            p.result.throughput_kops for p in points)
        text = ExperimentRunner.format_curve(points)
        assert "clients" in text and len(text.splitlines()) == 3
