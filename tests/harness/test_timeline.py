"""Tests for the fault-timeline harness (the Figure 9 machinery)."""

import pytest

from repro.common.config import ClusterConfig, ProtocolName, WorkloadConfig
from repro.crypto.costs import CostModel
from repro.faults.injector import FaultSchedule
from repro.harness.runner import ExperimentRunner
from repro.harness.timeline import run_fault_timeline, _zero_gaps
from repro.net.latency import LatencyModel


def runner():
    return ExperimentRunner(
        latency_factory=lambda seed: LatencyModel.uniform(
            ["CA", "VA", "JP"], one_way_ms=1.0, seed=seed),
        cost_model=CostModel.free())


def config():
    return ClusterConfig(t=1, protocol=ProtocolName.XPAXOS, delta_ms=50.0,
                         request_retransmit_ms=300.0,
                         view_change_timeout_ms=600.0, batch_timeout_ms=2.0)


class TestTimeline:
    def test_crash_produces_gap_then_recovery(self):
        workload = WorkloadConfig(num_clients=4, request_size=128,
                                  duration_ms=8_000.0, warmup_ms=100.0)
        schedule = FaultSchedule().crash_for(2_000.0, 1, 1_000.0)
        result = run_fault_timeline(runner(), config(), workload, schedule,
                                    window_ms=200.0)
        assert result.committed > 500
        # Views rotated at least once per affected replica.
        assert max(result.final_views.values()) >= 1
        # Throughput resumed: windows exist near the end of the run.
        last_window = max(start for start, _ in result.throughput_series)
        assert last_window >= 7_000.0

    def test_fault_free_timeline_has_no_gaps(self):
        workload = WorkloadConfig(num_clients=4, request_size=128,
                                  duration_ms=3_000.0, warmup_ms=100.0)
        result = run_fault_timeline(runner(), config(), workload,
                                    FaultSchedule(), window_ms=200.0)
        assert result.longest_gap_ms() == 0.0
        assert all(v == 0 for v in result.final_views.values())


class TestZeroGaps:
    def test_interior_gap_measured(self):
        series = [(0.0, 1.0), (200.0, 1.0), (800.0, 1.0)]
        gaps = _zero_gaps(series, 200.0,
                          WorkloadConfig(num_clients=1, duration_ms=1_000.0,
                                         warmup_ms=0.0))
        assert gaps == [400.0]  # windows 400 and 600 empty

    def test_no_gaps(self):
        series = [(0.0, 1.0), (200.0, 1.0)]
        assert _zero_gaps(series, 200.0,
                          WorkloadConfig(num_clients=1,
                                         duration_ms=400.0,
                                         warmup_ms=0.0)) == []

    def test_empty_series(self):
        assert _zero_gaps([], 200.0,
                          WorkloadConfig(num_clients=1,
                                         duration_ms=400.0,
                                         warmup_ms=0.0)) == []
