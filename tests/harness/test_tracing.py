"""Tests for message tracing and sequence-diagram rendering."""

import pytest

from repro.harness.tracing import (
    MessageTracer,
    TraceEvent,
    message_complexity,
    render_sequence_diagram,
)
from tests.conftest import make_cluster, run_workload


class TestTracer:
    def test_records_protocol_messages(self, xpaxos_t1):
        tracer = MessageTracer.attach(xpaxos_t1.network)
        run_workload(xpaxos_t1, duration_ms=300.0)
        counts = tracer.count_by_kind()
        # The t=1 fast path: Replicate in, FastPrepare out, FastCommit
        # back, ReplyMsg to the client, LazyCommit to the passive.
        for kind in ("Replicate", "FastPrepare", "FastCommit",
                     "ReplyMsg", "LazyCommit"):
            assert counts.get(kind, 0) > 0, counts

    def test_pause_resume(self, xpaxos_t1):
        tracer = MessageTracer.attach(xpaxos_t1.network)
        tracer.pause()
        run_workload(xpaxos_t1, duration_ms=200.0)
        assert tracer.events == []
        tracer.resume()
        from repro.common.config import WorkloadConfig
        from repro.workloads.clients import ClosedLoopDriver

        driver = ClosedLoopDriver(
            xpaxos_t1, WorkloadConfig(num_clients=3, request_size=32,
                                      duration_ms=500.0, warmup_ms=400.0))
        driver.start()
        xpaxos_t1.sim.run(until=500.0)
        assert tracer.events

    def test_filter_by_kind_and_participants(self, xpaxos_t1):
        tracer = MessageTracer.attach(xpaxos_t1.network)
        run_workload(xpaxos_t1, duration_ms=300.0)
        only_prepares = tracer.filter(kinds={"FastPrepare"})
        assert only_prepares
        assert all(e.kind == "FastPrepare" for e in only_prepares)
        assert all(e.src == "r0" and e.dst == "r1" for e in only_prepares)
        replicas_only = tracer.filter(participants={"r0", "r1"})
        assert all(e.src in ("r0", "r1") and e.dst in ("r0", "r1")
                   for e in replicas_only)

    def test_filter_time_window_and_limit(self, xpaxos_t1):
        tracer = MessageTracer.attach(xpaxos_t1.network)
        run_workload(xpaxos_t1, duration_ms=400.0)
        window = tracer.filter(start_ms=100.0, end_ms=200.0)
        assert all(100.0 <= e.time <= 200.0 for e in window)
        assert len(tracer.filter(limit=5)) == 5

    def test_clear(self, xpaxos_t1):
        tracer = MessageTracer.attach(xpaxos_t1.network)
        run_workload(xpaxos_t1, duration_ms=200.0)
        tracer.clear()
        assert tracer.events == []


class TestSequenceDiagram:
    def test_renders_figure2b_pattern(self, xpaxos_t1):
        """The t=1 common case renders as the paper's Figure 2b:
        REPLICATE, COMMIT (m0), COMMIT (m1), REPLY."""
        tracer = MessageTracer.attach(xpaxos_t1.network)
        client = xpaxos_t1.clients[0]
        client.propose("op", size_bytes=16)
        xpaxos_t1.sim.run(until=500.0)
        events = tracer.filter(
            kinds={"Replicate", "FastPrepare", "FastCommit", "ReplyMsg"},
            participants={"c0", "r0", "r1"}, limit=4)
        diagram = render_sequence_diagram(events,
                                          participants=["c0", "r0", "r1"])
        lines = diagram.splitlines()
        assert "c0" in lines[0] and "r1" in lines[0]
        assert "Replicate" in diagram
        assert "FastPrepare" in diagram
        assert "FastCommit" in diagram
        assert "ReplyMsg" in diagram
        # Message order matches Figure 2b.
        order = [e.kind for e in events]
        assert order == ["Replicate", "FastPrepare", "FastCommit",
                         "ReplyMsg"]

    def test_arrow_directions(self):
        events = [
            TraceEvent(1.0, "a", "b", "Ping", None),
            TraceEvent(2.0, "b", "a", "Pong", None),
        ]
        diagram = render_sequence_diagram(events, participants=["a", "b"])
        lines = diagram.splitlines()
        assert ">" in lines[2]   # a -> b
        assert "<" in lines[3]   # b -> a

    def test_unknown_participants_skipped(self):
        events = [TraceEvent(1.0, "x", "y", "Msg", None)]
        diagram = render_sequence_diagram(events, participants=["a", "b"])
        assert "Msg" not in diagram


class TestMessageComplexity:
    def test_xpaxos_t1_has_cft_like_complexity(self, xpaxos_t1):
        """XPaxos's replica-to-replica message count per batch is 2 for
        t = 1 (FastPrepare + FastCommit) -- 'roughly speaking, the message
        pattern ... of state-of-the-art CFT protocols' (Section 4.1)."""
        tracer = MessageTracer.attach(xpaxos_t1.network)
        driver = run_workload(xpaxos_t1, duration_ms=500.0)
        counts = tracer.count_by_kind()
        batches = counts.get("FastPrepare", 0)
        assert batches > 0
        assert counts.get("FastCommit", 0) == pytest.approx(batches, abs=2)

    def test_complexity_helper(self, xpaxos_t1):
        tracer = MessageTracer.attach(xpaxos_t1.network)
        driver = run_workload(xpaxos_t1, duration_ms=500.0)
        per_op = message_complexity(tracer, driver.throughput.total)
        assert per_op > 0
        with pytest.raises(ValueError):
            message_complexity(tracer, 0)
