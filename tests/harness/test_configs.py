"""Tests for the Table 4 placement helpers."""

import pytest

from repro.common.config import ProtocolName
from repro.common.errors import ConfigurationError
from repro.harness.configs import (
    common_case_sites,
    paper_config,
    replica_placement_table,
)


class TestTable4:
    def test_t1_placement_matches_paper(self):
        table = replica_placement_table(t=1)
        # Table 4: every protocol's primary is in CA; XPaxos has its
        # follower in VA and passive in JP; PBFT/Zyzzyva add EU.
        assert table["xpaxos"] == ("CA", "VA", "JP")
        assert table["paxos"] == ("CA", "VA", "JP")
        assert table["zab"] == ("CA", "VA", "JP")
        assert table["pbft"] == ("CA", "VA", "JP", "EU")
        assert table["zyzzyva"] == ("CA", "VA", "JP", "EU")

    def test_t2_placement_has_seven_sites_for_bft(self):
        table = replica_placement_table(t=2)
        assert len(table["pbft"]) == 7
        assert len(table["xpaxos"]) == 5

    def test_unsupported_t_rejected(self):
        with pytest.raises(ConfigurationError):
            replica_placement_table(t=3)


class TestCommonCaseSites:
    def test_xpaxos_t1_common_case_is_ca_va(self):
        assert common_case_sites(ProtocolName.XPAXOS, 1) == ("CA", "VA")

    def test_pbft_t1_common_case_is_three_sites(self):
        assert common_case_sites(ProtocolName.PBFT, 1) == \
            ("CA", "VA", "JP")

    def test_zyzzyva_uses_all(self):
        assert len(common_case_sites(ProtocolName.ZYZZYVA, 1)) == 4


class TestPaperConfig:
    def test_defaults(self):
        config = paper_config(ProtocolName.XPAXOS)
        assert config.n == 3
        assert config.batch_size == 20
        assert config.delta_ms == 1250.0
        assert config.sites == ("CA", "VA", "JP")
