"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.protocol == "xpaxos"
        assert args.clients == [8, 32, 96]

    def test_tables_requires_which(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tables"])

    def test_invalid_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--protocol", "raft"])


class TestCommands:
    def test_reliability_command(self, capsys):
        code = main(["reliability", "--nines-benign", "4",
                     "--nines-correct", "3", "--nines-synchrony", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "CFT=3  XPaxos=5  BFT=7" in out

    def test_tables_command(self, capsys):
        code = main(["tables", "--which", "7"])
        assert code == 0
        out = capsys.readouterr().out
        assert "9avail" in out

    def test_bench_command_small(self, capsys):
        code = main(["bench", "--protocol", "paxos", "--clients", "4",
                     "--duration", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "paxos" in out
        assert "kops/s" in out

    def test_compare_command_small(self, capsys):
        code = main(["compare", "--clients", "4", "--duration", "1"])
        assert code == 0
        out = capsys.readouterr().out
        for protocol in ("xpaxos", "paxos", "pbft", "zyzzyva", "zab"):
            assert protocol in out

    def test_faults_command_small(self, capsys):
        code = main(["faults", "--clients", "8", "--duration", "40"])
        assert code == 0
        out = capsys.readouterr().out
        assert "view changes" in out
        assert "longest outage" in out
