"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.protocol == "xpaxos"
        assert args.clients == [8, 32, 96]

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.output == "BENCH_perf.json"
        assert args.events > 0 and args.messages > 0

    def test_tables_requires_which(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tables"])

    def test_invalid_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--protocol", "raft"])

    def test_scenarios_defaults(self):
        args = build_parser().parse_args(["scenarios"])
        assert args.protocol == "all"
        assert args.scenario == []
        assert not args.list


class TestCommands:
    def test_reliability_command(self, capsys):
        code = main(["reliability", "--nines-benign", "4",
                     "--nines-correct", "3", "--nines-synchrony", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "CFT=3  XPaxos=5  BFT=7" in out

    def test_tables_command(self, capsys):
        code = main(["tables", "--which", "7"])
        assert code == 0
        out = capsys.readouterr().out
        assert "9avail" in out

    def test_sweep_command_small(self, capsys):
        code = main(["sweep", "--protocol", "paxos", "--clients", "4",
                     "--duration", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "paxos" in out
        assert "kops/s" in out

    def test_bench_command_small(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "BENCH_perf.json"
        code = main(["bench", "--events", "2000", "--messages", "1000",
                     "--broadcast-rounds", "200", "--clients", "2",
                     "--duration", "0.5", "--repeat", "1",
                     "--output", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "event_churn" in out
        payload = json.loads(out_path.read_text())
        benches = payload["benchmarks"]
        assert set(benches) == {"event_churn", "message_storm",
                                "broadcast_storm", "authenticated_broadcast",
                                "xpaxos_closed_loop", "pipelined_throughput",
                                "cohort_driver"}
        # The optimized paths must be observationally identical to the seed.
        assert benches["message_storm"]["results_match"]
        assert benches["broadcast_storm"]["results_match"]
        assert benches["authenticated_broadcast"]["results_match"]
        assert benches["xpaxos_closed_loop"]["deterministic"]

    def test_compare_command_small(self, capsys):
        code = main(["compare", "--clients", "4", "--duration", "1"])
        assert code == 0
        out = capsys.readouterr().out
        for protocol in ("xpaxos", "paxos", "pbft", "zyzzyva", "zab"):
            assert protocol in out

    def test_scenarios_list(self, capsys):
        code = main(["scenarios", "--list"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fault-free" in out
        assert "anarchy-byzantine-plus-crash" in out

    def test_scenarios_single_cell(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "matrix.json"
        code = main(["scenarios", "--protocol", "xpaxos",
                     "--scenario", "fault-free",
                     "--json", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "fault-free" in out and "ok" in out
        payload = json.loads(out_path.read_text())
        assert payload["cells"][0]["status"] == "pass"

    def test_scenarios_unknown_name_rejected(self, capsys):
        code = main(["scenarios", "--scenario", "no-such"])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_faults_command_small(self, capsys):
        code = main(["faults", "--clients", "8", "--duration", "40"])
        assert code == 0
        out = capsys.readouterr().out
        assert "view changes" in out
        assert "longest outage" in out
