"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.protocol == "xpaxos"
        assert args.clients == [8, 32, 96]

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.output == "BENCH_perf.json"
        assert args.events > 0 and args.messages > 0

    def test_tables_requires_which(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tables"])

    def test_invalid_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--protocol", "raft"])

    def test_scenarios_defaults(self):
        args = build_parser().parse_args(["scenarios"])
        assert args.protocol == "all"
        assert args.scenario == []
        assert not args.list


class TestCommands:
    def test_reliability_command(self, capsys):
        code = main(["reliability", "--nines-benign", "4",
                     "--nines-correct", "3", "--nines-synchrony", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "CFT=3  XPaxos=5  BFT=7" in out

    def test_tables_command(self, capsys):
        code = main(["tables", "--which", "7"])
        assert code == 0
        out = capsys.readouterr().out
        assert "9avail" in out

    def test_sweep_command_small(self, capsys):
        code = main(["sweep", "--protocol", "paxos", "--clients", "4",
                     "--duration", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "paxos" in out
        assert "kops/s" in out

    def test_bench_command_small(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "BENCH_perf.json"
        code = main(["bench", "--events", "2000", "--messages", "1000",
                     "--broadcast-rounds", "200", "--clients", "2",
                     "--duration", "0.5", "--repeat", "1",
                     "--heap-pending", "20000", "--heap-churn", "2000",
                     "--same-tick", "50",
                     "--output", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "event_churn" in out
        payload = json.loads(out_path.read_text())
        benches = payload["benchmarks"]
        assert set(benches) == {"event_churn", "heap_churn_1m",
                                "same_tick_drain", "message_storm",
                                "broadcast_storm", "authenticated_broadcast",
                                "digest_cache", "xpaxos_closed_loop",
                                "pipelined_throughput", "cohort_driver"}
        # The optimized paths must be observationally identical to the seed.
        assert benches["heap_churn_1m"]["results_match"]
        assert benches["same_tick_drain"]["results_match"]
        assert benches["message_storm"]["results_match"]
        assert benches["broadcast_storm"]["results_match"]
        assert benches["authenticated_broadcast"]["results_match"]
        assert benches["xpaxos_closed_loop"]["deterministic"]

    def test_bench_only_subset(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "BENCH_perf.json"
        code = main(["bench", "--events", "2000", "--messages", "1000",
                     "--broadcast-rounds", "200", "--clients", "2",
                     "--duration", "0.5", "--repeat", "1",
                     "--only", "message_storm",
                     "--output", str(out_path)])
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert list(payload["benchmarks"]) == ["message_storm"]
        assert payload["params"]["only"] == ["message_storm"]

    def test_bench_only_unknown_name(self, capsys, tmp_path):
        code = main(["bench", "--only", "bogus",
                     "--output", str(tmp_path / "b.json")])
        assert code == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_bench_profile_marks_payload(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "BENCH_perf.json"
        pstats_path = tmp_path / "bench.pstats"
        code = main(["bench", "--events", "500", "--messages", "200",
                     "--broadcast-rounds", "50", "--clients", "2",
                     "--duration", "0.2", "--repeat", "1",
                     "--only", "event_churn",
                     "--profile", str(pstats_path),
                     "--output", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "cumulative" in out  # pstats table printed
        assert "not" in out and "recorded" in out.replace("recordable",
                                                          "recorded")
        payload = json.loads(out_path.read_text())
        assert payload["params"]["profiled"] is True
        # The dump is a loadable pstats file.
        import pstats as pstats_mod

        stats = pstats_mod.Stats(str(pstats_path))
        assert stats.total_calls > 0

    def test_profile_command_single_cell(self, capsys, tmp_path):
        pstats_path = tmp_path / "cell.pstats"
        code = main(["profile", "fault-free", "--protocol", "paxos",
                     "--limit", "5", "--pstats", str(pstats_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "fault-free x paxos: pass" in out
        # Subsystem counters precede the wall-clock profile.
        assert "[sim]" in out and "[network]" in out
        assert "fast_lane" in out and "auth_stamped" in out
        assert "cumulative" in out
        assert pstats_path.exists()

    def test_profile_unknown_scenario(self, capsys):
        code = main(["profile", "no-such"])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_profile_out_of_scope_protocol(self, capsys):
        # A scenario scoped away from the protocol is a usage error, not
        # a silent skipped cell.
        from repro.scenarios.library import builtin_scenarios

        scoped = next((s for s in builtin_scenarios()
                       if s.protocols is not None), None)
        if scoped is None:
            pytest.skip("no protocol-scoped scenario in the library")
        from repro.common.config import ProtocolName

        outside = next(p for p in ProtocolName
                       if not scoped.applies_to(p))
        code = main(["profile", scoped.name, "--protocol", outside.value])
        assert code == 2
        assert "does not apply" in capsys.readouterr().err

    def test_compare_command_small(self, capsys):
        code = main(["compare", "--clients", "4", "--duration", "1"])
        assert code == 0
        out = capsys.readouterr().out
        for protocol in ("xpaxos", "paxos", "pbft", "zyzzyva", "zab"):
            assert protocol in out

    def test_scenarios_list(self, capsys):
        code = main(["scenarios", "--list"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fault-free" in out
        assert "anarchy-byzantine-plus-crash" in out

    def test_scenarios_single_cell(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "matrix.json"
        code = main(["scenarios", "--protocol", "xpaxos",
                     "--scenario", "fault-free",
                     "--json", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "fault-free" in out and "ok" in out
        payload = json.loads(out_path.read_text())
        assert payload["cells"][0]["status"] == "pass"

    def test_scenarios_unknown_name_rejected(self, capsys):
        code = main(["scenarios", "--scenario", "no-such"])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_faults_command_small(self, capsys):
        code = main(["faults", "--clients", "8", "--duration", "40"])
        assert code == 0
        out = capsys.readouterr().out
        assert "view changes" in out
        assert "longest outage" in out
