"""The parallel executor layer and the ``--jobs`` merge contract.

Covers the three guarantees ``docs/parallelism.md`` documents: merged
``--jobs N`` output is byte-identical to a sequential run, a crashing
worker fails only its own cell, and ``--jobs 1`` never spawns a pool.
"""

import os
import random

import pytest

from repro.common.config import ClusterConfig, ProtocolName, WorkloadConfig
from repro.harness import parallel
from repro.harness.matrix import ERROR, PASS, MatrixRunner
from repro.harness.parallel import (
    GlobalRngDrawError,
    guard_global_rng,
    parallel_map,
    resolve_jobs,
)
from repro.harness.runner import ExperimentRunner
from repro.net.latency import LatencyModel
from repro.scenarios.scenario import Scenario

PROTOCOLS = [ProtocolName.XPAXOS, ProtocolName.PAXOS]

#: A cheap fault-free cell (full scenarios run for 8 virtual seconds;
#: two of these keep the whole module's matrix runs under a few seconds).
QUICK = Scenario(name="quick-fault-free",
                 description="tiny fault-free cell for executor tests",
                 duration_ms=1_200.0, warmup_ms=100.0, num_clients=2,
                 liveness_bound_ms=1_000.0)


def _boom_schedule(config):
    raise RuntimeError("boom in schedule factory")


#: A cell whose worker raises while building the run.
EXPLODING = Scenario(name="exploding",
                     description="worker-crash probe",
                     schedule=_boom_schedule,
                     duration_ms=1_200.0, warmup_ms=100.0, num_clients=2)


def _global_draw_schedule(config):
    # A deliberate global draw: the guard must error this cell.
    random.random()  # repro: lint-ok[D001]
    from repro.faults.injector import FaultSchedule
    return FaultSchedule()


#: A cell that illegally draws from the module-level random stream.
GLOBAL_DRAW = Scenario(name="global-draw",
                       description="global-RNG audit probe",
                       schedule=_global_draw_schedule,
                       duration_ms=1_200.0, warmup_ms=100.0, num_clients=2)


class TestParallelMap:
    def test_ordered_merge_across_workers(self):
        outcomes = parallel_map(lambda x: x * x, list(range(12)), jobs=4)
        assert [o.index for o in outcomes] == list(range(12))
        assert [o.value for o in outcomes] == [x * x for x in range(12)]
        assert all(o.ok for o in outcomes)

    def test_exception_fails_only_its_task(self):
        def fn(x):
            if x == 2:
                raise ValueError("task two exploded")
            return x

        outcomes = parallel_map(fn, [0, 1, 2, 3], jobs=2)
        assert [o.ok for o in outcomes] == [True, True, False, True]
        assert "task two exploded" in outcomes[2].error
        assert [o.value for o in outcomes if o.ok] == [0, 1, 3]

    def test_hard_worker_death_fails_only_its_task(self):
        def fn(x):
            if x == 1:
                os._exit(17)
            return x

        outcomes = parallel_map(fn, [0, 1, 2], jobs=2)
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok
        assert "worker process died" in outcomes[1].error
        assert "17" in outcomes[1].error

    def test_jobs_one_never_touches_the_pool(self, monkeypatch):
        def no_pool(*args, **kwargs):
            raise AssertionError("jobs=1 must stay in-process")

        monkeypatch.setattr(parallel, "_pool_map", no_pool)
        outcomes = parallel_map(lambda x: x + 1, [1, 2, 3], jobs=1)
        assert [o.value for o in outcomes] == [2, 3, 4]

    def test_single_task_skips_the_pool_too(self, monkeypatch):
        def no_pool(*args, **kwargs):
            raise AssertionError("single task must stay in-process")

        monkeypatch.setattr(parallel, "_pool_map", no_pool)
        outcomes = parallel_map(lambda x: x, ["only"], jobs=8)
        assert outcomes[0].value == "only"

    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) == (os.cpu_count() or 1)
        with pytest.raises(ValueError):
            resolve_jobs(-1)

    def test_guard_rejects_global_rng_draws_inline(self):
        @guard_global_rng
        def dirty(task):
            return random.random()  # repro: lint-ok[D001]

        with pytest.raises(GlobalRngDrawError):
            dirty(None)

    def test_guard_failure_is_recorded_in_worker(self):
        @guard_global_rng
        def dirty(task):
            return random.random()  # repro: lint-ok[D001]

        outcomes = parallel_map(dirty, [0, 1], jobs=2)
        assert not outcomes[0].ok and not outcomes[1].ok
        assert "GlobalRngDrawError" in outcomes[0].error


class TestMatrixJobs:
    def test_jobs4_matrix_json_byte_identical(self):
        # Perturb the inherited global RNG state differently before each
        # run: a cell path that (illegally) consulted it would diverge.
        random.seed(b"sequential-side")  # repro: lint-ok[D001]
        seq = MatrixRunner(seed=3).run_matrix(
            scenarios=[QUICK], protocols=PROTOCOLS, jobs=1)
        random.seed(b"parallel-side")  # repro: lint-ok[D001]
        par = MatrixRunner(seed=3).run_matrix(
            scenarios=[QUICK], protocols=PROTOCOLS, jobs=4)
        assert seq.to_json() == par.to_json()
        assert [c.status for c in par.cells] == [PASS] * len(PROTOCOLS)
        assert par.format_grid() == seq.format_grid()

    def test_worker_crash_fails_that_cell_only(self):
        result = MatrixRunner(seed=0).run_matrix(
            scenarios=[EXPLODING, QUICK], protocols=PROTOCOLS, jobs=2)
        by_scenario = {}
        for cell in result.cells:
            by_scenario.setdefault(cell.scenario, []).append(cell)
        for cell in by_scenario["exploding"]:
            assert cell.status == ERROR
            assert not cell.ok
            assert "boom in schedule factory" in cell.detail
        for cell in by_scenario["quick-fault-free"]:
            assert cell.status == PASS, cell.detail
        # The error rendering is itself deterministic: the sequential
        # path records the identical matrix.
        seq = MatrixRunner(seed=0).run_matrix(
            scenarios=[EXPLODING, QUICK], protocols=PROTOCOLS, jobs=1)
        assert seq.to_json() == result.to_json()

    def test_global_rng_draw_on_cell_path_is_rejected(self):
        # The seeding audit, enforced at runtime: a cell drawing from the
        # module-level stream errors instead of silently breaking
        # cross-process determinism -- and only that cell is lost.
        result = MatrixRunner(seed=0).run_matrix(
            scenarios=[GLOBAL_DRAW, QUICK],
            protocols=[ProtocolName.XPAXOS], jobs=2)
        draw_cell, quick_cell = result.cells
        assert draw_cell.status == ERROR
        assert "GlobalRngDrawError" in draw_cell.detail
        assert quick_cell.status == PASS, quick_cell.detail

    def test_matrix_jobs1_stays_in_process(self, monkeypatch):
        def no_pool(*args, **kwargs):
            raise AssertionError("jobs=1 must stay in-process")

        monkeypatch.setattr(parallel, "_pool_map", no_pool)
        result = MatrixRunner(seed=0).run_matrix(
            scenarios=[QUICK], protocols=[ProtocolName.XPAXOS], jobs=1)
        assert result.cells[0].status == PASS


class TestSweepJobs:
    @staticmethod
    def _runner():
        return ExperimentRunner(
            latency_factory=lambda seed: LatencyModel.uniform(
                ["CA", "VA", "JP"], one_way_ms=1.0, seed=seed),
            seed=2)

    @staticmethod
    def _config():
        return ClusterConfig(t=1, protocol=ProtocolName.XPAXOS,
                             delta_ms=50.0, request_retransmit_ms=500.0,
                             view_change_timeout_ms=1_000.0,
                             batch_timeout_ms=2.0)

    def test_parallel_sweep_matches_sequential(self):
        base = WorkloadConfig(num_clients=1, request_size=64,
                              duration_ms=600.0, warmup_ms=100.0)
        seq = self._runner().sweep_clients(self._config(), [1, 2, 3],
                                           base, jobs=1)
        par = self._runner().sweep_clients(self._config(), [1, 2, 3],
                                           base, jobs=3)
        assert [p.result for p in seq] == [p.result for p in par]
        assert [p.num_clients for p in par] == [1, 2, 3]

    def test_failed_point_names_itself(self):
        base = WorkloadConfig(num_clients=1, request_size=64,
                              duration_ms=600.0, warmup_ms=100.0,
                              client_site="NOT-A-SITE")
        with pytest.raises(RuntimeError, match="sweep point"):
            self._runner().sweep_clients(self._config(), [1], base, jobs=2)
