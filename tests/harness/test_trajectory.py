"""Tests for the perf-trajectory gate (benchmarks/perf/history/)."""

import json

import pytest

from repro.cli import main
from repro.harness.trajectory import (
    best_speedups,
    check_point,
    format_check,
    load_history,
    record_point,
)


def suite_payload(**speedups):
    benchmarks = {
        name: {"speedup": value, "units_per_sec": value * 1000.0,
               "seconds": 1.0, "results_match": True}
        for name, value in speedups.items()
    }
    benchmarks["xpaxos_closed_loop"] = {
        "commits_per_wall_sec": 5_000.0, "deterministic": True,
        "seconds": 1.0}
    return {"schema": 1, "suite": "perf", "host": {}, "params": {},
            "benchmarks": benchmarks}


class TestHistory:
    def test_empty_history_passes_and_seeds(self, tmp_path):
        payload = suite_payload(broadcast_storm=2.0)
        history = load_history(str(tmp_path / "none"))
        assert history == []
        assert check_point(payload, history) == []
        assert "seeds the trajectory" in format_check(payload, history)

    def test_record_and_reload_roundtrip(self, tmp_path):
        path = record_point(suite_payload(broadcast_storm=2.0),
                            history_dir=str(tmp_path), label="seed")
        assert path.endswith("-seed.json")
        (point,) = load_history(str(tmp_path))
        assert point["label"] == "seed"
        assert point["benchmarks"]["broadcast_storm"]["speedup"] == 2.0
        # Wall-clock-ish numbers are archived but carry no speedup.
        assert "speedup" not in point["benchmarks"]["xpaxos_closed_loop"]

    def test_same_second_points_never_clobber(self, tmp_path):
        payload = suite_payload(broadcast_storm=2.0)
        first = record_point(payload, history_dir=str(tmp_path))
        second = record_point(payload, history_dir=str(tmp_path))
        assert first != second
        assert len(load_history(str(tmp_path))) == 2

    def test_best_is_max_across_points(self, tmp_path):
        record_point(suite_payload(broadcast_storm=1.8, event_churn=4.0),
                     history_dir=str(tmp_path))
        record_point(suite_payload(broadcast_storm=2.4, event_churn=3.0),
                     history_dir=str(tmp_path))
        best = best_speedups(load_history(str(tmp_path)))
        assert best == {"broadcast_storm": 2.4, "event_churn": 4.0}


class TestGate:
    def test_within_tolerance_passes(self, tmp_path):
        record_point(suite_payload(broadcast_storm=2.0),
                     history_dir=str(tmp_path))
        history = load_history(str(tmp_path))
        # 1.7 >= 0.8 * 2.0: fine.
        assert check_point(suite_payload(broadcast_storm=1.7),
                           history) == []

    def test_injected_regression_fails(self, tmp_path):
        """The acceptance scenario: a >20% drop below the best recorded
        point must fail the gate."""
        record_point(suite_payload(broadcast_storm=2.0, event_churn=4.0),
                     history_dir=str(tmp_path))
        history = load_history(str(tmp_path))
        problems = check_point(
            suite_payload(broadcast_storm=1.5, event_churn=4.0), history)
        assert len(problems) == 1
        assert "broadcast_storm" in problems[0]
        assert "REGRESS" in format_check(
            suite_payload(broadcast_storm=1.5, event_churn=4.0), history)

    def test_new_benchmark_without_history_is_seeding(self, tmp_path):
        record_point(suite_payload(broadcast_storm=2.0),
                     history_dir=str(tmp_path))
        history = load_history(str(tmp_path))
        # authenticated_broadcast has no recorded best yet: not gated.
        assert check_point(suite_payload(broadcast_storm=2.0,
                                         authenticated_broadcast=1.5),
                           history) == []

    def test_removed_benchmark_is_flagged(self, tmp_path):
        """Deleting or renaming a gated benchmark is the quietest way to
        give a speedup back: the gate must notice the hole."""
        record_point(suite_payload(broadcast_storm=2.0),
                     history_dir=str(tmp_path))
        history = load_history(str(tmp_path))
        problems = check_point(suite_payload(event_churn=3.0), history)
        assert any("broadcast_storm" in p and "missing" in p
                   for p in problems)

    def test_tolerance_is_configurable(self, tmp_path):
        record_point(suite_payload(broadcast_storm=2.0),
                     history_dir=str(tmp_path))
        history = load_history(str(tmp_path))
        payload = suite_payload(broadcast_storm=1.9)
        assert check_point(payload, history, tolerance=0.2) == []
        assert check_point(payload, history, tolerance=0.01) != []


def partial_payload(**speedups):
    payload = suite_payload(**speedups)
    payload["params"]["only"] = sorted(speedups)
    return payload


class TestPartialPayloads:
    def test_only_subset_skips_missing_benchmark_guard(self, tmp_path):
        record_point(suite_payload(broadcast_storm=2.0, event_churn=3.0),
                     history_dir=str(tmp_path))
        history = load_history(str(tmp_path))
        # A full payload missing event_churn is flagged...
        assert check_point(suite_payload(broadcast_storm=2.0), history)
        # ...but a declared subset is gated only on what it contains.
        assert check_point(partial_payload(broadcast_storm=2.0),
                           history) == []

    def test_partial_payload_still_gates_present_benchmarks(self, tmp_path):
        record_point(suite_payload(broadcast_storm=2.0),
                     history_dir=str(tmp_path))
        history = load_history(str(tmp_path))
        problems = check_point(partial_payload(broadcast_storm=1.2),
                               history)
        assert any("broadcast_storm" in p for p in problems)

    def test_record_refuses_only_payload(self, tmp_path):
        with pytest.raises(ValueError, match="refusing to record"):
            record_point(partial_payload(broadcast_storm=2.0),
                         history_dir=str(tmp_path))

    def test_record_refuses_profiled_payload(self, tmp_path):
        payload = suite_payload(broadcast_storm=2.0)
        payload["params"]["profiled"] = True
        with pytest.raises(ValueError, match="refusing to record"):
            record_point(payload, history_dir=str(tmp_path))

    def test_format_check_notes_partiality(self):
        text = format_check(partial_payload(broadcast_storm=2.0), [])
        assert "not recordable" in text

    def test_cli_record_refusal_is_usage_error(self, tmp_path, capsys):
        payload_path = tmp_path / "BENCH_perf.json"
        payload_path.write_text(
            json.dumps(partial_payload(broadcast_storm=2.0)))
        assert main(["trajectory", "record", str(payload_path),
                     "--history-dir", str(tmp_path / "history")]) == 2
        assert "refusing to record" in capsys.readouterr().err
        assert not (tmp_path / "history").exists()


class TestCli:
    def test_check_exit_codes(self, tmp_path, capsys):
        history = tmp_path / "history"
        payload_path = tmp_path / "BENCH_perf.json"
        payload_path.write_text(
            json.dumps(suite_payload(broadcast_storm=2.0)))
        args = ["trajectory", "check", str(payload_path),
                "--history-dir", str(history)]
        assert main(args) == 0  # empty history seeds

        assert main(["trajectory", "record", str(payload_path),
                     "--history-dir", str(history),
                     "--label", "seed"]) == 0
        assert main(args) == 0  # equal to best: passes

        payload_path.write_text(
            json.dumps(suite_payload(broadcast_storm=1.2)))
        assert main(args) == 1  # injected >20% regression fails
        assert "PERF REGRESSION" in capsys.readouterr().err

    def test_unreadable_payload_is_usage_error(self, tmp_path):
        assert main(["trajectory", "check",
                     str(tmp_path / "missing.json")]) == 2
