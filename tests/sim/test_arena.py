"""The heap-entry arena: vacated 5-slot lists are recycled by the drain
and reused by ``schedule()``/``post()``, so at steady state the hot loop
allocates no entry lists.  These tests pin down the freelist's
observable contract: the stats counters, actual recycling at steady
state, the shared cap with the event pool, and -- most importantly --
that the arena changes nothing about execution order or timing in
either batch-drain mode.
"""

from repro.sim.core import Simulator


def ping_pong(sim, rounds, log):
    """A self-sustaining post() chain: one live entry, recycled forever."""

    def fire(i):
        log.append((sim.now, i))
        if i < rounds:
            sim.post(sim.now + 1.0, fire, (i + 1,))

    sim.post(1.0, fire, (0,))


class TestArenaCounters:
    def test_counters_present_and_zero_initially(self):
        stats = Simulator().stats()
        assert stats["arena_cap"] > 0
        assert stats["arena_size"] == 0
        assert stats["arena_hits"] == 0
        assert stats["arena_hit_rate"] == 0.0

    def test_cap_is_shared_with_event_pool(self):
        sim = Simulator()
        stats = sim.stats()
        assert stats["arena_cap"] == stats["pool_cap"]

    def test_hit_rate_is_hits_over_heap_pushes(self):
        sim = Simulator()
        log = []
        ping_pong(sim, 40, log)
        sim.run()
        stats = sim.stats()
        assert stats["heap_pushes"] > 0
        assert stats["arena_hit_rate"] == (
            stats["arena_hits"] / stats["heap_pushes"])


class TestArenaRecycling:
    def test_steady_state_posts_recycle(self):
        sim = Simulator()
        log = []
        ping_pong(sim, 100, log)
        sim.run()
        # Every posting after the first finds the single vacated entry.
        stats = sim.stats()
        assert stats["arena_hits"] == 100
        assert stats["arena_size"] == 1  # the last entry, parked
        assert log == [(float(i + 1), i) for i in range(101)]

    def test_schedule_and_post_share_the_freelist(self):
        sim = Simulator()
        fired = []
        sim.post(1.0, fired.append, (0,))
        sim.run()
        assert sim.stats()["arena_size"] == 1
        # A future-time schedule() reuses the entry post() vacated.
        sim.call_at(2.0, lambda: fired.append(1))
        assert sim.stats()["arena_hits"] == 1
        assert sim.stats()["arena_size"] == 0
        sim.run()
        assert fired == [0, 1]

    def test_arena_never_grows_past_cap(self):
        sim = Simulator()
        fired = []
        # A wide burst: every entry vacates on the same drain pass.
        for i in range(200):
            sim.post(1.0 + i * 0.001, fired.append, (i,))
        sim.run()
        stats = sim.stats()
        assert stats["arena_size"] <= stats["arena_cap"]
        assert fired == list(range(200))


class TestArenaEquivalence:
    """Recycling must be invisible: both batch-drain modes, same tape."""

    def _run(self, batch_drain):
        sim = Simulator(batch_drain=batch_drain)
        log = []

        def fire(i):
            log.append((sim.now, i))
            if i % 3 == 0:
                # Same-tick re-entry exercises the FIFO lane (batch
                # drain) or an immediate heap push (no batch drain).
                sim.schedule(sim.now, log.append, ((sim.now, -i),))
            if i < 60:
                sim.post(sim.now + 0.5 + (i % 7) * 0.25, fire, (i + 1,))

        sim.post(1.0, fire, (0,))
        sim.run()
        return log, sim.now

    def test_batch_drain_modes_agree(self):
        assert self._run(batch_drain=True) == self._run(batch_drain=False)

    def test_recycled_entries_preserve_ordering(self):
        # Interleave cancellations with postings so vacated event
        # entries are reused by later postings mid-run.
        sim = Simulator()
        log = []
        handles = [sim.call_at(5.0 + i, log.append, args=(i,))
                   for i in range(10)]
        for handle in handles[::2]:
            handle.cancel()
        for i in range(10, 20):
            sim.post(4.0 + (i - 10) * 0.1, log.append, (i,))
        sim.run()
        assert log == list(range(10, 20)) + [1, 3, 5, 7, 9]
