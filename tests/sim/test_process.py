"""Tests for processes and restartable timers."""

from repro.sim.core import Simulator
from repro.sim.process import Process, Timer


class TestTimer:
    def test_fires_after_delay(self):
        sim = Simulator()
        process = Process(sim, "p")
        seen = []
        timer = Timer(process, lambda: seen.append(sim.now))
        timer.start(25.0)
        sim.run()
        assert seen == [25.0]

    def test_stop_prevents_firing(self):
        sim = Simulator()
        process = Process(sim, "p")
        seen = []
        timer = Timer(process, lambda: seen.append(1))
        timer.start(25.0)
        timer.stop()
        sim.run()
        assert seen == []

    def test_restart_extends_deadline(self):
        sim = Simulator()
        process = Process(sim, "p")
        seen = []
        timer = Timer(process, lambda: seen.append(sim.now))
        timer.start(10.0)
        sim.call_at(5.0, lambda: timer.start(10.0))
        sim.run()
        assert seen == [15.0]

    def test_armed_and_deadline(self):
        sim = Simulator()
        process = Process(sim, "p")
        timer = Timer(process, lambda: None)
        assert not timer.armed
        assert timer.deadline is None
        timer.start(10.0)
        assert timer.armed
        assert timer.deadline == 10.0

    def test_crash_disarms_timers(self):
        sim = Simulator()
        process = Process(sim, "p")
        seen = []
        timer = Timer(process, lambda: seen.append(1))
        timer.start(10.0)
        process.crash()
        sim.run()
        assert seen == []
        assert not timer.armed

    def test_timer_does_not_fire_while_crashed(self):
        sim = Simulator()
        process = Process(sim, "p")
        seen = []
        timer = Timer(process, lambda: seen.append(1))
        timer.start(10.0)
        # Crash after arming but before firing, without going through
        # process.crash() timer cleanup (simulates a race).
        sim.call_at(5.0, lambda: setattr(process, "_crashed", True))
        sim.run()
        assert seen == []


class TestProcess:
    def test_after_suppressed_when_crashed(self):
        sim = Simulator()
        process = Process(sim, "p")
        seen = []
        process.after(10.0, lambda: seen.append(1))
        process.crash()
        sim.run()
        assert seen == []

    def test_after_fires_when_up(self):
        sim = Simulator()
        process = Process(sim, "p")
        seen = []
        process.after(10.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [10.0]

    def test_recover_clears_crashed_flag(self):
        sim = Simulator()
        process = Process(sim, "p")
        process.crash()
        assert process.crashed
        process.recover()
        assert not process.crashed

    def test_events_scheduled_before_crash_fire_after_recover(self):
        sim = Simulator()
        process = Process(sim, "p")
        seen = []
        process.after(30.0, lambda: seen.append(sim.now))
        sim.call_at(10.0, process.crash)
        sim.call_at(20.0, process.recover)
        sim.run()
        assert seen == [30.0]
