"""Batch-drain fast lane, ``post()`` light entries, and recycling edges.

The fast lane buckets events scheduled at exactly ``now`` into a FIFO
drained without per-event heap traffic; ``post()`` schedules a
fire-and-forget callback with no Event object at all.  Both are pure
representation changes: every test here pins the observable schedule
(callback order, counts, handles) to the heap-only baseline.
"""

import pytest

from repro.common.errors import SimulationError
from repro.sim.core import _POOL_CAP, Simulator


def _same_tick_trace(batch_drain):
    """A workload that leans on same-tick scheduling, with interleaved
    future events and cancellations, traced as (time, label) pairs."""
    sim = Simulator(batch_drain=batch_drain)
    log = []

    def note(label):
        log.append((sim.now, label))

    def burst(round_no):
        note(f"burst{round_no}")
        # Same-tick chain: three immediate continuations, one of which
        # schedules yet another one.
        sim.call_soon(note, args=(f"soon{round_no}a",))
        sim.call_soon(lambda: sim.call_soon(note,
                                            args=(f"nested{round_no}",)))
        sim.call_soon(note, args=(f"soon{round_no}b",))
        # A future event plus a cancelled sibling, to mix heap traffic in.
        keep = sim.call_after(3.0, note, args=(f"later{round_no}",))
        drop = sim.call_after(3.0, note, args=(f"dropped{round_no}",))
        drop.cancel()
        assert keep.active
        if round_no < 5:
            sim.call_after(10.0, burst, args=(round_no + 1,))

    sim.call_at(1.0, burst, args=(0,))
    sim.run()
    return log, sim.stats()


class TestFastLaneEquivalence:
    def test_same_schedule_with_lane_on_and_off(self):
        fast, fast_stats = _same_tick_trace(batch_drain=True)
        slow, slow_stats = _same_tick_trace(batch_drain=False)
        assert fast == slow
        assert fast_stats["executed"] == slow_stats["executed"]
        assert fast_stats["cancelled"] == slow_stats["cancelled"]
        # The lane actually engaged: the same-tick continuations skipped
        # the heap on the fast run and hit it on the baseline.
        assert fast_stats["fast_lane"] > 0
        assert slow_stats["fast_lane"] == 0
        assert fast_stats["heap_pushes"] < slow_stats["heap_pushes"]

    def test_heap_events_due_now_fire_before_fifo_entries(self):
        # An event scheduled *earlier* for time T must precede a
        # same-tick event created at T, even though the former sits in
        # the heap and the latter in the FIFO.
        sim = Simulator()
        log = []
        sim.call_at(5.0, lambda: log.append("heap-first"))

        def at_five():
            log.append("firing")
            sim.call_soon(lambda: log.append("fifo-second"))

        # Insertion order: this callback runs before "heap-first" is
        # popped only if it was scheduled first -- schedule it second so
        # the heap entry drains first, then the FIFO entry.
        sim.call_at(5.0, lambda: None)  # placeholder to vary sequences
        sim.call_at(5.0, at_five)
        sim.run()
        assert log == ["heap-first", "firing", "fifo-second"]

    def test_cancel_same_tick_event_before_it_fires(self):
        sim = Simulator()
        log = []

        def setup():
            handle = sim.call_soon(lambda: log.append("cancelled"))
            sim.call_soon(lambda: log.append("kept"))
            handle.cancel()
            assert not handle.active

        sim.call_at(2.0, setup)
        sim.run()
        assert log == ["kept"]

    def test_step_drains_fifo_in_order(self):
        sim = Simulator()
        log = []
        sim.call_at(1.0, lambda: [sim.call_soon(log.append, args=(i,))
                                  for i in range(3)])
        while sim.step():
            pass
        assert log == [0, 1, 2]


class TestPost:
    def test_post_fires_in_time_and_insertion_order(self):
        sim = Simulator()
        log = []
        sim.post(20.0, log.append, args=("b",))
        sim.post(10.0, log.append, args=("a",))
        sim.call_at(20.0, log.append, args=("c",))  # after first post(20)
        sim.post(20.0, log.append, args=("d",))
        sim.run()
        assert log == ["a", "b", "c", "d"]

    def test_post_in_past_raises(self):
        sim = Simulator()
        sim.call_at(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.post(5.0, lambda: None)

    def test_post_at_now_falls_back_to_fifo_lane(self):
        # Same-tick posts become ordinary Events so the FIFO stays
        # homogeneous; they still fire this tick, in order.
        sim = Simulator()
        log = []

        def now_burst():
            sim.post(sim.now, log.append, args=("x",))
            sim.post(sim.now, log.append, args=("y",))

        sim.call_at(3.0, now_burst)
        sim.run()
        assert log == ["x", "y"]

    def test_post_counts_as_pending_and_executed(self):
        sim = Simulator()
        for i in range(4):
            sim.post(float(i + 1), lambda: None)
        assert sim.pending == 4
        sim.run()
        assert sim.pending == 0
        assert sim.executed == 4

    def test_post_survives_compaction(self):
        # Mass cancellation triggers compaction while light entries sit
        # in the heap; they must be kept, not dropped or recycled.
        sim = Simulator()
        log = []
        sim.post(500.0, log.append, args=("light",))
        victims = [sim.call_at(100.0 + i, lambda: log.append("victim"))
                   for i in range(300)]
        for victim in victims:
            victim.cancel()
        assert sim.pending == 1
        sim.run()
        assert log == ["light"]

    def test_post_interleaves_with_step(self):
        sim = Simulator()
        log = []
        sim.post(1.0, log.append, args=(1,))
        sim.call_at(2.0, log.append, args=(2,))
        assert sim.step() and log == [1]
        assert sim.step() and log == [1, 2]
        assert not sim.step()

    def test_run_until_stops_before_light_entry(self):
        sim = Simulator()
        log = []
        sim.post(100.0, log.append, args=("late",))
        sim.run(until=50.0)
        assert log == [] and sim.now == 50.0
        sim.run()
        assert log == ["late"]


class TestCompactionAliasing:
    def test_compaction_fired_from_inside_callback_mid_run(self):
        # The nasty aliasing case: the *currently firing* event's object
        # was already popped when its callback cancels en masse and
        # trips compaction -- which rebuilds the heap and recycles
        # cancelled events into the pool.  The in-flight event must not
        # be recycled out from under its own callback, and events
        # scheduled *by* the callback after compaction must be distinct
        # objects with working handles.
        sim = Simulator()
        log = []
        victims = [sim.call_at(50.0 + i, lambda i=i: log.append(i))
                   for i in range(300)]

        def massacre():
            for victim in victims:
                victim.cancel()
            # Compaction may have run synchronously inside cancel();
            # scheduling from the same callback must still work and the
            # new handles must control the new events only.
            fresh = sim.call_after(1.0, log.append, args=("fresh",))
            assert fresh.active
            sim.call_soon(log.append, args=("soon",))

        sim.call_at(10.0, massacre)
        sim.run()
        assert log == ["soon", "fresh"]
        stats = sim.stats()
        assert stats["compaction_dropped"] > 0
        assert stats["pending"] == 0

    def test_recancelling_inside_compacting_callback_is_safe(self):
        sim = Simulator()
        log = []
        victims = [sim.call_at(50.0 + i, lambda: log.append("victim"))
                   for i in range(300)]

        def massacre():
            for victim in victims:
                victim.cancel()
            # All handles are now stale; cancelling again (post
            # compaction, post recycling) must be a no-op.
            for victim in victims:
                victim.cancel()
            assert sim.pending == 0

        sim.call_at(10.0, massacre)
        sim.run()
        assert log == []


class TestHandleGenerations:
    def test_stale_handle_across_many_recycling_generations(self):
        # One Event object can serve many schedule() lifetimes.  A handle
        # from generation k must be inert for every generation > k, and
        # `active` must report False the moment its own generation ends.
        sim = Simulator()
        log = []
        stale = []
        for generation in range(50):
            handle = sim.call_after(1.0, log.append, args=(generation,))
            sim.run()
            assert not handle.active
            stale.append(handle)
            # Stale cancels must never kill the *next* generation.
            for old in stale:
                old.cancel()
        assert log == list(range(50))
        assert sim.stats()["pool_hits"] > 0

    def test_cancelled_generation_recycles_without_leaking_actives(self):
        sim = Simulator()
        log = []
        for generation in range(30):
            doomed = sim.call_after(5.0, log.append, args=("doomed",))
            kept = sim.call_after(1.0, log.append, args=(generation,))
            doomed.cancel()
            sim.run()
            assert not doomed.active and not kept.active
        assert log == list(range(30))


class TestAdaptivePoolCap:
    def test_cap_starts_at_floor_and_tracks_peak_pending(self):
        sim = Simulator()
        assert sim.stats()["pool_cap"] == _POOL_CAP
        target = _POOL_CAP * 2
        for i in range(target):
            sim.call_at(float(i + 1), lambda: None)
        stats = sim.stats()
        assert stats["peak_pending"] == target
        assert stats["pool_cap"] == target
        sim.run()
        # The raised cap persists so the next burst of this size runs
        # entirely from the pool.
        assert sim.stats()["pool_cap"] == target
        assert sim.stats()["pool_size"] <= target

    def test_small_runs_keep_the_floor_cap(self):
        sim = Simulator()
        for i in range(100):
            sim.call_at(float(i + 1), lambda: None)
        sim.run()
        assert sim.stats()["pool_cap"] == _POOL_CAP

    def test_pool_hit_rate_reported(self):
        sim = Simulator()
        for round_no in range(3):
            for i in range(500):
                sim.call_at(sim.now + float(i + 1), lambda: None)
            sim.run()
        stats = sim.stats()
        assert stats["pool_hits"] > 0
        assert 0.0 < stats["pool_hit_rate"] <= 1.0
