"""End-to-end determinism: identical seeds yield identical experiments.

Reproducibility is the substrate's core promise (DESIGN.md §7): any run is
a pure function of (code, seed).  These tests pin that down at the system
level -- full protocol runs, fault schedules and all.
"""

import pytest

from repro.common.config import ClusterConfig, ProtocolName, WorkloadConfig
from repro.faults.injector import FaultInjector, FaultSchedule
from repro.net.bandwidth import BandwidthModel
from repro.net.latency import LatencyModel
from repro.protocols.registry import build_cluster
from repro.workloads.clients import ClosedLoopDriver


def run_once(seed, with_faults=False):
    config = ClusterConfig(t=1, protocol=ProtocolName.XPAXOS,
                           delta_ms=50.0, request_retransmit_ms=200.0,
                           view_change_timeout_ms=400.0,
                           batch_timeout_ms=2.0)
    runtime = build_cluster(
        config, num_clients=3,
        latency=LatencyModel.ec2(seed=seed),
        bandwidth=BandwidthModel(), seed=seed)
    driver = ClosedLoopDriver(
        runtime, WorkloadConfig(num_clients=3, request_size=128,
                                duration_ms=3_000.0, warmup_ms=100.0))
    if with_faults:
        FaultInjector(runtime).arm(
            FaultSchedule().crash_for(1_000.0, 1, 500.0))
    driver.run()
    trace = tuple(tuple(r.execution_trace) for r in runtime.replicas)
    return (driver.throughput.total, driver.mean_latency_ms(), trace,
            runtime.sim.executed)


class TestSystemDeterminism:
    def test_identical_seeds_identical_runs(self):
        assert run_once(42) == run_once(42)

    def test_identical_seeds_identical_fault_runs(self):
        assert run_once(7, with_faults=True) == \
            run_once(7, with_faults=True)

    def test_different_seeds_differ(self):
        # Same workload, different latency draws: latencies must differ.
        _, lat_a, _, events_a = run_once(1)
        _, lat_b, _, events_b = run_once(2)
        assert lat_a != lat_b or events_a != events_b

    @pytest.mark.parametrize("protocol", list(ProtocolName))
    def test_every_protocol_is_deterministic(self, protocol):
        def one(seed=13):
            config = ClusterConfig(t=1, protocol=protocol, delta_ms=50.0,
                                   request_retransmit_ms=500.0,
                                   view_change_timeout_ms=1_000.0,
                                   batch_timeout_ms=2.0)
            runtime = build_cluster(config, num_clients=2,
                                    latency=LatencyModel.ec2(seed=seed),
                                    seed=seed)
            driver = ClosedLoopDriver(
                runtime, WorkloadConfig(num_clients=2, request_size=64,
                                        duration_ms=1_500.0,
                                        warmup_ms=100.0))
            driver.run()
            return (driver.throughput.total,
                    tuple(tuple(r.execution_trace)
                          for r in runtime.replicas))

        assert one() == one()
