"""Tests for the discrete-event simulator core."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import SimulationError
from repro.sim.core import Simulator


class TestScheduling:
    def test_starts_at_time_zero(self):
        assert Simulator().now == 0.0

    def test_call_at_executes_at_that_time(self):
        sim = Simulator()
        seen = []
        sim.call_at(10.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [10.0]

    def test_call_after_is_relative(self):
        sim = Simulator()
        seen = []
        sim.call_at(5.0, lambda: sim.call_after(3.0,
                                                lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [8.0]

    def test_call_soon_runs_at_current_instant(self):
        sim = Simulator()
        seen = []
        sim.call_at(7.0, lambda: sim.call_soon(lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [7.0]

    def test_scheduling_in_past_raises(self):
        sim = Simulator()
        sim.call_at(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(5.0, lambda: None)

    def test_negative_delay_raises(self):
        with pytest.raises(SimulationError):
            Simulator().call_after(-1.0, lambda: None)


class TestOrdering:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        seen = []
        sim.call_at(30.0, lambda: seen.append("c"))
        sim.call_at(10.0, lambda: seen.append("a"))
        sim.call_at(20.0, lambda: seen.append("b"))
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_same_time_events_fire_in_insertion_order(self):
        sim = Simulator()
        seen = []
        for name in "abcdef":
            sim.call_at(5.0, lambda n=name: seen.append(n))
        sim.run()
        assert seen == list("abcdef")

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50))
    def test_delivery_times_are_nondecreasing(self, times):
        sim = Simulator()
        observed = []
        for t in times:
            sim.call_at(t, lambda: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)
        assert len(observed) == len(times)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        seen = []
        handle = sim.call_at(10.0, lambda: seen.append("x"))
        handle.cancel()
        sim.run()
        assert seen == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.call_at(10.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert not handle.active

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        keep = sim.call_at(10.0, lambda: None)
        drop = sim.call_at(20.0, lambda: None)
        drop.cancel()
        assert sim.pending == 1
        assert keep.active


class TestRun:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        seen = []
        sim.call_at(10.0, lambda: seen.append("early"))
        sim.call_at(100.0, lambda: seen.append("late"))
        sim.run(until=50.0)
        assert seen == ["early"]
        assert sim.now == 50.0

    def test_run_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run(until=123.0)
        assert sim.now == 123.0

    def test_back_to_back_runs_compose(self):
        sim = Simulator()
        seen = []
        sim.call_at(10.0, lambda: seen.append(1))
        sim.call_at(60.0, lambda: seen.append(2))
        sim.run(until=50.0)
        sim.run(until=100.0)
        assert seen == [1, 2]

    def test_max_events_budget(self):
        sim = Simulator()
        for i in range(10):
            sim.call_at(float(i), lambda: None)
        executed = sim.run(max_events=4)
        assert executed == 4
        assert sim.pending == 6

    def test_step_executes_one_event(self):
        sim = Simulator()
        seen = []
        sim.call_at(1.0, lambda: seen.append(1))
        sim.call_at(2.0, lambda: seen.append(2))
        assert sim.step()
        assert seen == [1]

    def test_step_on_empty_queue_returns_false(self):
        assert not Simulator().step()

    def test_drain_detects_runaway_loops(self):
        sim = Simulator()

        def reschedule():
            sim.call_after(1.0, reschedule)

        sim.call_at(0.0, reschedule)
        with pytest.raises(SimulationError):
            sim.drain(max_events=100)

    def test_executed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.call_at(float(i), lambda: None)
        sim.run()
        assert sim.executed == 5


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def trace():
            sim = Simulator()
            log = []
            # A small cascade of events with ties.
            for i in range(20):
                sim.call_at(float(i % 5),
                            lambda i=i: log.append((sim.now, i)))
            sim.run()
            return log

        assert trace() == trace()
