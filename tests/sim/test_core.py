"""Tests for the discrete-event simulator core."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import SimulationError
from repro.sim.core import Simulator


class TestScheduling:
    def test_starts_at_time_zero(self):
        assert Simulator().now == 0.0

    def test_call_at_executes_at_that_time(self):
        sim = Simulator()
        seen = []
        sim.call_at(10.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [10.0]

    def test_call_after_is_relative(self):
        sim = Simulator()
        seen = []
        sim.call_at(5.0, lambda: sim.call_after(3.0,
                                                lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [8.0]

    def test_call_soon_runs_at_current_instant(self):
        sim = Simulator()
        seen = []
        sim.call_at(7.0, lambda: sim.call_soon(lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [7.0]

    def test_scheduling_in_past_raises(self):
        sim = Simulator()
        sim.call_at(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(5.0, lambda: None)

    def test_negative_delay_raises(self):
        with pytest.raises(SimulationError):
            Simulator().call_after(-1.0, lambda: None)


class TestOrdering:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        seen = []
        sim.call_at(30.0, lambda: seen.append("c"))
        sim.call_at(10.0, lambda: seen.append("a"))
        sim.call_at(20.0, lambda: seen.append("b"))
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_same_time_events_fire_in_insertion_order(self):
        sim = Simulator()
        seen = []
        for name in "abcdef":
            sim.call_at(5.0, lambda n=name: seen.append(n))
        sim.run()
        assert seen == list("abcdef")

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50))
    def test_delivery_times_are_nondecreasing(self, times):
        sim = Simulator()
        observed = []
        for t in times:
            sim.call_at(t, lambda: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)
        assert len(observed) == len(times)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        seen = []
        handle = sim.call_at(10.0, lambda: seen.append("x"))
        handle.cancel()
        sim.run()
        assert seen == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.call_at(10.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert not handle.active

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        keep = sim.call_at(10.0, lambda: None)
        drop = sim.call_at(20.0, lambda: None)
        drop.cancel()
        assert sim.pending == 1
        assert keep.active


class TestRun:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        seen = []
        sim.call_at(10.0, lambda: seen.append("early"))
        sim.call_at(100.0, lambda: seen.append("late"))
        sim.run(until=50.0)
        assert seen == ["early"]
        assert sim.now == 50.0

    def test_run_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run(until=123.0)
        assert sim.now == 123.0

    def test_back_to_back_runs_compose(self):
        sim = Simulator()
        seen = []
        sim.call_at(10.0, lambda: seen.append(1))
        sim.call_at(60.0, lambda: seen.append(2))
        sim.run(until=50.0)
        sim.run(until=100.0)
        assert seen == [1, 2]

    def test_max_events_budget(self):
        sim = Simulator()
        for i in range(10):
            sim.call_at(float(i), lambda: None)
        executed = sim.run(max_events=4)
        assert executed == 4
        assert sim.pending == 6

    def test_step_executes_one_event(self):
        sim = Simulator()
        seen = []
        sim.call_at(1.0, lambda: seen.append(1))
        sim.call_at(2.0, lambda: seen.append(2))
        assert sim.step()
        assert seen == [1]

    def test_step_on_empty_queue_returns_false(self):
        assert not Simulator().step()

    def test_drain_detects_runaway_loops(self):
        sim = Simulator()

        def reschedule():
            sim.call_after(1.0, reschedule)

        sim.call_at(0.0, reschedule)
        with pytest.raises(SimulationError):
            sim.drain(max_events=100)

    def test_executed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.call_at(float(i), lambda: None)
        sim.run()
        assert sim.executed == 5


class TestLiveCount:
    """The live-event counter behind the O(1) ``pending`` property."""

    def test_cancel_decrements_immediately(self):
        sim = Simulator()
        handles = [sim.call_at(float(i + 1), lambda: None) for i in range(5)]
        assert sim.pending == 5
        handles[0].cancel()
        handles[3].cancel()
        assert sim.pending == 3

    def test_double_cancel_does_not_double_decrement(self):
        sim = Simulator()
        keep = sim.call_at(1.0, lambda: None)
        drop = sim.call_at(2.0, lambda: None)
        drop.cancel()
        drop.cancel()
        assert sim.pending == 1
        assert keep.active

    def test_execution_decrements(self):
        sim = Simulator()
        sim.call_at(1.0, lambda: None)
        sim.call_at(2.0, lambda: None)
        sim.step()
        assert sim.pending == 1
        sim.run()
        assert sim.pending == 0

    def test_handle_inert_after_fire(self):
        sim = Simulator()
        handle = sim.call_at(1.0, lambda: None)
        sim.run()
        assert not handle.active
        handle.cancel()  # must be a no-op
        assert sim.pending == 0

    def test_stale_handle_cannot_cancel_recycled_event(self):
        # After its event fires, a handle must never affect a later event
        # that happens to reuse the same pooled Event object.
        sim = Simulator()
        seen = []
        old = sim.call_at(1.0, lambda: None)
        sim.run()
        fresh = sim.call_at(2.0, lambda: seen.append("fresh"))
        old.cancel()
        assert fresh.active
        sim.run()
        assert seen == ["fresh"]

    def test_drain_with_cancelled_events(self):
        sim = Simulator()
        seen = []
        sim.call_at(1.0, lambda: seen.append(1))
        sim.call_at(2.0, lambda: None).cancel()
        assert sim.drain() == 1
        assert seen == [1]
        assert sim.pending == 0


class TestCompactionAndPool:
    """Cancel-heavy churn: the heap compacts, events are recycled, and
    delivery order is unaffected."""

    def test_mass_cancellation_preserves_order(self):
        sim = Simulator()
        seen = []
        handles = []
        for i in range(1000):
            handles.append(
                sim.call_at(float(i), lambda i=i: seen.append(i)))
        for i, handle in enumerate(handles):
            if i % 10 != 0:
                handle.cancel()
        assert sim.pending == 100
        sim.run()
        assert seen == list(range(0, 1000, 10))
        assert sim.pending == 0

    def test_cancel_reschedule_churn_stays_consistent(self):
        # The protocol hot pattern: cancel a far-out timer and re-arm it on
        # every 'reply'.  Counts must stay exact through pooling/compaction.
        sim = Simulator()
        fired = []
        state = {"timer": None, "count": 0}

        def on_timer():
            fired.append(sim.now)

        def reply():
            state["count"] += 1
            if state["timer"] is not None:
                state["timer"].cancel()
            state["timer"] = sim.call_after(10_000.0, on_timer)
            if state["count"] < 500:
                sim.call_after(1.0, reply)

        sim.call_at(0.0, reply)
        sim.run(until=600.0)
        assert state["count"] == 500
        assert fired == []  # always re-armed before expiry
        assert sim.pending == 1  # exactly the last timer survives
        sim.run()
        assert fired == [10_000.0 + 499.0]

    def test_args_passed_to_callback(self):
        sim = Simulator()
        seen = []
        sim.call_at(1.0, seen.append, args=(42,))
        sim.call_after(2.0, lambda a, b: seen.append(a + b), args=(1, 2))
        sim.run()
        assert seen == [42, 3]

    def test_cancellation_inside_callback_during_run(self):
        # Compaction can trigger mid-run (a callback cancels en masse); the
        # remaining schedule must still fire in order.
        sim = Simulator()
        seen = []
        victims = [sim.call_at(50.0 + i, lambda i=i: seen.append(i))
                   for i in range(200)]

        def massacre():
            for v in victims[1:]:
                v.cancel()

        sim.call_at(10.0, massacre)
        sim.call_at(40.0, lambda: seen.append("pre"))
        sim.run()
        assert seen == ["pre", 0]


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def trace():
            sim = Simulator()
            log = []
            # A small cascade of events with ties.
            for i in range(20):
                sim.call_at(float(i % 5),
                            lambda i=i: log.append((sim.now, i)))
            sim.run()
            return log

        assert trace() == trace()


class TestCallEvery:
    def test_ticks_land_on_exact_multiples(self):
        sim = Simulator()
        times = []
        sim.run(until=150.0)
        sim.call_every(100.0, lambda: times.append(sim.now), 500.0)
        sim.run(until=1_000.0)
        assert times == [150.0, 250.0, 350.0, 450.0]

    def test_one_live_event_at_a_time(self):
        sim = Simulator()
        sim.call_every(10.0, lambda: None, 10_000_000.0)
        assert sim.pending == 1

    def test_until_is_inclusive(self):
        sim = Simulator()
        times = []
        sim.call_every(50.0, lambda: times.append(sim.now), 100.0)
        sim.run()
        assert times == [0.0, 50.0, 100.0]

    def test_past_horizon_schedules_nothing(self):
        sim = Simulator()
        sim.run(until=500.0)
        sim.call_every(10.0, lambda: None, 100.0)
        assert sim.pending == 0

    def test_rejects_nonpositive_period(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.call_every(0.0, lambda: None, 100.0)
