"""Tests for the replicated applications."""

import pytest
from hypothesis import given, strategies as st

from repro.smr.app import KVStore, NullService


class TestNullService:
    def test_reply_size(self):
        service = NullService(reply_size=16)
        assert service.execute("anything") == b"\x00" * 16

    def test_zero_reply(self):
        assert NullService().execute(1) == b""

    def test_negative_reply_size_rejected(self):
        with pytest.raises(ValueError):
            NullService(reply_size=-1)

    def test_digest_tracks_order(self):
        a, b = NullService(), NullService()
        a.execute(1)
        a.execute(2)
        b.execute(2)
        b.execute(1)
        assert a.state_digest() != b.state_digest()

    def test_digest_equal_for_equal_histories(self):
        a, b = NullService(), NullService()
        for op in (1, "x", None):
            a.execute(op)
            b.execute(op)
        assert a.state_digest() == b.state_digest()

    def test_snapshot_restore_preserves_count(self):
        service = NullService()
        for i in range(5):
            service.execute(i)
        snapshot = service.snapshot()
        other = NullService()
        other.restore(snapshot)
        assert other.executed_count == 5


class TestKVStore:
    def test_put_get(self):
        kv = KVStore()
        assert kv.execute(("put", "k", "v")) is None
        assert kv.execute(("get", "k")) == "v"

    def test_put_returns_previous(self):
        kv = KVStore()
        kv.execute(("put", "k", "v1"))
        assert kv.execute(("put", "k", "v2")) == "v1"

    def test_delete(self):
        kv = KVStore()
        kv.execute(("put", "k", "v"))
        assert kv.execute(("delete", "k")) == "v"
        assert kv.execute(("get", "k")) is None

    def test_delete_missing_returns_none(self):
        assert KVStore().execute(("delete", "nope")) is None

    def test_cas_success_and_failure(self):
        kv = KVStore()
        kv.execute(("put", "k", "a"))
        assert kv.execute(("cas", "k", "a", "b")) is True
        assert kv.execute(("cas", "k", "a", "c")) is False
        assert kv.execute(("get", "k")) == "b"

    def test_malformed_op_raises(self):
        with pytest.raises(ValueError):
            KVStore().execute("not-a-tuple")
        with pytest.raises(ValueError):
            KVStore().execute(("unknown", "k"))

    def test_digest_reflects_content(self):
        a, b = KVStore(), KVStore()
        a.execute(("put", "k", 1))
        b.execute(("put", "k", 2))
        assert a.state_digest() != b.state_digest()

    def test_snapshot_restore_roundtrip(self):
        kv = KVStore()
        kv.execute(("put", "x", 1))
        kv.execute(("put", "y", [1, 2]))
        clone = KVStore()
        clone.restore(kv.snapshot())
        assert clone.state_digest() == kv.state_digest()
        assert clone.get("y") == [1, 2]

    def test_snapshot_is_isolated(self):
        kv = KVStore()
        kv.execute(("put", "x", 1))
        snapshot = kv.snapshot()
        kv.execute(("put", "x", 2))
        clone = KVStore()
        clone.restore(snapshot)
        assert clone.get("x") == 1

    @given(st.lists(st.tuples(st.sampled_from(["put", "delete"]),
                              st.sampled_from(["a", "b", "c"]),
                              st.integers(0, 5)),
                    max_size=30))
    def test_determinism_property(self, script):
        """Two stores fed the same operations end in the same state."""
        a, b = KVStore(), KVStore()
        for verb, key, value in script:
            op = ("put", key, value) if verb == "put" else ("delete", key)
            assert a.execute(op) == b.execute(op)
        assert a.state_digest() == b.state_digest()
