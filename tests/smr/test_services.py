"""Tests for the higher-level replicated services."""

import pytest
from hypothesis import given, strategies as st

from repro.smr.services import CounterService, FifoQueue, LockService


class TestLockService:
    def test_grant_and_release(self):
        locks = LockService()
        assert locks.execute(("acquire", "L", 1)) == ("ok", "granted")
        assert locks.execute(("holder", "L")) == ("ok", 1)
        assert locks.execute(("release", "L", 1)) == ("ok", None)
        assert locks.execute(("holder", "L")) == ("ok", None)

    def test_fifo_handoff(self):
        locks = LockService()
        locks.execute(("acquire", "L", 1))
        assert locks.execute(("acquire", "L", 2)) == ("ok", "queued")
        assert locks.execute(("acquire", "L", 3)) == ("ok", "queued")
        assert locks.execute(("waiters", "L")) == ("ok", (2, 3))
        assert locks.execute(("release", "L", 1)) == ("ok", 2)
        assert locks.execute(("holder", "L")) == ("ok", 2)
        assert locks.execute(("release", "L", 2)) == ("ok", 3)

    def test_reentrant_acquire(self):
        locks = LockService()
        locks.execute(("acquire", "L", 1))
        assert locks.execute(("acquire", "L", 1)) == ("ok", "granted")

    def test_release_by_non_owner_rejected(self):
        locks = LockService()
        locks.execute(("acquire", "L", 1))
        assert locks.execute(("release", "L", 2)) == ("error", "NotOwner")

    def test_duplicate_waiter_not_requeued(self):
        locks = LockService()
        locks.execute(("acquire", "L", 1))
        locks.execute(("acquire", "L", 2))
        locks.execute(("acquire", "L", 2))
        assert locks.execute(("waiters", "L")) == ("ok", (2,))

    def test_snapshot_roundtrip(self):
        locks = LockService()
        locks.execute(("acquire", "L", 1))
        locks.execute(("acquire", "L", 2))
        clone = LockService()
        clone.restore(locks.snapshot())
        assert clone.state_digest() == locks.state_digest()
        assert clone.execute(("release", "L", 1)) == ("ok", 2)

    def test_malformed_ops(self):
        locks = LockService()
        assert locks.execute("nope") == ("error", "BadArguments")
        assert locks.execute(("bogus",)) == ("error", "BadArguments")


class TestFifoQueue:
    def test_enqueue_dequeue_order(self):
        queue = FifoQueue()
        for item in ("a", "b", "c"):
            queue.execute(("enqueue", "q", item))
        assert queue.execute(("dequeue", "q")) == ("ok", "a")
        assert queue.execute(("dequeue", "q")) == ("ok", "b")
        assert queue.execute(("peek", "q")) == ("ok", "c")
        assert queue.execute(("depth", "q")) == ("ok", 1)

    def test_dequeue_empty_returns_none(self):
        assert FifoQueue().execute(("dequeue", "q")) == ("ok", None)

    def test_independent_queues(self):
        queue = FifoQueue()
        queue.execute(("enqueue", "a", 1))
        queue.execute(("enqueue", "b", 2))
        assert queue.execute(("dequeue", "a")) == ("ok", 1)
        assert queue.execute(("depth", "b")) == ("ok", 1)

    def test_snapshot_roundtrip(self):
        queue = FifoQueue()
        queue.execute(("enqueue", "q", "x"))
        clone = FifoQueue()
        clone.restore(queue.snapshot())
        assert clone.state_digest() == queue.state_digest()

    @given(st.lists(st.integers(0, 100), max_size=30))
    def test_queue_preserves_order_property(self, items):
        queue = FifoQueue()
        for item in items:
            queue.execute(("enqueue", "q", item))
        out = []
        while True:
            _, item = queue.execute(("dequeue", "q"))
            if item is None:
                break
            out.append(item)
        assert out == items


class TestCounterService:
    def test_incr_get(self):
        counters = CounterService()
        assert counters.execute(("incr", "c", 5)) == ("ok", 5)
        assert counters.execute(("incr", "c", -2)) == ("ok", 3)
        assert counters.execute(("get", "c")) == ("ok", 3)

    def test_missing_counter_is_zero(self):
        assert CounterService().execute(("get", "x")) == ("ok", 0)

    def test_cas(self):
        counters = CounterService()
        assert counters.execute(("cas", "c", 0, 10)) == ("ok", True)
        assert counters.execute(("cas", "c", 0, 20)) == ("ok", False)
        assert counters.execute(("get", "c")) == ("ok", 10)

    def test_snapshot_roundtrip(self):
        counters = CounterService()
        counters.execute(("incr", "c", 7))
        clone = CounterService()
        clone.restore(counters.snapshot())
        assert clone.state_digest() == counters.state_digest()


class TestReplicatedLockService:
    def test_lock_handoff_through_xpaxos(self):
        from repro.common.config import ClusterConfig, ProtocolName
        from repro.protocols.registry import build_cluster
        from tests.conftest import FAST_TIMEOUTS

        config = ClusterConfig(t=1, protocol=ProtocolName.XPAXOS,
                               **FAST_TIMEOUTS)
        runtime = build_cluster(config, num_clients=2,
                                app_factory=LockService, seed=17)

        def call(client, op):
            done = []
            client.on_result = done.append
            client.propose(op, size_bytes=32)
            runtime.sim.run(until=runtime.sim.now + 2_000.0)
            return done[0] if done else None

        alice, bob = runtime.clients
        assert call(alice, ("acquire", "L", 0)) == ("ok", "granted")
        assert call(bob, ("acquire", "L", 1)) == ("ok", "queued")
        assert call(alice, ("release", "L", 0)) == ("ok", 1)
        assert call(bob, ("holder", "L")) == ("ok", 1)
        digests = {r.app.state_digest() for r in runtime.replicas
                   if r.committed_requests > 0}
        assert len(digests) == 1
