"""Tests for prepare/commit log containers."""

import pytest

from repro.crypto.primitives import KeyStore
from repro.smr.log import CommitEntry, CommitLog, PrepareEntry, PrepareLog
from repro.smr.messages import Batch, Request


def entry(seqno, view=0):
    ks = KeyStore()
    batch = Batch((Request(op=seqno, timestamp=seqno, client=0),))
    sig = ks.sign("r0", ("e", seqno, view))
    return CommitEntry(seqno, view, batch, (sig,))


class TestSparseLog:
    def test_put_get(self):
        log = CommitLog()
        e = entry(1)
        log.put(1, e)
        assert log.get(1) is e
        assert 1 in log
        assert len(log) == 1

    def test_get_missing_returns_none(self):
        assert CommitLog().get(42) is None

    def test_end_tracks_highest(self):
        log = CommitLog()
        log.put(3, entry(3))
        log.put(7, entry(7))
        log.put(5, entry(5))
        assert log.end == 7

    def test_end_of_empty_log_is_low_water(self):
        log = CommitLog()
        assert log.end == 0
        log.put(5, entry(5))
        log.truncate_to(5)
        assert log.end == 5

    def test_items_in_order(self):
        log = CommitLog()
        for sn in (9, 2, 5):
            log.put(sn, entry(sn))
        assert [sn for sn, _ in log.items()] == [2, 5, 9]

    def test_truncate(self):
        log = CommitLog()
        for sn in range(1, 8):
            log.put(sn, entry(sn))
        removed = log.truncate_to(4)
        assert removed == 4
        assert log.low_water == 4
        assert log.get(4) is None
        assert log.get(5) is not None

    def test_put_below_low_water_ignored(self):
        log = CommitLog()
        log.put(5, entry(5))
        log.truncate_to(5)
        log.put(3, entry(3))
        assert log.get(3) is None

    def test_drop_models_data_loss(self):
        log = CommitLog()
        log.put(1, entry(1))
        log.drop(1)
        assert log.get(1) is None
        log.drop(1)  # idempotent

    def test_copy_is_independent(self):
        log = CommitLog()
        log.put(1, entry(1))
        clone = log.copy()
        clone.put(2, entry(2))
        assert log.get(2) is None
        assert clone.get(1) is not None
        assert clone.low_water == log.low_water

    def test_overwrite_same_slot(self):
        log = CommitLog()
        log.put(1, entry(1, view=0))
        replacement = entry(1, view=3)
        log.put(1, replacement)
        assert log.get(1).view == 3


class TestSelectionRule:
    def test_highest_view_wins(self):
        log = CommitLog()
        log.put(1, entry(1, view=2))
        other = entry(1, view=5)
        assert log.highest_view_entry(1, other) is other

    def test_own_entry_wins_on_tie_or_higher(self):
        log = CommitLog()
        mine = entry(1, view=5)
        log.put(1, mine)
        assert log.highest_view_entry(1, entry(1, view=5)) is mine
        assert log.highest_view_entry(1, entry(1, view=3)) is mine

    def test_missing_local_entry_yields_other(self):
        log = CommitLog()
        other = entry(1, view=0)
        assert log.highest_view_entry(1, other) is other

    def test_both_missing_yields_none(self):
        assert CommitLog().highest_view_entry(1, None) is None


class TestBatch:
    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            Batch(())

    def test_size_bytes_sums_requests(self):
        batch = Batch((
            Request(op=1, timestamp=1, client=0, size_bytes=100),
            Request(op=2, timestamp=2, client=0, size_bytes=28),
        ))
        assert batch.size_bytes == 128
        assert len(batch) == 2
