"""Tests for the shared node/cluster runtime."""

import pytest

from repro.common.config import ClusterConfig, ProtocolName
from repro.common.errors import ConfigurationError
from repro.crypto.costs import CostModel
from repro.crypto.primitives import KeyStore
from repro.net.latency import LatencyModel
from repro.net.network import Network
from repro.sim.core import Simulator
from repro.smr.app import NullService
from repro.smr.runtime import ClusterRuntime, NodeBase, ReplicaBase
from tests.conftest import make_cluster


class _EchoNode(NodeBase):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.received = []

    def on_message(self, src, payload):
        self.received.append((src, payload))


def lan(sim):
    return Network(sim, LatencyModel.uniform(["X"], one_way_ms=1.0))


class TestNodeBase:
    def test_messages_counted_and_dispatched(self):
        sim = Simulator()
        network = lan(sim)
        keystore = KeyStore()
        a = _EchoNode(sim, network, "a", "X", keystore)
        b = _EchoNode(sim, network, "b", "X", keystore)
        a.send("b", "hello")
        sim.run()
        assert b.received == [("a", "hello")]
        assert b.messages_received == 1

    def test_crashed_node_drops_deliveries(self):
        sim = Simulator()
        network = lan(sim)
        keystore = KeyStore()
        a = _EchoNode(sim, network, "a", "X", keystore)
        b = _EchoNode(sim, network, "b", "X", keystore)
        b.crash()
        a.send("b", "hello")
        sim.run()
        assert b.received == []

    def test_cpu_charged_on_replica_crypto(self):
        runtime = make_cluster(num_clients=1)
        replica = runtime.replica(0)
        replica.cpu.cost_model = CostModel()  # type: ignore[misc]
        replica.cpu = type(replica.cpu)(CostModel())
        replica.sign("payload")
        assert replica.cpu.busy_us == CostModel().sign_us


class TestReplicaBase:
    def test_name_helpers(self):
        runtime = make_cluster()
        replica = runtime.replica(1)
        assert replica.replica_name(0) == "r0"
        assert replica.all_replica_names() == ["r0", "r1", "r2"]
        assert replica.other_replica_names() == ["r0", "r2"]

    def test_sign_verify_roundtrip(self):
        runtime = make_cluster()
        replica = runtime.replica(0)
        sig = replica.sign(("data", 1))
        assert replica.verify(sig, ("data", 1))
        assert not replica.verify(sig, ("data", 2))


class TestClusterRuntime:
    def test_replicas_must_be_added_in_order(self):
        sim = Simulator()
        network = lan(sim)
        keystore = KeyStore()
        config = ClusterConfig(t=1, protocol=ProtocolName.XPAXOS)
        runtime = ClusterRuntime(config, sim, network, keystore)
        from repro.protocols.xpaxos.replica import XPaxosReplica

        out_of_order = XPaxosReplica(1, config, sim, network, keystore,
                                     NullService, "X")
        with pytest.raises(ConfigurationError):
            runtime.add_replica(out_of_order)

    def test_correct_replicas_excludes_crashed(self):
        runtime = make_cluster()
        runtime.replica(1).crash()
        up = {r.replica_id for r in runtime.correct_replicas()}
        assert up == {0, 2}


class TestClientBase:
    def test_timestamps_monotone(self):
        runtime = make_cluster(num_clients=1)
        client = runtime.clients[0]
        assert client.next_timestamp() == 1
        assert client.next_timestamp() == 2

    def test_completion_recording(self):
        runtime = make_cluster(num_clients=1)
        client = runtime.clients[0]
        seen = []
        client.on_commit = lambda rid, latency: seen.append((rid, latency))
        runtime.sim.call_at(10.0, lambda: client.record_completion(
            (0, 1), sent_at=4.0))
        runtime.sim.run()
        assert seen == [((0, 1), 6.0)]
        assert client.completions[0][2] == (0, 1)
