"""Property tests linking the probability and failure forms of the
reliability closed forms."""

import pytest
from hypothesis import given, strategies as st

from repro.reliability.models import (
    epsilon_from_nines,
    nines_of_failure,
    p_bft_available,
    p_bft_consistent,
    p_cft_available,
    p_cft_consistent,
    p_xft_available,
    p_xft_consistent,
    q_bft_available,
    q_bft_consistent,
    q_cft_available,
    q_cft_consistent,
    q_xft_available,
    q_xft_consistent,
)

probabilities = st.floats(min_value=0.5, max_value=0.9999,
                          allow_nan=False)


class TestComplementConsistency:
    """For moderate probabilities (where double precision suffices), the
    p-form and q-form must agree: p + q == 1."""

    @given(p=probabilities, t=st.integers(1, 3))
    def test_cft_consistent(self, p, t):
        n = 2 * t + 1
        assert p_cft_consistent(p, n) + q_cft_consistent(1 - p, n) == \
            pytest.approx(1.0, abs=1e-12)

    @given(p=probabilities, t=st.integers(1, 3))
    def test_bft_consistent(self, p, t):
        assert p_bft_consistent(p, t) + q_bft_consistent(1 - p, t) == \
            pytest.approx(1.0, abs=1e-12)

    @given(p=probabilities, t=st.integers(1, 3))
    def test_xft_available(self, p, t):
        assert p_xft_available(p, t) + q_xft_available(1 - p, t) == \
            pytest.approx(1.0, abs=1e-12)

    @given(p=probabilities, t=st.integers(1, 3))
    def test_bft_available(self, p, t):
        assert p_bft_available(p, t) + q_bft_available(1 - p, t) == \
            pytest.approx(1.0, abs=1e-12)

    @given(p_benign=probabilities, sync=probabilities,
           t=st.integers(1, 3))
    def test_xft_consistent(self, p_benign, sync, t):
        p_correct = p_benign * 0.999
        total = (p_xft_consistent(p_benign, p_correct, sync, t)
                 + q_xft_consistent(1 - p_benign, 1 - p_correct,
                                    1 - sync, t))
        assert total == pytest.approx(1.0, abs=1e-9)

    @given(p_benign=probabilities, t=st.integers(1, 3))
    def test_cft_available(self, p_benign, t):
        p_available = p_benign * 0.99
        total = (p_cft_available(p_available, p_benign, t)
                 + q_cft_available(1 - p_available, 1 - p_benign, t))
        assert total == pytest.approx(1.0, abs=1e-9)


class TestHighNinesPrecision:
    """The q-forms keep full precision where the p-forms saturate."""

    def test_deep_tail_is_resolved(self):
        # 8 nines of availability at t=2: failure ~ C(5,3) * 1e-24.
        q = q_xft_available(epsilon_from_nines(8), t=2)
        assert 0 < q < 1e-22
        assert nines_of_failure(q) == 23

    def test_q_forms_monotone_in_epsilon(self):
        values = [q_xft_available(epsilon_from_nines(k), t=1)
                  for k in range(1, 12)]
        assert values == sorted(values, reverse=True)

    def test_xft_consistency_epsilon_monotone(self):
        values = [q_xft_consistent(epsilon_from_nines(k),
                                   epsilon_from_nines(max(k - 1, 1)),
                                   epsilon_from_nines(3), t=1)
                  for k in range(2, 12)]
        assert values == sorted(values, reverse=True)

    @given(k=st.integers(1, 15), t=st.integers(1, 3))
    def test_q_in_unit_interval(self, k, t):
        eps = epsilon_from_nines(k)
        for q in (q_xft_available(eps, t), q_bft_available(eps, t),
                  q_bft_consistent(eps, t),
                  q_cft_consistent(eps, 2 * t + 1)):
            assert 0.0 <= q <= 1.0
