"""Tests regenerating the paper's Appendix D tables (5-8)."""

import pytest

from repro.reliability.tables import (
    availability_cell,
    availability_table,
    consistency_cell,
    consistency_table,
    format_availability_table,
    format_consistency_table,
)


class TestTable5:
    """Nines of consistency, t = 1 (spot values straight from the paper)."""

    def test_first_row(self):
        # 9benign=3, 9correct=2, 9synchrony=2 -> CFT 2, XPaxos 3, BFT 5.
        row = consistency_cell(1, 3, 2, 2)
        assert (row.cft, row.xpaxos, row.bft) == (2, 3, 5)

    def test_benign4_correct3_sync3(self):
        # Table 5: 9benign=4, 9correct=3, 9synchrony=3 -> XPaxos 5, BFT 7.
        row = consistency_cell(1, 4, 3, 3)
        assert (row.cft, row.xpaxos, row.bft) == (3, 5, 7)

    def test_benign5_correct4_sync4(self):
        row = consistency_cell(1, 5, 4, 4)
        assert (row.cft, row.xpaxos, row.bft) == (4, 7, 9)

    def test_benign8_correct7_sync6(self):
        # Last row of Table 5: 9benign=8, 9correct=7, sync 2..6 reads
        # "9 10 11 12 13"; the sync=6 cell is 13.
        row = consistency_cell(1, 8, 7, 6)
        assert (row.cft, row.xpaxos, row.bft) == (7, 13, 15)

    def test_benign6_correct3_row(self):
        # Table 5 row 9benign=6, 9correct=3 reads "7 7 8 8 8" over
        # sync 2..6: the 9sync = 9correct cell loses one nine
        # (the paper's '9correct - 1' special case).
        values = [consistency_cell(1, 6, 3, ns).xpaxos
                  for ns in (2, 3, 4, 5, 6)]
        assert values == [7, 7, 8, 8, 8]

    def test_grid_shape(self):
        rows = consistency_table(1)
        # 9benign in 3..8, 9correct in 2..(9benign-1), 9sync in 2..6.
        expected = sum((nb - 2) * 5 for nb in range(3, 9))
        assert len(rows) == expected


class TestTable6:
    """Nines of consistency, t = 2."""

    def test_first_row(self):
        # 9benign=3, 9correct=2, 9sync=2 -> CFT 2, XPaxos 4, BFT 7.
        row = consistency_cell(2, 3, 2, 2)
        assert (row.cft, row.xpaxos, row.bft) == (2, 4, 7)

    def test_benign4_correct3_sync3(self):
        # Table 6: -> CFT 3, XPaxos 7, BFT 10.
        row = consistency_cell(2, 4, 3, 3)
        assert (row.cft, row.xpaxos, row.bft) == (3, 7, 10)

    def test_benign5_correct4_sync4(self):
        row = consistency_cell(2, 5, 4, 4)
        assert (row.cft, row.xpaxos, row.bft) == (4, 10, 13)

    def test_t2_adds_more_nines_than_t1(self):
        t1 = consistency_cell(1, 5, 4, 4)
        t2 = consistency_cell(2, 5, 4, 4)
        assert t2.xpaxos > t1.xpaxos


class TestTable7:
    """Nines of availability, t = 1."""

    def test_avail2_row(self):
        # Table 7 row 9avail=2 reads: CFT "2 3 3 3 3 3" over
        # 9benign 3..8, BFT 3, XPaxos 3.
        cfts = [availability_cell(1, 2, nb).cft for nb in range(3, 9)]
        assert cfts == [2, 3, 3, 3, 3, 3]
        for nb in range(3, 9):
            row = availability_cell(1, 2, nb)
            assert (row.bft, row.xpaxos) == (3, 3)

    def test_avail3_row(self):
        # Table 7 row 9avail=3 reads: CFT "3 4 5 5 5" over 9benign 4..8,
        # BFT 5, XPaxos 5.
        cfts = [availability_cell(1, 3, nb).cft for nb in range(4, 9)]
        assert cfts == [3, 4, 5, 5, 5]
        for nb in range(4, 9):
            row = availability_cell(1, 3, nb)
            assert (row.bft, row.xpaxos) == (5, 5)

    def test_avail6_benign7(self):
        row = availability_cell(1, 6, 7)
        assert row.xpaxos == 11
        assert row.bft == 11

    def test_grid_shape(self):
        rows = availability_table(1)
        expected = sum(8 - na for na in range(2, 7))
        assert len(rows) == expected


class TestTable8:
    """Nines of availability, t = 2."""

    def test_avail2_benign3(self):
        # Table 8 first cell: CFT 2, BFT 4, XPaxos 5.
        row = availability_cell(2, 2, 3)
        assert (row.cft, row.bft, row.xpaxos) == (2, 4, 5)

    def test_avail2_row_cft(self):
        # Table 8 row 9avail=2 CFT column: "2 3 4 4 4 5" over benign 3..8.
        cfts = [availability_cell(2, 2, nb).cft for nb in range(3, 9)]
        assert cfts == [2, 3, 4, 4, 4, 5]

    def test_avail3_benign4(self):
        row = availability_cell(2, 3, 4)
        assert (row.cft, row.bft, row.xpaxos) == (3, 7, 8)

    def test_avail6_benign7(self):
        row = availability_cell(2, 6, 7)
        assert (row.bft, row.xpaxos) == (16, 17)

    def test_xpaxos_always_at_least_bft(self):
        for row in availability_table(2):
            assert row.xpaxos >= row.bft


class TestFormatting:
    def test_consistency_table_renders(self):
        text = format_consistency_table(consistency_table(1)[:5])
        assert "XPaxos" in text
        assert len(text.splitlines()) == 7

    def test_availability_table_renders(self):
        text = format_availability_table(availability_table(1)[:3])
        assert "9avail" in text
