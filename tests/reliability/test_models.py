"""Tests for the Section 6 reliability closed forms."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ConfigurationError
from repro.reliability.models import (
    anarchy,
    fault_tolerance_table,
    nines_of,
    p_bft_available,
    p_bft_consistent,
    p_cft_available,
    p_cft_consistent,
    p_sync_bft_consistent,
    p_xft_available,
    p_xft_consistent,
    probability_from_nines,
)


class TestNines:
    def test_paper_example(self):
        assert nines_of(0.999) == 3  # the paper's own example

    def test_more_values(self):
        assert nines_of(0.9) == 1
        assert nines_of(0.99999) == 5
        assert nines_of(0.5) == 0

    def test_one_is_infinite(self):
        assert nines_of(1.0) == math.inf

    def test_inverse(self):
        for k in range(1, 10):
            assert nines_of(probability_from_nines(k)) == k

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            nines_of(1.5)
        with pytest.raises(ConfigurationError):
            nines_of(-0.1)


class TestCftConsistency:
    def test_closed_form(self):
        assert p_cft_consistent(0.999, 3) == pytest.approx(0.999 ** 3)

    def test_rule_of_thumb_loses_one_nine(self):
        """Section 6.1: for n < 10, 9ofC(CFT) ~ 9benign - 1."""
        for nb in range(3, 9):
            p = probability_from_nines(nb)
            assert nines_of(p_cft_consistent(p, 3)) == nb - 1


class TestPaperExample1:
    """Section 6.1.1 Example 1: p_benign = 0.9999,
    p_correct = p_synchrony = 0.999."""

    def test_cft_gets_3_nines(self):
        assert nines_of(p_cft_consistent(0.9999, 3)) == 3

    def test_xpaxos_gets_5_nines(self):
        p = p_xft_consistent(0.9999, 0.999, 0.999, t=1)
        assert nines_of(p) == 5

    def test_bft_gets_7_nines(self):
        assert nines_of(p_bft_consistent(0.9999, t=1)) == 7


class TestPaperExample2:
    """Section 6.1.1 Example 2: p_benign = p_synchrony = 0.9999,
    p_correct = 0.999."""

    def test_cft_gets_3_nines(self):
        assert nines_of(p_cft_consistent(0.9999, 3)) == 3

    def test_xpaxos_gets_6_nines(self):
        p = p_xft_consistent(0.9999, 0.999, 0.9999, t=1)
        assert nines_of(p) == 6

    def test_bft_gets_7_nines(self):
        assert nines_of(p_bft_consistent(0.9999, t=1)) == 7


class TestXftVsBftCrossover:
    def test_t1_condition_p_available_vs_p_benign_1_5(self):
        """Section 6.1.2: for t = 1, XPaxos beats BFT consistency iff
        p_available > p_benign^1.5."""
        cases = [
            (0.9999, 0.9999, 0.99999),
            (0.999, 0.999, 0.9999),
            (0.99999, 0.9999, 0.9999),
        ]
        for p_benign, p_correct, p_synchrony in cases:
            p_available = p_correct * p_synchrony
            xft = p_xft_consistent(p_benign, p_correct, p_synchrony, t=1)
            bft = p_bft_consistent(p_benign, t=1)
            if p_available > p_benign ** 1.5:
                assert xft > bft, (p_benign, p_correct, p_synchrony)

    def test_xft_consistency_never_beats_bft_by_a_nine_at_t1(self):
        """The paper: even when XPaxos is 'slightly' better it does not
        materialize in additional nines."""
        for nb in range(3, 7):
            for nc in range(2, nb):
                for ns in range(2, 7):
                    xft = p_xft_consistent(
                        probability_from_nines(nb),
                        probability_from_nines(nc),
                        probability_from_nines(ns), t=1)
                    bft = p_bft_consistent(probability_from_nines(nb), t=1)
                    assert nines_of(xft) <= nines_of(bft)


class TestAvailability:
    def test_xpaxos_equals_bft_nines_at_t1(self):
        """Section 6.2.2: 9ofA(XPaxos_t1) = 9ofA(BFT_t1) = 2*9avail - 1."""
        for na in range(2, 7):
            p = probability_from_nines(na)
            x = nines_of(p_xft_available(p, t=1))
            b = nines_of(p_bft_available(p, t=1))
            assert x == b == 2 * na - 1

    def test_xpaxos_one_more_nine_than_bft_at_t2(self):
        """Section 6.2.2: 9ofA(XPaxos_t2) = 9ofA(BFT_t2) + 1 =
        3*9avail - 1."""
        from repro.reliability.models import (
            epsilon_from_nines,
            nines_of_failure,
            q_bft_available,
            q_xft_available,
        )

        for na in range(2, 7):
            eps = epsilon_from_nines(na)
            x = nines_of_failure(q_xft_available(eps, t=2))
            b = nines_of_failure(q_bft_available(eps, t=2))
            assert x == 3 * na - 1
            assert x == b + 1

    def test_section_6_2_1_example(self):
        """p_available = 0.999, p_benign = 0.99999: XPaxos 5 nines,
        CFT 4 nines."""
        assert nines_of(p_xft_available(0.999, t=1)) == 5
        assert nines_of(p_cft_available(0.999, 0.99999, t=1)) == 4

    def test_xft_availability_dominates_cft(self):
        for na in range(2, 7):
            for nb in range(na + 1, 9):
                pa = probability_from_nines(na)
                pb = probability_from_nines(nb)
                assert p_xft_available(pa, 1) >= \
                    p_cft_available(pa, pb, 1) - 1e-15


class TestDominanceProperties:
    @given(nb=st.integers(2, 10), nc=st.integers(1, 10),
           ns=st.integers(1, 10))
    def test_xft_consistency_dominates_cft(self, nb, nc, ns):
        """Table 1: XFT's consistency guarantees strictly contain CFT's."""
        nc = min(nc, nb)
        p_benign = probability_from_nines(nb)
        p_correct = probability_from_nines(nc)
        p_synchrony = probability_from_nines(ns)
        xft = p_xft_consistent(p_benign, p_correct, p_synchrony, t=1)
        cft = p_cft_consistent(p_benign, 3)
        assert xft >= cft - 1e-15

    @given(t=st.integers(1, 3), nb=st.integers(2, 8))
    def test_probabilities_in_range(self, t, nb):
        p_benign = probability_from_nines(nb)
        p = p_xft_consistent(p_benign, p_benign, 0.999, t)
        assert 0.0 <= p <= 1.0

    @given(na=st.integers(1, 8), t=st.integers(1, 3))
    def test_xft_availability_monotone_in_p(self, na, t):
        lo = p_xft_available(probability_from_nines(na), t)
        hi = p_xft_available(probability_from_nines(na + 1), t)
        assert hi >= lo

    def test_p_correct_above_p_benign_rejected(self):
        with pytest.raises(ConfigurationError):
            p_xft_consistent(0.99, 0.999, 0.99, 1)


class TestSyncBft:
    def test_consistency_needs_zero_partitions(self):
        # Tolerates n-1 non-crash faults, but a single partitioned replica
        # can break it: consistency probability is synchrony-driven.
        p = p_sync_bft_consistent(0.5, 0.999, 3)
        assert p == pytest.approx(0.999 ** 3)


class TestTable1:
    def test_row_structure(self):
        rows = fault_tolerance_table(n=5)
        assert len(rows) == 9
        by_model = {(r.model, r.property): r for r in rows}
        cft_cons = by_model[("async CFT", "consistency")]
        assert cft_cons.non_crash == 0
        assert cft_cons.crash == 5
        assert cft_cons.partitioned == 4

    def test_xft_consistency_two_modes(self):
        rows = fault_tolerance_table(n=5)
        modes = [r for r in rows
                 if r.model == "XFT" and "consistency" in r.property]
        assert len(modes) == 2
        no_noncrash = next(r for r in modes if "no non-crash" in r.property)
        with_noncrash = next(r for r in modes if "with" in r.property)
        assert no_noncrash.partitioned == 4        # n - 1
        assert with_noncrash.combined
        assert with_noncrash.non_crash == 2        # floor((n-1)/2)

    def test_bft_thresholds(self):
        rows = fault_tolerance_table(n=7)
        bft_cons = next(r for r in rows
                        if r.model == "async BFT"
                        and r.property == "consistency")
        assert bft_cons.non_crash == 2  # floor(6/3)

    def test_small_n_rejected(self):
        with pytest.raises(ConfigurationError):
            fault_tolerance_table(n=2)


class TestAnarchy:
    def test_definition_2(self):
        # anarchy iff tnc > 0 and tnc + tc + tp > t
        assert not anarchy(t=1, tnc=0, tc=5, tp=5)   # no non-crash fault
        assert not anarchy(t=1, tnc=1, tc=0, tp=0)   # sum <= t
        assert anarchy(t=1, tnc=1, tc=1, tp=0)
        assert anarchy(t=1, tnc=2, tc=0, tp=0)
        assert anarchy(t=2, tnc=1, tc=1, tp=1)
        assert not anarchy(t=2, tnc=1, tc=1, tp=0)

    def test_negative_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            anarchy(1, -1, 0, 0)
