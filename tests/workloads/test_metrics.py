"""Tests for latency and throughput recorders."""

import pytest

from repro.workloads.metrics import LatencyRecorder, ThroughputRecorder


class TestLatencyRecorder:
    def test_warmup_filtered(self):
        recorder = LatencyRecorder(warmup_ms=100.0)
        recorder.record(50.0, 5.0)   # during warmup: dropped
        recorder.record(150.0, 7.0)
        assert recorder.count == 1
        assert recorder.summary().mean == 7.0

    def test_empty_summary_is_none(self):
        assert LatencyRecorder().summary() is None

    def test_percentiles(self):
        recorder = LatencyRecorder()
        for value in range(1, 101):
            recorder.record(0.0, float(value))
        summary = recorder.summary()
        assert summary.p50 == 50.0
        assert summary.p95 == 95.0
        assert summary.p99 == 99.0
        assert summary.maximum == 100.0
        assert summary.mean == pytest.approx(50.5)

    def test_single_sample(self):
        recorder = LatencyRecorder()
        recorder.record(0.0, 42.0)
        summary = recorder.summary()
        assert summary.p50 == summary.p99 == summary.maximum == 42.0


class TestThroughputRecorder:
    def test_windows(self):
        recorder = ThroughputRecorder(window_ms=1_000.0)
        recorder.record(100.0)
        recorder.record(900.0)
        recorder.record(1_500.0)
        timeline = recorder.timeline()
        assert timeline == [(0.0, 0.002), (1_000.0, 0.001)]

    def test_total_and_mean(self):
        recorder = ThroughputRecorder()
        for t in (100.0, 200.0, 300.0):
            recorder.record(t)
        assert recorder.total == 3
        assert recorder.mean_kops(1_000.0) == pytest.approx(0.003)

    def test_warmup_filtered(self):
        recorder = ThroughputRecorder(warmup_ms=500.0)
        recorder.record(100.0)
        recorder.record(600.0)
        assert recorder.total == 1

    def test_peak(self):
        recorder = ThroughputRecorder(window_ms=100.0)
        for _ in range(5):
            recorder.record(50.0)
        recorder.record(150.0)
        assert recorder.peak_kops() == pytest.approx(0.05)

    def test_bulk_counts(self):
        recorder = ThroughputRecorder()
        recorder.record(10.0, count=20)
        assert recorder.total == 20

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            ThroughputRecorder(window_ms=0.0)

    def test_zero_duration_mean(self):
        assert ThroughputRecorder().mean_kops(0.0) == 0.0
