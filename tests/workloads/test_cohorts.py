"""Tests for the open-loop client-cohort workload driver."""

import pytest

from repro.common.config import WorkloadConfig
from repro.common.errors import ConfigurationError
from repro.workloads.clients import ClosedLoopDriver, make_driver
from repro.workloads.cohorts import CohortDriver
from tests.conftest import make_cluster


def open_workload(num_clients, rate_rps, duration_ms=1_000.0,
                  warmup_ms=100.0, cohorts=2, seed=0):
    return WorkloadConfig(num_clients=num_clients, request_size=64,
                          duration_ms=duration_ms, warmup_ms=warmup_ms,
                          offered_load_rps=rate_rps, cohorts=cohorts,
                          seed=seed)


class TestSelection:
    def test_requires_offered_load(self):
        runtime = make_cluster(num_clients=2)
        workload = WorkloadConfig(num_clients=2, request_size=64,
                                  duration_ms=200.0, warmup_ms=0.0)
        with pytest.raises(ConfigurationError):
            CohortDriver(runtime, workload)

    def test_make_driver_picks_by_workload(self):
        closed = make_driver(
            make_cluster(num_clients=2),
            WorkloadConfig(num_clients=2, request_size=64,
                           duration_ms=200.0, warmup_ms=0.0))
        assert isinstance(closed, ClosedLoopDriver)
        opened = make_driver(make_cluster(num_clients=2),
                             open_workload(2, rate_rps=100.0))
        assert isinstance(opened, CohortDriver)


class TestCohortDriver:
    def test_deterministic_for_equal_seeds(self):
        def run():
            runtime = make_cluster(num_clients=4)
            driver = CohortDriver(runtime, open_workload(4, rate_rps=400.0))
            driver.run()
            summary = driver.latency.summary()
            return (driver.offered, driver.throughput.total,
                    summary.mean if summary else None)

        assert run() == run()

    def test_different_seeds_draw_different_arrivals(self):
        def offered(seed):
            runtime = make_cluster(num_clients=4)
            driver = CohortDriver(
                runtime, open_workload(4, rate_rps=400.0, seed=seed))
            driver.run()
            return driver.offered

        assert offered(0) != offered(7)

    def test_arrival_rate_tracks_offered_load(self):
        runtime = make_cluster(num_clients=8)
        driver = CohortDriver(
            runtime, open_workload(8, rate_rps=500.0, duration_ms=2_000.0))
        driver.run()
        # Poisson draws at 500 req/s over the measured window land near
        # 0.5 kops/s of arrivals (law of large numbers, loose bound).
        assert driver.offered_load_kops() == pytest.approx(0.5, rel=0.2)

    def test_saturation_grows_backlog(self):
        runtime = make_cluster(num_clients=2)
        driver = CohortDriver(runtime, open_workload(2, rate_rps=20_000.0))
        driver.run()
        assert driver.saturated
        assert driver.backlog_peak > 0
        # Arrivals far outran commits: throughput plateaus well below
        # the offered rate.
        assert driver.throughput.total < driver.offered / 2

    def test_latency_counts_queueing_delay(self):
        def mean_latency(rate_rps):
            runtime = make_cluster(num_clients=2)
            driver = CohortDriver(runtime, open_workload(2, rate_rps))
            driver.run()
            return driver.latency.summary().mean

        # A saturated cohort queues logical clients in the backlog; the
        # wait is part of the arrival-to-commit latency, so the mean is
        # far above the uncongested figure.
        assert mean_latency(20_000.0) > 5.0 * mean_latency(50.0)

    def test_duplicate_commit_counts_as_dropped_sample(self):
        runtime = make_cluster(num_clients=2)
        driver = CohortDriver(runtime, open_workload(2, rate_rps=100.0))
        channel = runtime.clients[0]
        assert driver.dropped_samples == 0
        # A duplicate/late completion (e.g. a retransmit committing a
        # second time) finds its arrival stamp already consumed.  The
        # latency sample is unrecoverable, but it must be *counted*, not
        # silently swallowed by arrived_at.pop(..., None).
        channel.on_commit(("dup-rid", 1), 5.0)
        assert driver.dropped_samples == 1
        # No phantom metrics were recorded for the stampless commit.
        assert driver.throughput.total == 0
        assert driver.latency.summary() is None

    def test_clean_run_reports_zero_dropped_samples(self):
        runtime = make_cluster(num_clients=4)
        driver = CohortDriver(runtime, open_workload(4, rate_rps=400.0))
        driver.run()
        assert driver.throughput.total > 0
        assert driver.dropped_samples == 0

    def test_open_matches_closed_at_matched_load(self):
        closed_runtime = make_cluster(num_clients=8)
        closed = ClosedLoopDriver(
            closed_runtime,
            WorkloadConfig(num_clients=8, request_size=64,
                           duration_ms=2_000.0, warmup_ms=200.0))
        closed.run()
        rate_rps = closed.mean_throughput_kops() * 1_000.0

        open_runtime = make_cluster(num_clients=8)
        opened = CohortDriver(
            open_runtime,
            open_workload(8, rate_rps=rate_rps, duration_ms=2_000.0,
                          warmup_ms=200.0))
        opened.run()
        # At an offered load equal to the closed loop's own throughput
        # the two driver models must agree on delivered throughput.
        assert opened.mean_throughput_kops() == pytest.approx(
            closed.mean_throughput_kops(), rel=0.25)
