"""Tests for the closed-loop workload driver."""

import pytest

from repro.common.config import ProtocolName, WorkloadConfig
from repro.common.errors import ConfigurationError
from repro.workloads.clients import ClosedLoopDriver
from tests.conftest import make_cluster


class TestClosedLoop:
    def test_one_request_in_flight_per_client(self):
        runtime = make_cluster(num_clients=3)
        workload = WorkloadConfig(num_clients=3, request_size=64,
                                  duration_ms=500.0, warmup_ms=0.0)
        driver = ClosedLoopDriver(runtime, workload)
        driver.run()
        # Closed loop: completions per client are sequential, and the
        # client is idle at the end or has exactly one in flight.
        for client in runtime.clients:
            timestamps = [rid[1] for _, _, rid in client.completions]
            assert timestamps == sorted(timestamps)
            assert timestamps == list(range(1, len(timestamps) + 1))

    def test_stops_issuing_at_duration(self):
        runtime = make_cluster(num_clients=2)
        workload = WorkloadConfig(num_clients=2, request_size=64,
                                  duration_ms=300.0, warmup_ms=0.0)
        driver = ClosedLoopDriver(runtime, workload)
        driver.run()
        total = driver.throughput.total
        # Run the sim further: no new requests are issued.
        runtime.sim.run(until=1_000.0)
        assert driver.throughput.total == total

    def test_metrics_populated(self):
        runtime = make_cluster(num_clients=2)
        workload = WorkloadConfig(num_clients=2, request_size=64,
                                  duration_ms=500.0, warmup_ms=50.0)
        driver = ClosedLoopDriver(runtime, workload)
        driver.run()
        assert driver.mean_throughput_kops() > 0
        assert driver.mean_latency_ms() > 0
        assert driver.latency.summary().count == driver.throughput.total

    def test_custom_op_factory(self):
        runtime = make_cluster(num_clients=1)
        seen_ops = []
        runtime.replica(0).on_commit_batch = (
            lambda sn, batch: seen_ops.extend(r.op for r in batch))
        workload = WorkloadConfig(num_clients=1, request_size=64,
                                  duration_ms=200.0, warmup_ms=0.0)
        driver = ClosedLoopDriver(
            runtime, workload,
            op_factory=lambda cid, seq: ("custom", cid, seq))
        driver.run()
        assert seen_ops
        assert all(op[0] == "custom" for op in seen_ops)


class TestStartStagger:
    """Initial sends spread over the first millisecond without cohort
    collisions (regression: >100 clients used to collide modulo 100)."""

    class _FakeClient:
        def __init__(self, sim, index):
            self.sim = sim
            self.client_id = index
            self.name = f"c{index}"
            self.crashed = False
            self.busy = False
            self.on_commit = None
            self.issued_at = None

        def propose(self, op, size_bytes=0):
            self.issued_at = self.sim.now

    def _start_times(self, num_clients):
        from types import SimpleNamespace

        from repro.sim.core import Simulator

        sim = Simulator()
        clients = [self._FakeClient(sim, i) for i in range(num_clients)]
        runtime = SimpleNamespace(sim=sim, clients=clients)
        workload = WorkloadConfig(num_clients=num_clients, request_size=64,
                                  duration_ms=100.0, warmup_ms=0.0)
        driver = ClosedLoopDriver(runtime, workload)
        driver.start()
        sim.run(until=2.0)
        return [c.issued_at for c in clients]

    def test_all_offsets_distinct_beyond_100_clients(self):
        times = self._start_times(150)
        assert None not in times
        assert len(set(times)) == 150
        assert max(times) < 1.0

    def test_small_counts_keep_original_spacing(self):
        times = self._start_times(5)
        assert times == pytest.approx([0.0, 0.01, 0.02, 0.03, 0.04])


class TestWorkloadConfigValidation:
    def test_invalid_warmup_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(duration_ms=100.0, warmup_ms=100.0)

    def test_zero_clients_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(num_clients=0)

    def test_negative_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(request_size=-1)

    def test_benchmark_presets(self):
        one = WorkloadConfig.one_zero()
        four = WorkloadConfig.four_zero()
        assert (one.request_size, one.reply_size) == (1024, 0)
        assert (four.request_size, four.reply_size) == (4096, 0)
