"""Tests for the ZooKeeper data tree."""

import pytest

from repro.zk.datatree import DataTree, ZkError


@pytest.fixture
def tree():
    return DataTree()


class TestCreate:
    def test_create_and_get(self, tree):
        tree.create("/a", b"data")
        assert tree.get("/a") == (b"data", 0)

    def test_create_nested(self, tree):
        tree.create("/a", b"")
        tree.create("/a/b", b"x")
        assert tree.get("/a/b") == (b"x", 0)

    def test_create_without_parent_fails(self, tree):
        with pytest.raises(ZkError) as err:
            tree.create("/missing/child", b"")
        assert err.value.code == "NoNode"

    def test_duplicate_create_fails(self, tree):
        tree.create("/a", b"")
        with pytest.raises(ZkError) as err:
            tree.create("/a", b"")
        assert err.value.code == "NodeExists"

    def test_bad_paths_rejected(self, tree):
        for bad in ("noslash", "/trailing/", "/dou//ble"):
            with pytest.raises(ZkError):
                tree.create(bad, b"")

    def test_sequential_nodes(self, tree):
        first = tree.create("/seq-", b"", sequential=True)
        second = tree.create("/seq-", b"", sequential=True)
        assert first == "/seq-0000000000"
        assert second == "/seq-0000000001"

    def test_ephemeral_cannot_have_children(self, tree):
        tree.create("/e", b"", ephemeral_owner=7)
        with pytest.raises(ZkError) as err:
            tree.create("/e/child", b"")
        assert err.value.code == "NoChildrenForEphemerals"


class TestSetDelete:
    def test_set_bumps_version(self, tree):
        tree.create("/a", b"v0")
        assert tree.set("/a", b"v1") == 1
        assert tree.get("/a") == (b"v1", 1)

    def test_set_with_version_check(self, tree):
        tree.create("/a", b"")
        tree.set("/a", b"x", version=0)
        with pytest.raises(ZkError) as err:
            tree.set("/a", b"y", version=0)
        assert err.value.code == "BadVersion"

    def test_delete(self, tree):
        tree.create("/a", b"")
        tree.delete("/a")
        assert not tree.exists("/a")

    def test_delete_nonempty_fails(self, tree):
        tree.create("/a", b"")
        tree.create("/a/b", b"")
        with pytest.raises(ZkError) as err:
            tree.delete("/a")
        assert err.value.code == "NotEmpty"

    def test_delete_with_bad_version_fails(self, tree):
        tree.create("/a", b"")
        tree.set("/a", b"x")
        with pytest.raises(ZkError):
            tree.delete("/a", version=0)

    def test_delete_root_rejected(self, tree):
        with pytest.raises(ZkError):
            tree.delete("/")


class TestChildren:
    def test_children_sorted(self, tree):
        tree.create("/p", b"")
        for name in ("zeta", "alpha", "mid"):
            tree.create(f"/p/{name}", b"")
        assert tree.get_children("/p") == ["alpha", "mid", "zeta"]

    def test_cversion_bumps(self, tree):
        tree.create("/p", b"")
        before = tree._nodes["/p"].cversion
        tree.create("/p/c", b"")
        assert tree._nodes["/p"].cversion == before + 1


class TestEphemerals:
    def test_session_expiry_removes_ephemerals(self, tree):
        tree.create("/e1", b"", ephemeral_owner=5)
        tree.create("/e2", b"", ephemeral_owner=5)
        tree.create("/persistent", b"")
        removed = tree.expire_session(5)
        assert set(removed) == {"/e1", "/e2"}
        assert tree.exists("/persistent")

    def test_expiry_of_unknown_session_is_noop(self, tree):
        assert tree.expire_session(99) == []


class TestSnapshots:
    def test_digest_deterministic(self):
        a, b = DataTree(), DataTree()
        for tree in (a, b):
            tree.create("/x", b"1")
            tree.create("/x/y", b"2")
        assert a.digest() == b.digest()

    def test_digest_distinguishes_content(self, tree):
        other = DataTree()
        tree.create("/x", b"1")
        other.create("/x", b"2")
        assert tree.digest() != other.digest()

    def test_snapshot_restore_roundtrip(self, tree):
        tree.create("/a", b"1")
        tree.create("/a/b", b"2", ephemeral_owner=3)
        tree.set("/a", b"1b")
        clone = DataTree()
        clone.restore(tree.snapshot())
        assert clone.digest() == tree.digest()
        assert clone.get("/a") == (b"1b", 1)
        # Ephemeral ownership survives the snapshot.
        assert clone.expire_session(3) == ["/a/b"]
