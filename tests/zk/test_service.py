"""Tests for the replicated coordination service."""

import pytest

from repro.common.config import ProtocolName
from repro.zk.service import CoordinationService, zk_write_op
from tests.conftest import make_cluster


class TestLocalSemantics:
    def test_create_get_set(self):
        service = CoordinationService()
        assert service.execute(("create", "/a", b"x")) == ("ok", "/a")
        assert service.execute(("get", "/a")) == ("ok", b"x", 0)
        assert service.execute(("set", "/a", b"y")) == ("ok", 1)

    def test_errors_are_values_not_exceptions(self):
        service = CoordinationService()
        assert service.execute(("get", "/missing")) == ("error", "NoNode")
        assert service.execute("garbage") == ("error", "BadArguments")
        assert service.execute(("bogus-verb",)) == ("error", "BadArguments")

    def test_exists_children_delete(self):
        service = CoordinationService()
        service.execute(("create", "/a", b""))
        assert service.execute(("exists", "/a")) == ("ok", True)
        service.execute(("create", "/a/b", b""))
        assert service.execute(("children", "/a")) == ("ok", ("b",))
        service.execute(("delete", "/a/b"))
        assert service.execute(("exists", "/a/b")) == ("ok", False)

    def test_bench_write_creates_then_versions(self):
        service = CoordinationService()
        op = zk_write_op(client_id=3, seq=1)
        assert service.execute(op)[0] == "ok"
        op2 = zk_write_op(client_id=3, seq=2)
        status, version = service.execute(op2)
        assert status == "ok" and version >= 1

    def test_determinism(self):
        a, b = CoordinationService(), CoordinationService()
        script = [
            ("create", "/x", b"1"),
            ("set", "/x", b"2"),
            ("create", "/x/y", b""),
            ("delete", "/x/y"),
            ("get", "/x"),
        ]
        for op in script:
            assert a.execute(op) == b.execute(op)
        assert a.state_digest() == b.state_digest()

    def test_snapshot_restore(self):
        service = CoordinationService()
        service.execute(("create", "/k", b"v"))
        clone = CoordinationService()
        clone.restore(service.snapshot())
        assert clone.state_digest() == service.state_digest()


class TestReplicatedService:
    @pytest.mark.parametrize("protocol", [
        ProtocolName.XPAXOS, ProtocolName.PAXOS, ProtocolName.ZAB,
        ProtocolName.PBFT, ProtocolName.ZYZZYVA,
    ])
    def test_writes_replicate_under_every_protocol(self, protocol):
        from repro.common.config import ClusterConfig
        from repro.protocols.registry import build_cluster
        from tests.conftest import FAST_TIMEOUTS

        config = ClusterConfig(t=1, protocol=protocol, **FAST_TIMEOUTS)
        runtime = build_cluster(config, num_clients=1,
                                app_factory=CoordinationService, seed=4)
        client = runtime.clients[0]
        results = []
        client.on_result = results.append
        client.propose(zk_write_op(client_id=0, seq=1), size_bytes=1024)
        runtime.sim.run(until=2_000.0)
        assert results and results[0][0] == "ok"

    def test_xpaxos_replicates_tree(self):
        from repro.common.config import ClusterConfig
        from repro.protocols.registry import build_cluster
        from tests.conftest import FAST_TIMEOUTS

        config = ClusterConfig(t=1, protocol=ProtocolName.XPAXOS,
                               **FAST_TIMEOUTS)
        runtime = build_cluster(config, num_clients=1,
                                app_factory=CoordinationService, seed=5)
        client = runtime.clients[0]
        results = []
        client.on_result = results.append
        client.propose(("create", "/job", b"payload"), size_bytes=64)
        runtime.sim.run(until=1_000.0)
        assert results == [("ok", "/job")]
        # Both active replicas hold the znode.
        for replica_id in (0, 1):
            app = runtime.replica(replica_id).app
            assert app.tree.exists("/job")

    def test_divergence_detectable_by_digest(self):
        """The state digest is the divergence oracle used by the safety
        harness: equal histories -> equal digests across replicas."""
        from repro.common.config import ClusterConfig
        from repro.protocols.registry import build_cluster
        from tests.conftest import FAST_TIMEOUTS

        config = ClusterConfig(t=1, protocol=ProtocolName.XPAXOS,
                               **FAST_TIMEOUTS)
        runtime = build_cluster(config, num_clients=2,
                                app_factory=CoordinationService, seed=6)
        for index, client in enumerate(runtime.clients):
            client.propose(("create", f"/n{index}", b"x"), size_bytes=32)
        runtime.sim.run(until=2_000.0)
        digests = {runtime.replica(i).app.state_digest() for i in (0, 1)}
        assert len(digests) == 1
