"""Tests for the Zyzzyva baseline."""

import pytest

from repro.common.config import ProtocolName
from repro.faults.checker import SafetyChecker
from tests.conftest import make_cluster, run_workload


@pytest.fixture
def zyzzyva_t1():
    return make_cluster(ProtocolName.ZYZZYVA, t=1)


class TestDeployment:
    def test_needs_3t_plus_1_replicas(self, zyzzyva_t1):
        assert zyzzyva_t1.config.n == 4

    def test_all_replicas_active(self, zyzzyva_t1):
        run_workload(zyzzyva_t1, duration_ms=1_000.0)
        for replica in zyzzyva_t1.replicas:
            assert replica.committed_requests > 0


class TestSpeculativeFastPath:
    def test_requests_commit(self, zyzzyva_t1):
        driver = run_workload(zyzzyva_t1)
        assert driver.throughput.total > 100

    def test_client_needs_all_3t_plus_1_replies(self, zyzzyva_t1):
        assert zyzzyva_t1.clients[0].reply_quorum == 4

    def test_total_order(self, zyzzyva_t1):
        run_workload(zyzzyva_t1)
        assert SafetyChecker(zyzzyva_t1).violations() == []

    def test_speculation_is_one_way_cheaper_than_pbft(self):
        zyzzyva = make_cluster(ProtocolName.ZYZZYVA, t=1)
        pbft = make_cluster(ProtocolName.PBFT, t=1)
        lat_z = run_workload(zyzzyva).mean_latency_ms()
        lat_p = run_workload(pbft).mean_latency_ms()
        assert lat_z < lat_p

    def test_t2_deployment(self):
        runtime = make_cluster(ProtocolName.ZYZZYVA, t=2)
        assert runtime.config.n == 7
        driver = run_workload(runtime)
        assert driver.throughput.total > 100

    def test_history_digest_advances(self, zyzzyva_t1):
        run_workload(zyzzyva_t1, duration_ms=500.0)
        from repro.crypto.primitives import Digest

        primary = zyzzyva_t1.replica(0)
        assert primary._history != Digest(b"\x00" * 32)
