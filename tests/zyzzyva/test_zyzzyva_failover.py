"""Zyzzyva leader faults: commit-certificate fallback and view change."""

import pytest

from repro.common.config import ProtocolName
from repro.faults.injector import FaultSchedule
from tests.conftest import make_harness


def run_with_crash(crash_at, downtime, duration=8_000.0, victim=0):
    harness = make_harness(ProtocolName.ZYZZYVA)
    harness.arm(FaultSchedule().crash_for(crash_at, victim, downtime))
    driver = harness.drive(duration_ms=duration)
    return harness, driver


class TestCommitCertFallback:
    def test_follower_crash_degrades_to_certified_commits(self):
        """With a backup down the client cannot gather all 3t + 1
        speculative replies; it must fall back to 2t + 1 matching plus a
        forwarded commit certificate -- no view change required."""
        harness, driver = run_with_crash(1_000.0, 2_000.0, victim=3)
        harness.checker.assert_safe()
        assert driver.throughput.total > 100
        assert sum(c.fallback_commits
                   for c in harness.runtime.clients) > 0
        assert sum(r.certs_received for r in harness.replicas) > 0

    def test_commits_flow_during_the_follower_outage(self):
        harness, _ = run_with_crash(1_000.0, 2_000.0, victim=3)
        during = [t for c in harness.runtime.clients
                  for _, t, _ in c.completions if 1_500.0 < t < 2_500.0]
        assert during, "no commits while the backup was down"

    def test_no_certs_in_fault_free_run(self):
        harness = make_harness(ProtocolName.ZYZZYVA)
        harness.drive(duration_ms=3_000.0)
        assert sum(c.fallback_commits
                   for c in harness.runtime.clients) == 0
        assert all(r.view == 0 for r in harness.replicas)


class TestViewChange:
    def test_progress_resumes_after_primary_crash(self):
        harness, driver = run_with_crash(1_000.0, 2_000.0)
        harness.checker.assert_safe()
        assert driver.throughput.total > 500
        live_views = {r.view for r in harness.replicas if not r.crashed}
        assert max(live_views) >= 1

    def test_commits_continue_after_failover_settles(self):
        harness, driver = run_with_crash(1_000.0, 2_000.0)
        last_commit = max(c.completions[-1][1]
                          for c in harness.runtime.clients
                          if c.completions)
        assert last_commit > 7_000.0, \
            f"commits stopped at t={last_commit:.0f} ms"

    def test_speculative_history_survives_failover(self):
        """The new primary adopts the longest speculative history: every
        client observes gap-free monotone timestamps across views."""
        harness, driver = run_with_crash(1_500.0, 2_000.0)
        harness.checker.assert_safe()
        assert harness.checker.violations() == []
        for client in harness.runtime.clients:
            timestamps = [rid[1] for _, _, rid in client.completions]
            assert timestamps == list(range(1, len(timestamps) + 1))

    def test_quorum_blackout_recovers(self):
        harness = make_harness(ProtocolName.ZYZZYVA)
        harness.arm(FaultSchedule()
                    .crash_for(1_500.0, 1, 1_500.0)
                    .crash_for(1_500.0, 2, 1_500.0))
        driver = harness.drive(duration_ms=8_000.0)
        harness.checker.assert_safe()
        last_commit = max(c.completions[-1][1]
                          for c in harness.runtime.clients
                          if c.completions)
        assert last_commit > 7_000.0
