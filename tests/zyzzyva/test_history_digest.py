"""Zyzzyva's rolling history digest: verified in the common case and
across view changes (the ROADMAP follow-up from the baseline view-change
work -- previously the ORDER-REQ carried a history digest nobody checked).
"""

import pytest

from repro.common.config import ProtocolName
from repro.crypto.primitives import digest_of
from repro.faults.injector import FaultSchedule
from repro.protocols.zyzzyva.replica import OrderReq
from tests.conftest import make_harness, run_workload


@pytest.fixture
def harness():
    return make_harness(ProtocolName.ZYZZYVA, t=1)


class TestCommonCase:
    def test_replicas_agree_and_verify(self, harness):
        driver = harness.drive(duration_ms=2_000.0)
        assert driver.throughput.total > 100
        replicas = harness.replicas
        assert all(r.history_divergences == 0 for r in replicas)
        assert all(r._history_anchored for r in replicas)
        # Followers that executed as far as the primary hold its digest.
        primary = replicas[0]
        for follower in replicas[1:]:
            if follower._history_covered == primary._history_covered:
                assert follower._history == primary._history

    def test_followers_actually_check_claims(self, harness):
        """The verification is live: every executed slot consumed a
        claim recorded from the primary's ORDER-REQ."""
        harness.drive(duration_ms=1_000.0)
        follower = harness.replica(1)
        assert follower._history_covered > 0
        # All consumed; nothing left dangling below the covered horizon.
        assert all(sn > follower._history_covered
                   for sn in follower._claimed_history)


class TestDivergenceDetection:
    def test_tampered_history_claim_flags_divergence(self, harness):
        harness.drive(duration_ms=500.0)
        primary, follower = harness.replica(0), harness.replica(1)
        seqno = follower.ex + 1
        batch = primary.commit_log.get(primary.ex).batch
        digest = digest_of(tuple(r.body() for r in batch))
        lying = OrderReq(follower.view, seqno, batch, digest,
                         digest_of(("not", "the", "history")))
        assert follower.history_divergences == 0
        follower.on_message("r0", lying)
        assert follower.history_divergences == 1
        # Divergence starts the failure-handling machinery: the follower
        # asks the primary for a sync and arms its election timer.
        assert follower._election_timer.armed
        # Checks are suspended until a NEW-VIEW re-anchors the digest.
        assert not follower._history_anchored

    def test_honest_claim_keeps_anchor(self, harness):
        harness.drive(duration_ms=500.0)
        primary, follower = harness.replica(0), harness.replica(1)
        seqno = follower.ex + 1
        batch = primary.commit_log.get(primary.ex).batch
        digest = digest_of(tuple(r.body() for r in batch))
        honest = OrderReq(follower.view, seqno, batch, digest,
                          digest_of((follower._history, digest)))
        follower.on_message("r0", honest)
        assert follower.history_divergences == 0
        assert follower._history_anchored


class TestAcrossViewChanges:
    def test_failover_reanchors_and_keeps_verifying(self, harness):
        """Crash the primary: the new view must re-anchor every replica's
        digest from the NEW-VIEW entries and keep the checks green while
        ordering resumes under the new primary."""
        harness.arm(FaultSchedule().crash_for(1_000.0, 0, 800.0))
        driver = harness.drive(duration_ms=4_000.0)
        assert driver.throughput.total > 100
        replicas = harness.replicas
        assert any(r.view_changes_completed > 0 for r in replicas)
        assert all(r.history_divergences == 0 for r in replicas)
        # The surviving replicas went through at least one re-anchor and
        # are verifying again in the new view.
        new_leader = max(replicas, key=lambda r: r.view).leader_id
        for replica in replicas:
            if replica.replica_id in (0, new_leader):
                continue
            if replica._history_anchored:
                assert replica._history_covered > 0
        harness.checker.assert_safe()

    def test_anchor_is_deterministic_across_replicas(self, harness):
        harness.arm(FaultSchedule().suspect(800.0, 1))
        harness.drive(duration_ms=3_000.0)
        replicas = [r for r in harness.replicas if r._history_anchored]
        by_covered = {}
        for replica in replicas:
            by_covered.setdefault(replica._history_covered,
                                  set()).add(replica._history)
        # Replicas covering the same horizon computed the same digest.
        assert all(len(digests) == 1 for digests in by_covered.values())
