"""Leader pipelining: the shared sequencer and the depth-1 golden guard.

The ``PipelinedSequencer`` bounds how many uncommitted slots a leader may
have in flight (``pipeline_depth``).  These tests pin down the three
properties the refactor promised: the bound actually binds (and the
parked flush resumes), deeper pipelines order strictly more under
saturating open-loop load, and ``pipeline_depth=1`` reproduces the
committed scenario-smoke golden byte-for-byte for every closed-loop cell.
"""

import json
import pathlib

import pytest

import repro.harness.matrix as matrix_mod
from repro.common.config import ProtocolName, WorkloadConfig
from repro.harness.configs import paper_config
from repro.harness.runner import ExperimentRunner
from repro.scenarios.library import get_scenario
from repro.workloads.cohorts import CohortDriver

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

#: The smoke slice's closed-loop scenarios (the open-loop row is excluded:
#: its commit counts legitimately depend on the pipeline depth).
SMOKE_CLOSED_LOOP = (
    "fault-free",
    "crash-primary",
    "crash-primary-t2",
    "crash-follower",
    "client-primary-partition",
    "byzantine-primary-data-loss",
)


def saturating_workload(num_clients, duration_ms=1_000.0):
    return WorkloadConfig(num_clients=num_clients, request_size=64,
                          duration_ms=duration_ms, warmup_ms=100.0,
                          offered_load_rps=20_000.0, cohorts=2,
                          client_site="CA")


def build_wan_cluster(protocol, depth, workload):
    """A paper-layout cluster on EC2 WAN latencies.

    Pipelining only matters when commits take real network time; the
    near-zero latencies of ``make_cluster`` never fill a window.
    """
    config = paper_config(protocol, t=1, pipeline_depth=depth,
                          batch_timeout_ms=2.0)
    return ExperimentRunner().build(config, workload)


def drive_open_loop(protocol, depth, num_clients=32):
    workload = saturating_workload(num_clients)
    runtime = build_wan_cluster(protocol, depth, workload)
    driver = CohortDriver(runtime, workload)
    driver.run()
    return runtime, driver


class TestSequencerWindow:
    @pytest.mark.parametrize("protocol",
                             [ProtocolName.PAXOS, ProtocolName.XPAXOS])
    def test_depth_bound_binds_and_flush_resumes(self, protocol):
        runtime, driver = drive_open_loop(protocol, depth=1)
        leader = runtime.replica(0)
        # Saturating load against a depth-1 window: the sequencer must
        # have parked at least once, yet ordering kept making progress
        # (the parked flush is pumped on every execution advance).
        assert leader.sequencer.stalls > 0
        assert driver.throughput.total > 0

    @pytest.mark.parametrize("protocol",
                             [ProtocolName.PAXOS, ProtocolName.XPAXOS])
    def test_in_flight_never_exceeds_depth(self, protocol):
        depth = 2
        workload = saturating_workload(32)
        runtime = build_wan_cluster(protocol, depth, workload)
        sequencer = runtime.replica(0).sequencer
        observed = []
        inner = sequencer._propose

        def spy(seqno, batch):
            inner(seqno, batch)
            observed.append(sequencer.in_flight)

        sequencer._propose = spy
        CohortDriver(runtime, workload).run()
        assert observed
        assert max(observed) <= depth

    @pytest.mark.parametrize("protocol",
                             [ProtocolName.PAXOS, ProtocolName.XPAXOS])
    def test_deeper_pipeline_orders_more(self, protocol):
        _, shallow = drive_open_loop(protocol, depth=1)
        _, deep = drive_open_loop(protocol, depth=8)
        assert deep.throughput.total > shallow.throughput.total


class TestDepthOneGolden:
    def test_smoke_slice_matches_committed_golden(self, monkeypatch):
        """pipeline_depth=1 is the pre-pipelining behaviour, byte for byte.

        Every closed-loop cell of the scenario smoke slice must grade and
        count commits exactly as the committed SCENARIO_smoke.json golden
        (which runs at the default depth): the refactor only changes
        behaviour when the window actually binds, and at smoke-slice load
        it never does.
        """
        monkeypatch.setattr(
            matrix_mod, "CELL_TIMEOUTS",
            dict(matrix_mod.CELL_TIMEOUTS, pipeline_depth=1))
        result = matrix_mod.MatrixRunner().run_matrix(
            scenarios=[get_scenario(name) for name in SMOKE_CLOSED_LOOP])
        got = {(c["scenario"], c["protocol"]): c
               for c in json.loads(result.to_json())["cells"]}
        with open(REPO_ROOT / "SCENARIO_smoke.json") as fh:
            golden = {(c["scenario"], c["protocol"]): c
                      for c in json.load(fh)["cells"]
                      if c["scenario"] in SMOKE_CLOSED_LOOP}
        assert got == golden
