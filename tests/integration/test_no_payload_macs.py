"""No protocol sends per-receiver ``Mac`` objects inside payloads.

Channel MACs live at the transport now (stamped by
``Network.multicast_authenticated`` at delivery fan-out time); a ``Mac``
inside a payload would silently re-lock that message class out of the
multicast fast path.  This sweeps live traffic of all five protocols --
including XPaxos checkpointing, fault detection and a view change, the
paths that used to embed MACs -- and inspects every payload recursively.
"""

import dataclasses

import pytest

from repro.common.config import ProtocolName
from repro.crypto.primitives import Mac
from repro.faults.injector import FaultSchedule
from repro.protocols.xpaxos import messages as xmsg
from tests.conftest import make_harness


def contains_mac(obj, depth=0):
    """Recursively look for a Mac anywhere inside a payload."""
    if depth > 8:
        return False
    if isinstance(obj, Mac):
        return True
    if isinstance(obj, (tuple, list, set, frozenset)):
        return any(contains_mac(item, depth + 1) for item in obj)
    if isinstance(obj, dict):
        return any(contains_mac(k, depth + 1) or contains_mac(v, depth + 1)
                   for k, v in obj.items())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return any(
            contains_mac(getattr(obj, f.name), depth + 1)
            for f in dataclasses.fields(obj))
    return False


def sweep(protocol, **overrides):
    harness = make_harness(protocol, **overrides)
    offenders = []

    def inspect(src, dst, payload):
        if contains_mac(payload):
            offenders.append((src, dst, type(payload).__name__))
        return True

    harness.runtime.network.send_filter = inspect
    return harness, offenders


@pytest.mark.parametrize("protocol", list(ProtocolName),
                         ids=[p.value for p in ProtocolName])
def test_no_macs_in_payloads_under_failover(protocol):
    harness, offenders = sweep(protocol)
    harness.arm(FaultSchedule().crash_for(1_000.0, 0, 800.0))
    driver = harness.drive(duration_ms=3_000.0)
    assert driver.throughput.total > 0  # traffic actually flowed
    assert offenders == []


def test_no_macs_in_xpaxos_checkpoint_and_detection_traffic():
    """The paths that used to embed Macs: PreChk, replies, and the
    fault-detection view change."""
    harness, offenders = sweep(ProtocolName.XPAXOS, checkpoint_period=8,
                               use_fault_detection=True)
    harness.arm(FaultSchedule().suspect(1_500.0, 1))
    driver = harness.drive(duration_ms=3_000.0)
    assert driver.throughput.total > 100
    primary = harness.replica(0)
    assert primary.stable_checkpoint is not None  # PreChk/CHKPT ran
    assert any(r.view_changes_completed > 0 for r in harness.replicas)
    assert offenders == []


def test_mac_fields_gone_from_message_classes():
    """The two classes that embedded Macs no longer declare them."""
    for cls in (xmsg.PreChk, xmsg.ReplyMsg):
        names = {f.name for f in dataclasses.fields(cls)}
        assert "mac" not in names, cls
