"""Cross-protocol integration tests: every protocol, same workload, same
invariants."""

import pytest

from repro.common.config import ClusterConfig, ProtocolName, WorkloadConfig
from repro.faults.checker import SafetyChecker
from repro.protocols.registry import build_cluster
from repro.smr.app import KVStore
from repro.workloads.clients import ClosedLoopDriver
from tests.conftest import FAST_TIMEOUTS, make_cluster, run_workload

ALL_PROTOCOLS = list(ProtocolName)


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
class TestUniformInvariants:
    def test_commits_and_total_order(self, protocol):
        runtime = make_cluster(protocol, num_clients=4)
        driver = run_workload(runtime, duration_ms=2_000.0)
        assert driver.throughput.total > 50
        assert SafetyChecker(runtime).violations() == []

    def test_client_timestamps_monotone(self, protocol):
        runtime = make_cluster(protocol, num_clients=3)
        run_workload(runtime, duration_ms=1_000.0)
        for client in runtime.clients:
            timestamps = [rid[1] for _, _, rid in client.completions]
            assert timestamps == sorted(set(timestamps))

    def test_replicated_kv_store_converges(self, protocol):
        config = ClusterConfig(t=1, protocol=protocol, **FAST_TIMEOUTS)
        runtime = build_cluster(config, num_clients=2,
                                app_factory=KVStore, seed=11)
        for index, client in enumerate(runtime.clients):
            client.propose(("put", f"k{index}", index), size_bytes=32)
        runtime.sim.run(until=3_000.0)
        digests = {r.app.state_digest() for r in runtime.replicas
                   if r.committed_requests > 0}
        assert len(digests) == 1


class TestRelativePerformanceShapes:
    """The qualitative relations the paper's Figure 7 rests on, measured on
    a deterministic uniform-latency network so message-pattern costs are
    isolated."""

    @pytest.fixture(scope="class")
    def latencies(self):
        results = {}
        for protocol in ALL_PROTOCOLS:
            runtime = make_cluster(protocol, num_clients=4)
            driver = run_workload(runtime, duration_ms=2_000.0)
            results[protocol] = driver.mean_latency_ms()
        return results

    def test_xpaxos_close_to_paxos(self, latencies):
        assert latencies[ProtocolName.XPAXOS] <= \
            1.5 * latencies[ProtocolName.PAXOS]

    def test_pbft_slower_than_xpaxos(self, latencies):
        assert latencies[ProtocolName.PBFT] > \
            latencies[ProtocolName.XPAXOS]

    def test_all_latencies_positive(self, latencies):
        assert all(v > 0 for v in latencies.values())
