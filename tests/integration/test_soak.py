"""Soak test: a long run mixing every benign fault type on the WAN model.

One extended XPaxos run over the EC2 latency matrix with rolling crashes,
transient partitions, and checkpointing enabled -- everything the protocol
offers, at once.  Invariants checked at the end:

* total order across benign replicas (no anarchy occurred: no Byzantine
  replicas were configured);
* every client's committed timestamps form a gapless prefix (exactly-once
  execution);
* replicas converge to one view and one state digest;
* checkpoints advanced (log truncation worked under churn).
"""

import pytest

from repro.common.config import ClusterConfig, ProtocolName, WorkloadConfig
from repro.faults.checker import SafetyChecker
from repro.faults.injector import FaultInjector, FaultSchedule
from repro.net.bandwidth import BandwidthModel
from repro.net.latency import LatencyModel
from repro.protocols.registry import build_cluster
from repro.smr.app import KVStore
from repro.workloads.clients import ClosedLoopDriver


@pytest.mark.parametrize("seed", [11, 23])
def test_xpaxos_soak(seed):
    config = ClusterConfig(
        t=1, protocol=ProtocolName.XPAXOS,
        delta_ms=1_250.0,
        request_retransmit_ms=2_500.0,
        view_change_timeout_ms=10_000.0,
        batch_timeout_ms=5.0,
        checkpoint_period=64,
        use_lazy_replication=True,
    )
    runtime = build_cluster(
        config, num_clients=8, app_factory=KVStore,
        latency=LatencyModel.ec2(seed=seed),
        bandwidth=BandwidthModel(), seed=seed)
    checker = SafetyChecker(runtime)

    duration = 90_000.0
    schedule = (FaultSchedule()
                .crash_for(15_000.0, 1, 4_000.0)
                .partition(30_000.0, "r0", "r1")
                .heal(36_000.0, "r0", "r1")
                .crash_for(45_000.0, 0, 4_000.0)
                .crash_for(60_000.0, 2, 4_000.0)
                .partition(72_000.0, "r1", "r2")
                .heal(76_000.0, "r1", "r2"))
    FaultInjector(runtime).arm(schedule)
    checker.observe_periodically(1_000.0, duration)

    driver = ClosedLoopDriver(
        runtime,
        WorkloadConfig(num_clients=8, request_size=512,
                       duration_ms=duration, warmup_ms=1_000.0),
        op_factory=lambda cid, seq: ("put", f"key-{cid}-{seq % 50}", seq))
    driver.run()
    # Quiesce.
    runtime.sim.run(until=duration + 20_000.0)

    # Never in anarchy (no Byzantine replicas), so safety must be perfect.
    assert not checker.anarchy_observed
    checker.assert_safe()
    assert checker.violations() == []

    # Meaningful progress through all that chaos.
    assert driver.throughput.total > 1_000

    # Exactly-once per client: timestamps are a gapless prefix.
    for client in runtime.clients:
        timestamps = [rid[1] for _, _, rid in client.completions]
        assert timestamps == list(range(1, len(timestamps) + 1))

    # Views converged.
    views = {r.view for r in runtime.replicas}
    assert len(views) == 1

    # Checkpointing advanced under churn.
    assert any(r.stable_checkpoint is not None
               and r.stable_checkpoint.seqno >= 64
               for r in runtime.replicas)


def test_all_protocols_mixed_workload_convergence():
    """Every protocol replicates the same mixed KV workload to the same
    final state digest (cross-protocol determinism of the SMR layer)."""
    digests = {}
    for protocol in ProtocolName:
        config = ClusterConfig(t=1, protocol=protocol, delta_ms=50.0,
                               request_retransmit_ms=500.0,
                               view_change_timeout_ms=1_000.0,
                               batch_timeout_ms=2.0)
        runtime = build_cluster(config, num_clients=1,
                                app_factory=KVStore, seed=9)
        client = runtime.clients[0]
        script = [("put", "a", 1), ("put", "b", 2), ("cas", "a", 1, 3),
                  ("delete", "b"), ("put", "c", [1, 2])]
        results = []
        client.on_result = results.append

        def next_op():
            if script:
                client.propose(script.pop(0), size_bytes=32)

        client.on_result = lambda r: (results.append(r), next_op())
        next_op()
        runtime.sim.run(until=10_000.0)
        assert len(results) == 5, protocol
        digests[protocol] = runtime.replica(0).app.state_digest()
    assert len(set(digests.values())) == 1, digests
