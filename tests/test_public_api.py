"""Tests for the top-level package surface (what a downstream user sees)."""

import pytest

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_core_types_importable_from_top_level(self):
        from repro import (
            ClusterConfig,
            LatencyModel,
            Network,
            ProtocolName,
            Simulator,
            WorkloadConfig,
            nines_of,
        )

        assert ClusterConfig(t=1).n == 3
        assert ProtocolName.XPAXOS.value == "xpaxos"
        assert Simulator().now == 0.0
        assert nines_of(0.999) == 3
        assert LatencyModel.ec2().mean_one_way("VA", "CA") == 44.0
        assert WorkloadConfig.one_zero().request_size == 1024
        assert Network is not None

    def test_reliability_functions_exported(self):
        assert repro.p_xft_consistent(0.9999, 0.999, 0.999, 1) > \
            repro.p_cft_consistent(0.9999, 3)
        assert repro.p_xft_available(0.999, 1) >= \
            repro.p_bft_available(0.999, 1)
        assert repro.p_bft_consistent(0.9999, 1) > 0.999

    def test_end_to_end_from_public_surface(self):
        """The README quickstart, verbatim."""
        from repro.common.config import ClusterConfig, ProtocolName
        from repro.protocols.registry import build_cluster
        from repro.smr.app import KVStore

        config = ClusterConfig(t=1, protocol=ProtocolName.XPAXOS)
        runtime = build_cluster(config, num_clients=1,
                                app_factory=KVStore)
        client = runtime.clients[0]

        results = []
        client.on_result = results.append
        client.propose(("put", "k", "v"), size_bytes=64)
        runtime.sim.run(until=1_000.0)
        assert results == [None]
