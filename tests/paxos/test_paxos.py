"""Tests for the WAN-optimized Paxos baseline."""

import pytest

from repro.common.config import ProtocolName
from repro.faults.checker import SafetyChecker
from tests.conftest import make_cluster, run_workload


@pytest.fixture
def paxos_t1():
    return make_cluster(ProtocolName.PAXOS, t=1)


class TestCommonCase:
    def test_requests_commit(self, paxos_t1):
        driver = run_workload(paxos_t1)
        assert driver.throughput.total > 100

    def test_total_order(self, paxos_t1):
        run_workload(paxos_t1)
        assert SafetyChecker(paxos_t1).violations() == []

    def test_only_t_plus_one_replicas_in_common_case(self, paxos_t1):
        """The WAN-optimized variant involves t+1 replicas synchronously;
        the passive one learns lazily (Figure 6c)."""
        run_workload(paxos_t1, duration_ms=1_000.0)
        leader = paxos_t1.replica(0)
        acceptors = leader.common_case_acceptors()
        assert len(acceptors) == paxos_t1.config.t
        assert leader.passive_ids() == [2]

    def test_passive_replica_learns(self, paxos_t1):
        run_workload(paxos_t1)
        learner = paxos_t1.replica(2)
        leader = paxos_t1.replica(0)
        assert learner.committed_requests >= \
            0.9 * leader.committed_requests

    def test_t2_deployment(self):
        runtime = make_cluster(ProtocolName.PAXOS, t=2)
        driver = run_workload(runtime)
        assert driver.throughput.total > 100
        assert SafetyChecker(runtime).violations() == []

    def test_client_commits_on_single_leader_reply(self, paxos_t1):
        assert paxos_t1.clients[0].reply_quorum == 1

    def test_one_round_trip_latency(self, paxos_t1):
        """Fig 6c: client->leader, leader<->acceptor, leader->client =
        2 client hops + 1 RTT ~ 4 one-way delays (1 ms each here)."""
        driver = run_workload(paxos_t1)
        assert driver.mean_latency_ms() < 20.0


class TestDeduplication:
    def test_duplicate_request_not_reexecuted(self, paxos_t1):
        from repro.protocols.base import ClientRequestMsg
        from repro.smr.messages import Request

        leader = paxos_t1.replica(0)
        request = Request(op="x", timestamp=1, client=0, size_bytes=8)
        leader.on_message("c0", ClientRequestMsg(request))
        leader.on_message("c0", ClientRequestMsg(request))
        paxos_t1.sim.run(until=500.0)
        executed = [rid for _, rid in leader.execution_trace
                    if rid == request.rid]
        assert len(executed) == 1
