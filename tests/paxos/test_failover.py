"""Tests for Paxos leader failover (phase 1)."""

import pytest

from repro.common.config import ProtocolName, WorkloadConfig
from repro.faults.checker import SafetyChecker
from repro.faults.injector import FaultInjector, FaultSchedule
from repro.workloads.clients import ClosedLoopDriver
from tests.conftest import make_cluster


def run_with_crash(crash_at, downtime, duration=8_000.0, victim=0):
    runtime = make_cluster(ProtocolName.PAXOS, num_clients=3)
    driver = ClosedLoopDriver(
        runtime, WorkloadConfig(num_clients=3, request_size=64,
                                duration_ms=duration, warmup_ms=100.0))
    FaultInjector(runtime).arm(
        FaultSchedule().crash_for(crash_at, victim, downtime))
    checker = SafetyChecker(runtime)
    driver.run()
    return runtime, driver, checker


class TestLeaderFailover:
    def test_progress_resumes_after_leader_crash(self):
        runtime, driver, checker = run_with_crash(1_000.0, 2_000.0)
        checker.assert_safe()
        assert driver.throughput.total > 500
        # A new ballot was established with a different leader.
        live_views = {r.view for r in runtime.replicas if not r.crashed}
        assert max(live_views) >= 1

    def test_new_leader_is_ballot_mod_n(self):
        runtime, driver, checker = run_with_crash(1_000.0, 5_000.0,
                                                  duration=6_000.0)
        top_view = max(r.view for r in runtime.replicas)
        assert top_view % runtime.config.n != 0 or top_view == 0

    def test_committed_state_survives_failover(self):
        """Entries decided under the old leader must survive into the new
        ballot (phase-1 merge)."""
        runtime, driver, checker = run_with_crash(1_500.0, 4_000.0)
        checker.assert_safe()
        assert checker.violations() == []
        # Clients committed both before and after the crash.
        for client in runtime.clients:
            timestamps = [rid[1] for _, _, rid in client.completions]
            assert timestamps == list(range(1, len(timestamps) + 1))

    def test_acceptor_crash_does_not_stop_progress(self):
        """Crashing a non-leader acceptor: the common case blocks (the
        leader needs that acceptor), so failover to a ballot with live
        acceptors must occur."""
        runtime, driver, checker = run_with_crash(1_000.0, 2_000.0,
                                                  victim=1)
        checker.assert_safe()
        assert driver.throughput.total > 300

    def test_no_elections_in_fault_free_run(self):
        runtime = make_cluster(ProtocolName.PAXOS, num_clients=3)
        driver = ClosedLoopDriver(
            runtime, WorkloadConfig(num_clients=3, request_size=64,
                                    duration_ms=3_000.0, warmup_ms=100.0))
        driver.run()
        assert all(r.elections_started == 0 for r in runtime.replicas)
        assert all(r.view == 0 for r in runtime.replicas)

    def test_stale_ballot_messages_ignored(self):
        from repro.protocols.paxos.replica import NewBallot

        runtime = make_cluster(ProtocolName.PAXOS, num_clients=1)
        replica = runtime.replica(1)
        replica.view = 5
        replica._on_new_ballot(NewBallot(3, 2))
        assert replica.view == 5
