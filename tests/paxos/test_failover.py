"""Tests for Paxos leader failover (phase 1)."""

import pytest

from repro.common.config import ProtocolName
from repro.faults.injector import FaultSchedule
from tests.conftest import make_cluster, make_harness


def run_with_crash(crash_at, downtime, duration=8_000.0, victim=0):
    harness = make_harness(ProtocolName.PAXOS)
    harness.arm(FaultSchedule().crash_for(crash_at, victim, downtime))
    driver = harness.drive(duration_ms=duration)
    return harness, driver


class TestLeaderFailover:
    def test_progress_resumes_after_leader_crash(self):
        harness, driver = run_with_crash(1_000.0, 2_000.0)
        harness.checker.assert_safe()
        assert driver.throughput.total > 500
        # A new ballot was established with a different leader.
        live_views = {r.view for r in harness.replicas if not r.crashed}
        assert max(live_views) >= 1

    def test_commits_continue_after_failover_settles(self):
        """The election must terminate: commits flow to the end of the
        run, not just before the crash (the livelock regression)."""
        harness, driver = run_with_crash(1_000.0, 2_000.0)
        last_commit = max(c.completions[-1][1]
                          for c in harness.runtime.clients
                          if c.completions)
        assert last_commit > 7_000.0, \
            f"commits stopped at t={last_commit:.0f} ms"

    def test_new_leader_is_ballot_mod_n(self):
        harness, driver = run_with_crash(1_000.0, 5_000.0,
                                         duration=6_000.0)
        top_view = max(r.view for r in harness.replicas)
        assert top_view % harness.runtime.config.n != 0 or top_view == 0

    def test_committed_state_survives_failover(self):
        """Entries decided under the old leader must survive into the new
        ballot (phase-1 merge)."""
        harness, driver = run_with_crash(1_500.0, 4_000.0)
        harness.checker.assert_safe()
        assert harness.checker.violations() == []
        # Clients committed both before and after the crash.
        for client in harness.runtime.clients:
            timestamps = [rid[1] for _, _, rid in client.completions]
            assert timestamps == list(range(1, len(timestamps) + 1))

    def test_acceptor_crash_does_not_stop_progress(self):
        """Crashing a non-leader acceptor: the common case blocks (the
        leader needs that acceptor), so failover to a ballot with live
        acceptors must occur."""
        harness, driver = run_with_crash(1_000.0, 2_000.0, victim=1)
        harness.checker.assert_safe()
        assert driver.throughput.total > 300

    def test_no_elections_in_fault_free_run(self):
        harness = make_harness(ProtocolName.PAXOS)
        harness.drive(duration_ms=3_000.0)
        assert all(r.elections_started == 0 for r in harness.replicas)
        assert all(r.view == 0 for r in harness.replicas)

    def test_stale_ballot_messages_ignored(self):
        from repro.protocols.paxos.replica import NewBallot

        runtime = make_cluster(ProtocolName.PAXOS, num_clients=1)
        replica = runtime.replica(1)
        replica.view = 5
        replica._on_new_ballot(NewBallot(3, 2))
        assert replica.view == 5
