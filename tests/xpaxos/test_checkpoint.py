"""Tests for checkpointing and lazy replication (Section 4.5)."""

import pytest

from repro.common.config import ProtocolName
from tests.conftest import make_cluster, run_workload


class TestCheckpointing:
    def test_logs_truncated_after_checkpoint(self):
        runtime = make_cluster(checkpoint_period=10, num_clients=4)
        run_workload(runtime, duration_ms=2_000.0)
        primary = runtime.replica(0)
        assert primary.stable_checkpoint is not None
        assert primary.commit_log.low_water >= 10
        # Live entries are bounded by roughly one checkpoint period.
        assert len(primary.commit_log) <= 3 * 10

    def test_checkpoint_carries_t_plus_1_signatures(self):
        runtime = make_cluster(checkpoint_period=10, num_clients=4)
        run_workload(runtime, duration_ms=2_000.0)
        proof = runtime.replica(0).stable_checkpoint
        assert len(proof.sigs) == runtime.config.t + 1
        for sig in proof.sigs:
            assert runtime.keystore.verify_digest(sig, sig.digest)

    def test_checkpoints_advance(self):
        runtime = make_cluster(checkpoint_period=10, num_clients=4)
        run_workload(runtime, duration_ms=1_000.0)
        first = runtime.replica(0).stable_checkpoint.seqno
        run_more = run_workload  # keep driving the same runtime
        # Continue the simulation directly: issue more requests.
        from repro.common.config import WorkloadConfig
        from repro.workloads.clients import ClosedLoopDriver

        driver = ClosedLoopDriver(
            runtime, WorkloadConfig(num_clients=len(runtime.clients),
                                    request_size=64, duration_ms=2_000.0,
                                    warmup_ms=1_000.0))
        driver.start()
        runtime.sim.run(until=2_000.0)
        assert runtime.replica(0).stable_checkpoint.seqno > first

    def test_checkpoint_state_digest_matches_across_actives(self):
        runtime = make_cluster(checkpoint_period=10, num_clients=4)
        run_workload(runtime, duration_ms=2_000.0)
        digests = {runtime.replica(i).stable_checkpoint.state_digest
                   for i in (0, 1)}
        assert len(digests) == 1


class TestLazyReplication:
    def test_passive_replica_tracks_actives(self, xpaxos_t1):
        run_workload(xpaxos_t1, duration_ms=2_000.0)
        passive = xpaxos_t1.replica(2)
        primary = xpaxos_t1.replica(0)
        assert passive.committed_requests >= 0.9 * primary.committed_requests

    def test_lazy_replication_can_be_disabled(self):
        runtime = make_cluster(use_lazy_replication=False, num_clients=3)
        run_workload(runtime, duration_ms=1_000.0,)
        passive = runtime.replica(2)
        primary = runtime.replica(0)
        assert primary.committed_requests > 0
        # Without lazy replication (and before any checkpoint) the passive
        # replica learns nothing in the common case.
        assert passive.committed_requests == 0

    def test_disabled_lazy_replication_state_transfer_via_checkpoint(self):
        """Even without lazy replication, LAZYCHK checkpoints keep passive
        replicas from falling arbitrarily far behind."""
        runtime = make_cluster(use_lazy_replication=False,
                               checkpoint_period=10, num_clients=4)
        run_workload(runtime, duration_ms=2_000.0)
        passive = runtime.replica(2)
        assert passive.ex >= 10  # caught up to some checkpoint

    def test_lazy_speeds_view_change(self):
        """Ablation behind Figure 9's <10 s view changes: passive replicas
        kept warm by lazy replication make state transfer trivial."""
        from repro.common.config import WorkloadConfig
        from repro.faults.injector import FaultInjector, FaultSchedule
        from repro.workloads.clients import ClosedLoopDriver

        def run_once(lazy):
            runtime = make_cluster(use_lazy_replication=lazy,
                                   num_clients=4, checkpoint_period=1000)
            driver = ClosedLoopDriver(
                runtime, WorkloadConfig(num_clients=4, request_size=64,
                                        duration_ms=6_000.0,
                                        warmup_ms=100.0))
            FaultInjector(runtime).arm(
                FaultSchedule().crash_for(2_000.0, 1, 3_000.0))
            driver.run()
            return driver.throughput.total

        # Both must make progress; the lazy variant should not be worse.
        with_lazy = run_once(True)
        without_lazy = run_once(False)
        assert with_lazy > 0 and without_lazy > 0
        assert with_lazy >= 0.8 * without_lazy
