"""Tests for the leader-rotation group scheme (the Section 4.3.1 sketch
for large clusters)."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ConfigurationError
from repro.protocols.xpaxos.groups import LeaderRotationGroups


class TestStructure:
    def test_invalid_n_rejected(self):
        with pytest.raises(ConfigurationError):
            LeaderRotationGroups(n=6, t=2)

    def test_negative_view_rejected(self):
        with pytest.raises(ValueError):
            LeaderRotationGroups(n=5, t=2).primary(-1)

    @given(t=st.integers(1, 6), view=st.integers(0, 500))
    def test_partition_into_active_passive(self, t, view):
        groups = LeaderRotationGroups(n=2 * t + 1, t=t)
        active = set(groups.group(view))
        passive = set(groups.passive(view))
        assert len(active) == t + 1
        assert len(passive) == t
        assert active | passive == set(range(2 * t + 1))

    @given(t=st.integers(1, 6), view=st.integers(0, 500))
    def test_primary_not_among_followers(self, t, view):
        groups = LeaderRotationGroups(n=2 * t + 1, t=t)
        assert groups.primary(view) not in groups.followers(view)

    def test_leader_rotates_round_robin(self):
        groups = LeaderRotationGroups(n=7, t=3)
        assert [groups.primary(v) for v in range(7)] == list(range(7))
        assert groups.primary(7) == 0


class TestDeterminism:
    def test_same_seed_same_selection(self):
        a = LeaderRotationGroups(n=9, t=4, seed=5)
        b = LeaderRotationGroups(n=9, t=4, seed=5)
        for view in range(50):
            assert a.followers(view) == b.followers(view)

    def test_different_seeds_differ(self):
        a = LeaderRotationGroups(n=9, t=4, seed=1)
        b = LeaderRotationGroups(n=9, t=4, seed=2)
        assert any(a.followers(v) != b.followers(v) for v in range(20))

    def test_any_replica_can_verify(self):
        """Verifiability: recomputing the selection from (seed, view)
        yields the same followers -- no trusted dealer."""
        groups = LeaderRotationGroups(n=11, t=5, seed=7)
        independent = LeaderRotationGroups(n=11, t=5, seed=7)
        for view in (0, 13, 97):
            assert groups.followers(view) == independent.followers(view)


class TestCoverage:
    def test_every_replica_follows_eventually(self):
        """Availability needs every replica to appear as follower with
        non-vanishing frequency."""
        groups = LeaderRotationGroups(n=7, t=3, seed=3)
        seen = set()
        for view in range(200):
            seen.update(groups.followers(view))
        assert seen == set(range(7))

    def test_follower_selection_roughly_uniform(self):
        groups = LeaderRotationGroups(n=7, t=3, seed=11)
        counts = {r: 0 for r in range(7)}
        views = 1_400
        for view in range(views):
            for follower in groups.followers(view):
                counts[follower] += 1
        expected = views * 3 / 7  # ~600 per replica... corrected below
        # Each view picks 3 of the 6 non-primaries; a replica is
        # non-primary in 6/7 of views, so expectation = views*(6/7)*(3/6).
        expected = views * (6 / 7) * (3 / 6)
        for replica, count in counts.items():
            assert abs(count - expected) < 0.25 * expected, (replica, count)

    def test_correct_group_recurs(self):
        """With one replica 'bad', a view whose group avoids it recurs
        within a bounded window (probability argument made concrete for a
        fixed seed)."""
        groups = LeaderRotationGroups(n=7, t=3, seed=2)
        bad = 4
        clean_views = [v for v in range(100)
                       if bad not in groups.group(v)]
        assert clean_views, "no clean group in 100 views"
        gaps = [b - a for a, b in zip(clean_views, clean_views[1:])]
        assert max(gaps, default=1) < 30
