"""Component-level tests for the XPaxos fault detector (Section 4.4).

The end-to-end suite (``test_detection.py``) drives whole clusters;
these tests exercise :class:`FaultDetector` and the checkpoint PreChk
machinery directly: pairwise log cross-checks on real view-change
messages, lost/forged PreChk handling, and view-change interleavings.
"""

import pytest

from repro.common.config import ProtocolName
from repro.faults.adversary import DataLossAdversary, StaleViewAdversary
from repro.faults.injector import FaultSchedule
from repro.protocols.xpaxos import messages as msg
from repro.protocols.xpaxos.detection import FaultDetector
from repro.smr.log import PrepareEntry
from tests.conftest import make_harness


def fd_harness(seed=21, **overrides):
    return make_harness(ProtocolName.XPAXOS, seed=seed,
                        use_fault_detection=True, **overrides)


def committed_harness(seed=21, duration_ms=2_000.0, **overrides):
    """A driven cluster with real commit/prepare logs to cross-check."""
    harness = fd_harness(seed=seed, **overrides)
    harness.drive(duration_ms=duration_ms)
    return harness


def rebuild_vc(replica, vc, commit_entries=None, prepare_entries=None,
               checkpoint="keep", final_proof="keep"):
    """A mutated copy of ``vc``, re-signed by its sender (the adversary
    owns its key: content is the fault, never the signature)."""
    commit_entries = vc.commit_entries if commit_entries is None \
        else tuple(commit_entries)
    if prepare_entries is None:
        prepare_entries = vc.prepare_entries
    elif prepare_entries != "none":
        prepare_entries = tuple(prepare_entries)
    if prepare_entries == "none":
        prepare_entries = None
    checkpoint = vc.checkpoint if checkpoint == "keep" else checkpoint
    final_proof = vc.final_proof if final_proof == "keep" else final_proof
    payload = msg.view_change_payload(
        vc.new_view, vc.sender, commit_entries, prepare_entries, None)
    sig = replica.keystore.sign(replica.principal, payload)
    return msg.ViewChange(
        new_view=vc.new_view, sender=vc.sender,
        commit_entries=commit_entries, checkpoint=checkpoint, sig=sig,
        prepare_entries=prepare_entries, prepare_view=vc.prepare_view,
        final_proof=final_proof)


class TestCheckPair:
    """Algorithm 6's pairwise evidence checks, on genuine messages."""

    def test_benign_logs_pass_both_directions(self):
        harness = committed_harness()
        primary, follower = harness.replica(0), harness.replica(1)
        vc0 = primary._build_view_change(1)
        vc1 = follower._build_view_change(1)
        detector = FaultDetector(follower)
        assert detector._check_pair(1, vc0, vc1) is None
        assert detector._check_pair(1, vc1, vc0) is None

    def test_truncated_prepare_log_is_state_loss(self):
        harness = committed_harness()
        primary, follower = harness.replica(0), harness.replica(1)
        vc0 = primary._build_view_change(1)
        assert vc0.prepare_entries, "need real prepare entries"
        top = max(sn for sn, _ in vc0.prepare_entries)
        lossy = rebuild_vc(
            primary, vc0,
            prepare_entries=[(sn, e) for sn, e in vc0.prepare_entries
                             if sn < top])
        witness = follower._build_view_change(1)
        assert any(sn == top for sn, _ in witness.commit_entries)
        detector = FaultDetector(follower)
        assert detector._check_pair(1, lossy, witness) == "state-loss"

    def test_adversary_truncation_matches_manual_one(self):
        """The DataLossAdversary's output convicts the same way."""
        harness = committed_harness(seed=22)
        primary, follower = harness.replica(0), harness.replica(1)
        primary.byzantine = DataLossAdversary(keep_upto=1)
        lossy = primary._build_view_change(1)
        witness = follower._build_view_change(1)
        detector = FaultDetector(follower)
        assert detector._check_pair(1, lossy, witness) == "state-loss"

    def test_wrong_batch_same_view_is_fork_i(self):
        harness = committed_harness()
        primary, follower = harness.replica(0), harness.replica(1)
        vc0 = primary._build_view_change(1)
        entries = dict(vc0.prepare_entries)
        seqnos = sorted(entries)
        assert len(seqnos) >= 2, "need two slots to cross-wire"
        a, b = seqnos[0], seqnos[1]
        ea, eb = entries[a], entries[b]
        # Slot a now reports slot b's batch: same view, wrong request.
        entries[a] = PrepareEntry(ea.seqno, ea.view, eb.batch,
                                  ea.primary_sig)
        forked = rebuild_vc(primary, vc0,
                            prepare_entries=sorted(entries.items()))
        witness = follower._build_view_change(1)
        detector = FaultDetector(follower)
        assert detector._check_pair(1, forked, witness) == "fork-i"

    def test_prepare_older_than_commit_is_fork_i(self):
        """Entries re-stamped to a stale view (the StaleViewAdversary)
        convict once commits exist in a newer view."""
        harness = fd_harness(seed=23)
        harness.arm(FaultSchedule().suspect(1_000.0, 1))
        harness.drive(duration_ms=4_000.0)
        view = harness.replica(2).view
        assert view >= 1
        new_primary = harness.replica(
            harness.replica(2).groups.primary(view))
        witness_replica = next(
            harness.replica(rid)
            for rid in harness.replica(2).groups.group(view)
            if rid != new_primary.replica_id)
        new_primary.byzantine = StaleViewAdversary(stale_view=0)
        stale = new_primary._build_view_change(view + 1)
        witness = witness_replica._build_view_change(view + 1)
        # Only meaningful if the new view actually committed something.
        assert any(e.view == view for _, e in witness.commit_entries)
        detector = FaultDetector(witness_replica)
        assert detector._check_pair(view + 1, stale, witness) == "fork-i"

    def test_later_view_prepare_without_final_proof_is_fork_ii(self):
        harness = committed_harness()
        primary, follower = harness.replica(0), harness.replica(1)
        vc0 = primary._build_view_change(1)
        entries = dict(vc0.prepare_entries)
        sn = min(entries)
        e = entries[sn]
        # The suspect claims slot sn was (re)prepared in a future view but
        # holds no FinalProof for that view.
        entries[sn] = PrepareEntry(e.seqno, e.view + 7, e.batch,
                                   e.primary_sig)
        forked = rebuild_vc(primary, vc0,
                            prepare_entries=sorted(entries.items()),
                            final_proof=None)
        witness = follower._build_view_change(1)
        detector = FaultDetector(follower)
        assert detector._check_pair(1, forked, witness) == "fork-ii"

    def test_witness_with_bogus_proof_is_not_credible(self):
        """A witness whose commit entries carry no valid proof cannot
        convict anyone (Algorithm 6 trusts evidence, not claims)."""
        harness = committed_harness()
        primary, follower = harness.replica(0), harness.replica(1)
        vc0 = primary._build_view_change(1)
        top = max(sn for sn, _ in vc0.prepare_entries)
        lossy = rebuild_vc(
            primary, vc0,
            prepare_entries=[(sn, e) for sn, e in vc0.prepare_entries
                             if sn < top])
        witness = follower._build_view_change(1)
        stripped = rebuild_vc(
            follower, witness,
            commit_entries=[
                (sn, type(e)(e.seqno, e.view, e.batch, ()))
                for sn, e in witness.commit_entries])
        detector = FaultDetector(follower)
        assert detector._check_pair(1, lossy, stripped) is None

    def test_no_prepare_log_means_nothing_to_check(self):
        """Without FD payloads (prepare_entries None) a pair check is
        vacuous -- the basis of the FD-off mode."""
        harness = committed_harness()
        primary, follower = harness.replica(0), harness.replica(1)
        vc0 = rebuild_vc(primary, primary._build_view_change(1),
                         prepare_entries="none")
        witness = follower._build_view_change(1)
        detector = FaultDetector(follower)
        assert detector._check_pair(1, vc0, witness) is None

    def test_follower_not_obliged_at_t1(self):
        """With t = 1 only the primary maintains a prepare log: a
        follower reporting an empty one is never state-loss."""
        harness = committed_harness()
        follower, other = harness.replica(1), harness.replica(0)
        vc1 = follower._build_view_change(1)
        assert not vc1.prepare_entries  # followers hold no prepare log
        witness = other._build_view_change(1)
        detector = FaultDetector(other)
        assert detector._check_pair(1, vc1, witness) is None

    def test_detect_broadcasts_and_returns_convictions(self):
        harness = committed_harness(seed=24)
        primary, follower = harness.replica(0), harness.replica(1)
        primary.byzantine = DataLossAdversary(keep_upto=1)
        lossy = primary._build_view_change(1)
        witness = follower._build_view_change(1)
        detector = FaultDetector(follower)
        faulty = detector.detect(1, [lossy, witness])
        assert faulty == {0}
        assert 0 in follower.detected_faulty


class TestPreChk:
    """Checkpoint agreement under lost and forged PreChk messages."""

    def drop_prechk(self, harness, receivers):
        """Receiver-side loss of every PreChk at the given replicas."""
        for replica in receivers:
            replica._on_prechk = lambda src, m: None

    def test_checkpoints_form_with_healthy_prechk(self):
        harness = committed_harness(seed=25, checkpoint_period=8)
        actives = [harness.replica(0), harness.replica(1)]
        assert all(r.stable_checkpoint is not None for r in actives)

    def test_lost_prechk_blocks_checkpoints_not_commits(self):
        harness = fd_harness(seed=25, checkpoint_period=8)
        self.drop_prechk(harness, harness.replicas)
        driver = harness.drive(duration_ms=2_000.0)
        assert driver.throughput.total > 100  # commits unaffected
        assert all(r.stable_checkpoint is None for r in harness.replicas)

    def test_lost_prechk_causes_no_false_accusations(self):
        """A replica that never contributed checkpoint votes is not a
        faulty replica: the following view change must stay clean."""
        harness = fd_harness(seed=26, checkpoint_period=8)
        self.drop_prechk(harness, [harness.replica(1)])
        harness.arm(FaultSchedule().suspect(1_500.0, 1))
        harness.drive(duration_ms=4_000.0)
        assert all(not r.detected_faulty for r in harness.replicas)
        harness.checker.assert_safe()

    def test_wrong_mac_prechk_ignored(self):
        """A PRECHK whose transport MAC does not cover its body (or was
        minted for a different channel) dies at delivery, before the
        checkpoint handler ever sees it."""
        harness = committed_harness(seed=27)
        r1 = harness.replica(1)
        keystore = harness.runtime.keystore
        bad = msg.PreChk(seqno=4096, view=r1.view, state_digest=b"x" * 32,
                         sender=0)
        failures = r1.auth_failures
        # MAC over the wrong body.
        r1._on_deliver_auth("r0", bad,
                            keystore.mac("r0", "r1",
                                         ("prechk", "wrong", "body")), 64)
        # MAC minted for a different receiver's channel (replay).
        r1._on_deliver_auth("r0", bad, keystore.mac("r0", "r2", bad), 64)
        assert 4096 not in r1._prechk_votes
        assert r1.auth_failures == failures + 2
        # A replica relaying a peer's correctly MAC'd PreChk from its own
        # address cannot inject the vote either: the source check holds.
        r1._on_deliver_auth("r2", bad, keystore.mac("r2", "r1", bad), 64)
        assert 4096 not in r1._prechk_votes

    def test_wrong_digest_prechk_never_reaches_agreement(self):
        """A vote whose digest disagrees with ours counts for nothing:
        no CHKPT is signed without t+1 *matching* digests."""
        harness = committed_harness(seed=28)
        r1 = harness.replica(1)
        seqno = 4096
        own = r1.app.state_digest()
        r1._record_prechk(seqno, r1.replica_id, own)
        evil = msg.PreChk(seqno=seqno, view=r1.view,
                          state_digest=b"y" * 32, sender=0)
        # Correctly MAC'd for the r0 -> r1 channel: the faulty active can
        # vote a wrong digest, it just can never reach t+1 matching.
        r1._on_deliver_auth("r0", evil,
                            harness.runtime.keystore.mac("r0", "r1", evil),
                            64)
        assert r1._prechk_votes[seqno][0] == b"y" * 32  # vote recorded
        assert seqno not in r1._chkpt_sigs  # but no CHKPT signed


class TestViewChangeInterleavings:
    """Overlapping suspicions must neither wedge the cluster nor convict
    a benign replica."""

    def test_suspect_during_view_change_stays_clean(self):
        harness = fd_harness(seed=29)
        harness.arm(FaultSchedule()
                    .suspect(2_000.0, 1)
                    .suspect(2_001.0, 2))
        driver = harness.drive(duration_ms=6_000.0)
        assert all(not r.detected_faulty for r in harness.replicas)
        assert max(r.view for r in harness.replicas) >= 1
        harness.checker.assert_safe()
        last = max(c.completions[-1][1] for c in harness.runtime.clients)
        assert last > 5_000.0  # progress resumed after the churn

    def test_crash_during_view_change_stays_clean(self):
        """A replica crashing mid view change is a benign fault on top of
        a benign fault: detection must still convict nobody."""
        harness = fd_harness(seed=30)
        harness.arm(FaultSchedule()
                    .suspect(2_000.0, 1)
                    .crash_for(2_005.0, 2, 800.0))
        harness.drive(duration_ms=6_000.0)
        assert all(not r.detected_faulty for r in harness.replicas)
        harness.checker.assert_safe()

    def test_data_loss_detected_through_interleaved_view_changes(self):
        """Theorem 5 through churn: two quick suspicions while the
        primary's logs are truncated still convict the primary."""
        harness = fd_harness(seed=31)
        harness.replica(0).byzantine = DataLossAdversary(keep_upto=1)
        harness.arm(FaultSchedule()
                    .suspect(2_000.0, 1)
                    .suspect(2_400.0, 2))
        harness.drive(duration_ms=7_000.0)
        assert any(0 in r.detected_faulty for r in harness.replicas)
