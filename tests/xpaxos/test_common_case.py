"""Tests for the XPaxos common case (Algorithms 1 and 2)."""

import pytest

from repro.common.config import ProtocolName
from repro.faults.checker import SafetyChecker
from tests.conftest import make_cluster, run_workload


class TestFastPathT1:
    def test_requests_commit(self, xpaxos_t1):
        driver = run_workload(xpaxos_t1)
        assert driver.throughput.total > 100

    def test_all_replicas_execute_same_order(self, xpaxos_t1):
        run_workload(xpaxos_t1)
        checker = SafetyChecker(xpaxos_t1)
        assert checker.violations() == []

    def test_passive_replica_catches_up_via_lazy_replication(self,
                                                             xpaxos_t1):
        run_workload(xpaxos_t1)
        passive = xpaxos_t1.replica(2)  # view 0: passive is r2
        active = xpaxos_t1.replica(0)
        assert passive.committed_requests > 0.9 * active.committed_requests

    def test_client_latency_is_two_wan_hops_plus_round_trip(self, xpaxos_t1):
        """t = 1 pattern: client->primary, primary<->follower, ->client.
        With 1 ms one-way uniform latency and sub-ms batching that is
        ~4-6 ms."""
        driver = run_workload(xpaxos_t1)
        assert 3.0 <= driver.mean_latency_ms() <= 20.0

    def test_no_client_timeouts_in_fault_free_run(self, xpaxos_t1):
        run_workload(xpaxos_t1)
        assert sum(c.timeouts for c in xpaxos_t1.clients) == 0

    def test_view_never_changes_fault_free(self, xpaxos_t1):
        run_workload(xpaxos_t1)
        assert all(r.view == 0 for r in xpaxos_t1.replicas)

    def test_commit_logs_hold_proofs(self, xpaxos_t1):
        run_workload(xpaxos_t1, duration_ms=500.0)
        follower = xpaxos_t1.replica(1)
        for _, entry in follower.commit_log.items():
            assert len(entry.proof) == 2  # m0 + m1

    def test_commit_log_signatures_verify(self, xpaxos_t1):
        run_workload(xpaxos_t1, duration_ms=500.0)
        keystore = xpaxos_t1.keystore
        primary = xpaxos_t1.replica(0)
        for _, entry in primary.commit_log.items():
            for sig in entry.proof:
                assert keystore.verify_digest(sig, sig.digest)


class TestGeneralCaseT2:
    def test_requests_commit(self, xpaxos_t2):
        driver = run_workload(xpaxos_t2)
        assert driver.throughput.total > 100

    def test_total_order_across_replicas(self, xpaxos_t2):
        run_workload(xpaxos_t2)
        assert SafetyChecker(xpaxos_t2).violations() == []

    def test_proof_contains_prepare_plus_t_commits(self, xpaxos_t2):
        run_workload(xpaxos_t2, duration_ms=500.0)
        primary = xpaxos_t2.replica(0)
        t = xpaxos_t2.config.t
        for _, entry in primary.commit_log.items():
            assert len(entry.proof) == 1 + t

    def test_all_active_replicas_commit(self, xpaxos_t2):
        run_workload(xpaxos_t2, duration_ms=1000.0)
        actives = [xpaxos_t2.replica(i) for i in (0, 1, 2)]
        counts = [r.committed_requests for r in actives]
        assert min(counts) > 0.9 * max(counts)


class TestBatching:
    def test_batches_bounded_by_config(self):
        runtime = make_cluster(batch_size=4, num_clients=8)
        sizes = []
        runtime.replica(0).on_commit_batch = (
            lambda sn, batch: sizes.append(len(batch)))
        run_workload(runtime, duration_ms=500.0)
        assert sizes
        assert max(sizes) <= 4

    def test_partial_batches_flush_on_timeout(self):
        runtime = make_cluster(batch_size=100, num_clients=2)
        driver = run_workload(runtime, duration_ms=500.0)
        # 2 clients can never fill a 100-batch; the timer must flush.
        assert driver.throughput.total > 0

    def test_duplicate_request_executed_once(self, xpaxos_t1):
        client = xpaxos_t1.clients[0]
        primary = xpaxos_t1.replica(0)
        from repro.protocols.xpaxos import messages as msg

        request = client.propose("op-a", size_bytes=10)
        # Maliciously duplicate the REPLICATE message.
        client.send("r0", msg.Replicate(request))
        client.send("r0", msg.Replicate(request))
        xpaxos_t1.sim.run(until=1_000.0)
        executed = [rid for _, rid in primary.execution_trace
                    if rid == request.rid]
        assert len(executed) == 1


class TestRequestValidation:
    def test_unsigned_request_ignored(self, xpaxos_t1):
        from repro.protocols.xpaxos import messages as msg
        from repro.smr.messages import Request

        primary = xpaxos_t1.replica(0)
        bogus = Request(op=1, timestamp=1, client=0, signature=None)
        primary.on_message("c0", msg.Replicate(bogus))
        xpaxos_t1.sim.run(until=500.0)
        assert primary.committed_requests == 0

    def test_forged_client_signature_ignored(self, xpaxos_t1):
        from repro.protocols.xpaxos import messages as msg
        from repro.smr.messages import Request

        primary = xpaxos_t1.replica(0)
        keystore = xpaxos_t1.keystore
        forged_sig = keystore.forge_attempt("c9", "c0", (1, 1, 0))
        bogus = Request(op=1, timestamp=1, client=0, signature=forged_sig)
        primary.on_message("c0", msg.Replicate(bogus))
        xpaxos_t1.sim.run(until=500.0)
        assert primary.committed_requests == 0
