"""Tests for the request-retransmission protocol (Algorithm 4)."""

import pytest

from repro.protocols.xpaxos import messages as msg
from tests.conftest import make_cluster


class TestClientTimeout:
    def test_resend_broadcasts_to_actives(self, xpaxos_t1):
        client = xpaxos_t1.clients[0]
        # Black-hole the client's first send by partitioning it from the
        # primary; the timer should fire and broadcast RE-SEND.
        xpaxos_t1.network.partitions.block_pair("c0", "r0")
        client.propose("op", size_bytes=16)
        xpaxos_t1.sim.run(until=250.0)  # past request_retransmit_ms=200
        assert client.timeouts >= 1

    def test_request_commits_via_resend_path(self, xpaxos_t1):
        client = xpaxos_t1.clients[0]
        results = []
        client.on_result = results.append
        xpaxos_t1.network.partitions.block_pair("c0", "r0")
        client.propose("op", size_bytes=16)
        # RE-SEND goes to r1 too, which forwards to the primary r0;
        # the signed-replies bundle then reaches the client via r1.
        xpaxos_t1.sim.run(until=3_000.0)
        assert results  # committed despite the client-primary partition

    def test_signed_replies_bundle_carries_t_plus_1_shares(self, xpaxos_t1):
        client = xpaxos_t1.clients[0]
        bundles = []
        original = client.on_message

        def spy(src, payload):
            if isinstance(payload, msg.SignedReplies):
                bundles.append(payload)
            original(src, payload)

        client.on_message = spy
        xpaxos_t1.network.partitions.block_pair("c0", "r0")
        client.propose("op", size_bytes=16)
        xpaxos_t1.sim.run(until=3_000.0)
        assert bundles
        assert len(bundles[0].shares) == xpaxos_t1.config.t + 1

    def test_share_signatures_verify(self, xpaxos_t1):
        client = xpaxos_t1.clients[0]
        bundles = []
        original = client.on_message

        def spy(src, payload):
            if isinstance(payload, msg.SignedReplies):
                bundles.append(payload)
            original(src, payload)

        client.on_message = spy
        xpaxos_t1.network.partitions.block_pair("c0", "r0")
        client.propose("op", size_bytes=16)
        xpaxos_t1.sim.run(until=3_000.0)
        keystore = xpaxos_t1.keystore
        for share in bundles[0].shares:
            payload = msg.signed_reply_payload(
                share.seqno, share.view, share.timestamp, share.client,
                share.reply_digest, share.sender)
            assert keystore.verify(share.sig, payload)


class TestReplicaSideTimeout:
    def test_stalled_request_triggers_suspicion(self, xpaxos_t1):
        """If the request cannot commit (follower partitioned from
        primary), the active replicas must suspect the view."""
        client = xpaxos_t1.clients[0]
        xpaxos_t1.network.partitions.block_pair("r0", "r1")
        client.propose("op", size_bytes=16)
        xpaxos_t1.sim.run(until=8_000.0)
        # The view moved on (r0-r1 cannot be the synchronous group).
        views = {r.view for r in xpaxos_t1.replicas}
        assert max(views) >= 1

    def test_client_follows_suspect_to_new_view(self, xpaxos_t1):
        client = xpaxos_t1.clients[0]
        results = []
        client.on_result = results.append
        xpaxos_t1.network.partitions.block_pair("r0", "r1")
        client.propose("op", size_bytes=16)
        xpaxos_t1.sim.run(until=10_000.0)
        assert results  # committed in a later view
        assert client.view >= 1


class TestDeduplication:
    def test_resend_of_committed_request_returns_cached_reply(self,
                                                              xpaxos_t1):
        client = xpaxos_t1.clients[0]
        results = []
        client.on_result = results.append
        client.propose("op", size_bytes=16)
        xpaxos_t1.sim.run(until=500.0)
        assert len(results) == 1
        # Simulate a lost reply: client re-sends the same request.
        request = client.completions[0][2]
        for replica in (0, 1):
            from repro.smr.messages import Request

            # Rebuild the identical request object for re-sending.
            pass
        # The replicas' reply cache must not re-execute the op.
        primary = xpaxos_t1.replica(0)
        before = primary.committed_requests
        from repro.protocols.xpaxos import messages as m2

        # Re-deliver the original REPLICATE.
        body = ("op", 1, 0)
        sig = xpaxos_t1.keystore.sign("c0", body)
        from repro.smr.messages import Request

        duplicate = Request(op="op", timestamp=1, client=0, size_bytes=16,
                            signature=sig)
        primary.on_message("c0", m2.Replicate(duplicate))
        xpaxos_t1.sim.run(until=1_000.0)
        assert primary.committed_requests == before
