"""Tests of the XFT model boundary (Definitions 2-3, Table 1).

Three regimes, all driven against the real protocol:

* **Outside anarchy, no non-crash faults**: any number of crashes and
  partitions -- consistency always holds (the CFT column of Table 1).
* **Outside anarchy, with a non-crash fault**: one Byzantine replica but a
  correct-and-synchronous majority -- consistency still holds.
* **Anarchy is the actual boundary**: with a data-loss-faulty replica AND
  enough crash faults (tnc + tc > t), the paper's Section 4.4 scenario can
  violate consistency -- which the safety checker must classify as
  admissible (anarchy was observed), not as a protocol bug.
"""

import pytest

from repro.common.config import ClusterConfig, ProtocolName, WorkloadConfig
from repro.faults.adversary import DataLossAdversary
from repro.faults.checker import SafetyChecker
from repro.protocols.registry import build_cluster
from repro.smr.app import KVStore
from repro.workloads.clients import ClosedLoopDriver
from tests.conftest import FAST_TIMEOUTS


def build(seed=0, use_fd=False, num_clients=2):
    config = ClusterConfig(t=1, protocol=ProtocolName.XPAXOS,
                           use_fault_detection=use_fd, **FAST_TIMEOUTS)
    return build_cluster(config, num_clients=num_clients,
                         app_factory=KVStore, seed=seed)


def call(runtime, client, op, timeout_ms=4_000.0):
    done = []
    client.on_result = done.append
    client.propose(op, size_bytes=32)
    runtime.sim.run(until=runtime.sim.now + timeout_ms)
    return done[0] if done else None


class TestOutsideAnarchyWithByzantineReplica:
    def test_one_byzantine_replica_majority_healthy(self):
        """tnc = 1, tc = tp = 0: sum = 1 <= t, so NOT anarchy; XPaxos must
        preserve consistency even though the primary lies in view changes."""
        runtime = build(seed=3)
        checker = SafetyChecker(runtime, non_crash_faulty=[0])
        runtime.replica(0).byzantine = DataLossAdversary(keep_upto=0)
        client = runtime.clients[0]

        assert call(runtime, client, ("put", "k", "v1")) is None
        # Force a view change with everyone up: outside anarchy.
        assert not checker.in_anarchy()
        runtime.replica(1).suspect_view(0)
        runtime.sim.run(until=runtime.sim.now + 3_000.0)

        # The committed write survives despite the primary's data loss:
        # the correct follower's commit log carried it into the new view.
        result = call(runtime, runtime.clients[1], ("get", "k"))
        assert result == "v1"
        checker.assert_safe()

    def test_fd_catches_the_fault_before_anarchy_can_form(self):
        """The FD rationale (Section 4.4): the dangerous fault is detected
        at the first view change, i.e. before it coincides with enough
        crash/network faults."""
        runtime = build(seed=4, use_fd=True)
        runtime.replica(0).byzantine = DataLossAdversary(keep_upto=0)
        client = runtime.clients[0]
        assert call(runtime, client, ("put", "k", "v1")) is None
        runtime.replica(1).suspect_view(0)
        runtime.sim.run(until=runtime.sim.now + 3_000.0)
        assert any(0 in runtime.replica(i).detected_faulty
                   for i in (1, 2))


class TestAnarchyBoundaryIsTight:
    def test_data_loss_plus_crash_is_anarchy(self):
        """tnc = 1 and tc = 1: tnc + tc + tp = 2 > t = 1 -> anarchy.
        The checker classifies this correctly."""
        runtime = build(seed=5)
        checker = SafetyChecker(runtime, non_crash_faulty=[0])
        runtime.replica(1).crash()
        assert checker.observe()  # anarchy
        runtime.replica(1).recover()
        assert not checker.observe()

    def test_consistency_can_break_in_anarchy(self):
        """The paper's data-loss scenario: requests committed by the
        synchronous group (s0, s1); s0 is non-crash-faulty and loses its
        log; s1 crashes; the view change to (s0, s2) can then miss the
        committed requests -- admissible because the system was in
        anarchy.  The SafetyChecker must NOT flag this as a bug."""
        runtime = build(seed=6)
        checker = SafetyChecker(runtime, non_crash_faulty=[0])
        adversary = DataLossAdversary(keep_upto=0)
        client = runtime.clients[0]

        # Commit a write through (s0, s1) while s2 learns nothing (cut the
        # lazy-replication path so only s0 and s1 hold the request).
        runtime.network.partitions.block_pair("r1", "r2")
        runtime.network.partitions.block_pair("r0", "r2")
        assert call(runtime, client, ("put", "k", "v1")) is None

        # Now: s0 turns Byzantine (data loss), s1 crashes -> anarchy.
        runtime.replica(0).byzantine = adversary
        runtime.replica(1).crash()
        checker.observe()
        assert checker.anarchy_observed
        runtime.network.partitions.heal_all()

        # View change: the only surviving evidence of the write was s1's
        # commit log (crashed) and s0's (maliciously dropped).
        runtime.replica(0).suspect_view(0)
        runtime.sim.run(until=runtime.sim.now + 4_000.0)

        # The write may be gone -- in anarchy that is the model's stated
        # limit, so assert_safe() must tolerate whatever happened.
        checker.assert_safe()

    def test_crashes_and_partitions_alone_never_break_safety(self):
        """tnc = 0: no amount of benign chaos violates consistency
        (Table 1's CFT-equivalent column for XFT)."""
        runtime = build(seed=7, num_clients=3)
        checker = SafetyChecker(runtime)
        driver = ClosedLoopDriver(
            runtime, WorkloadConfig(num_clients=3, request_size=32,
                                    duration_ms=10_000.0,
                                    warmup_ms=100.0),
            op_factory=lambda cid, seq: ("put", f"k{cid}", seq))
        sim = runtime.sim
        sim.call_at(1_000.0, runtime.replica(0).crash)
        sim.call_at(2_000.0, runtime.replica(0).recover)
        sim.call_at(3_000.0, lambda: runtime.network.partitions.block_pair(
            "r0", "r2"))
        sim.call_at(4_000.0, runtime.replica(1).crash)
        sim.call_at(5_500.0, runtime.replica(1).recover)
        sim.call_at(6_000.0, runtime.network.partitions.heal_all)
        driver.run()
        assert not checker.anarchy_observed
        checker.assert_safe()
        assert checker.violations() == []
