"""Tests for fault detection (Section 4.4, Algorithms 5-6, Theorems 5-6)."""

import pytest

from repro.common.config import ProtocolName
from repro.faults.adversary import (
    DataLossAdversary,
    EquivocatingAdversary,
    SilentAdversary,
)
from repro.faults.injector import FaultSchedule
from tests.conftest import make_harness


def fd_harness(seed=1, use_fd=True):
    return make_harness(ProtocolName.XPAXOS, seed=seed,
                        use_fault_detection=use_fd)


def drive(harness, duration_ms=8_000.0):
    return harness.drive(duration_ms=duration_ms)


class TestStrongCompleteness:
    """Theorem 5: a fault that would cause inconsistency in anarchy is
    detected outside anarchy."""

    def test_data_loss_primary_detected(self):
        harness = fd_harness()
        harness.replica(0).byzantine = DataLossAdversary(keep_upto=1)
        harness.arm(FaultSchedule().crash_for(2_000.0, 1, 1_000.0))
        drive(harness)
        # Every replica that was up during the view change convicts the
        # primary (r1 was crashed while the accusations circulated).
        for replica_id in (0, 2):
            assert 0 in harness.replica(replica_id).detected_faulty

    def test_equivocating_primary_detected(self):
        harness = fd_harness(seed=3)
        harness.replica(0).byzantine = EquivocatingAdversary(
            report_only={1})
        harness.arm(FaultSchedule().crash_for(2_000.0, 1, 1_000.0))
        drive(harness)
        assert any(0 in r.detected_faulty for r in harness.replicas)

    def test_detection_propagates_beyond_the_detecting_replica(self):
        """Lemma 15: a fault detected by one correct replica is eventually
        detected by every correct replica that hears the accusation."""
        harness = fd_harness(seed=4)
        harness.replica(0).byzantine = DataLossAdversary(keep_upto=0)
        # Trigger the view change without crashing anyone, so every
        # replica is up to receive the broadcast accusations.
        harness.arm(FaultSchedule().suspect(2_000.0, 1))
        drive(harness)
        detections = [0 in r.detected_faulty for r in harness.replicas]
        assert all(detections), detections


class TestStrongAccuracy:
    """Theorem 6: a benign replica is never detected as faulty."""

    def test_benign_view_change_detects_nothing(self):
        harness = fd_harness(seed=5)
        harness.arm(FaultSchedule().suspect(2_000.0, 0))
        drive(harness, duration_ms=6_000.0)
        assert all(r.view >= 1 for r in harness.replicas)
        assert all(not r.detected_faulty for r in harness.replicas)

    def test_crash_recovery_is_not_a_byzantine_fault(self):
        """A replica that crashes and recovers with intact logs must not
        be accused -- crash faults are benign."""
        harness = fd_harness(seed=6)
        harness.arm(FaultSchedule().crash_for(2_000.0, 1, 1_000.0))
        drive(harness)
        assert all(not r.detected_faulty for r in harness.replicas)

    def test_repeated_view_changes_stay_clean(self):
        harness = fd_harness(seed=7)
        for at in (1_500.0, 3_000.0, 4_500.0):
            harness.sim.call_at(
                at,
                lambda: harness.replica(
                    harness.replica(0).groups.primary(
                        harness.replica(0).view)).suspect_view(
                            harness.replica(0).view))
        drive(harness, duration_ms=7_000.0)
        assert all(not r.detected_faulty for r in harness.replicas)

    def test_silent_replica_not_convicted(self):
        """Withholding the view-change message looks like a crash; FD must
        not convict (omission of the *message* is benign-compatible)."""
        harness = fd_harness(seed=8)
        harness.replica(2).byzantine = SilentAdversary()
        harness.arm(FaultSchedule().crash_for(2_000.0, 1, 1_000.0))
        drive(harness)
        # r2 (passive in view 0, no obligations) is never convicted.
        assert all(2 not in r.detected_faulty for r in harness.replicas)


class TestFdDisabled:
    def test_no_detection_without_fd(self):
        """Without FD, the same data-loss fault passes unnoticed (the
        motivation for the mechanism)."""
        harness = fd_harness(use_fd=False, seed=9)
        harness.replica(0).byzantine = DataLossAdversary(keep_upto=1)
        harness.arm(FaultSchedule().crash_for(2_000.0, 1, 1_000.0))
        drive(harness)
        assert all(not r.detected_faulty for r in harness.replicas)

    def test_progress_unaffected_by_fd(self):
        with_fd = fd_harness(seed=10, use_fd=True)
        without_fd = fd_harness(seed=10, use_fd=False)
        d1 = drive(with_fd, duration_ms=3_000.0)
        d2 = drive(without_fd, duration_ms=3_000.0)
        assert d1.throughput.total > 0.8 * d2.throughput.total


class TestVcConfirmPhase:
    def test_final_proof_recorded_after_fd_view_change(self):
        harness = fd_harness(seed=11)
        harness.arm(FaultSchedule().suspect(2_000.0, 0))
        drive(harness, duration_ms=6_000.0)
        new_view = harness.replica(0).view
        actives = harness.replica(0).groups.group(new_view)
        for rid in actives:
            replica = harness.replica(rid)
            assert new_view in replica.final_proofs
            # t+1 confirm signatures form the proof.
            assert len(replica.final_proofs[new_view]) == \
                harness.runtime.config.t + 1
