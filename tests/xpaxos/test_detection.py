"""Tests for fault detection (Section 4.4, Algorithms 5-6, Theorems 5-6)."""

import pytest

from repro.common.config import ClusterConfig, ProtocolName, WorkloadConfig
from repro.faults.adversary import (
    DataLossAdversary,
    EquivocatingAdversary,
    SilentAdversary,
)
from repro.faults.injector import FaultInjector, FaultSchedule
from repro.protocols.registry import build_cluster
from repro.workloads.clients import ClosedLoopDriver


def fd_cluster(seed=1, use_fd=True):
    config = ClusterConfig(
        t=1, protocol=ProtocolName.XPAXOS, delta_ms=50.0,
        request_retransmit_ms=200.0, view_change_timeout_ms=400.0,
        batch_timeout_ms=2.0, use_fault_detection=use_fd)
    return build_cluster(config, num_clients=3, seed=seed)


def drive(runtime, duration_ms=8_000.0):
    driver = ClosedLoopDriver(
        runtime, WorkloadConfig(num_clients=len(runtime.clients),
                                request_size=64, duration_ms=duration_ms,
                                warmup_ms=100.0))
    driver.run()
    return driver


class TestStrongCompleteness:
    """Theorem 5: a fault that would cause inconsistency in anarchy is
    detected outside anarchy."""

    def test_data_loss_primary_detected(self):
        runtime = fd_cluster()
        runtime.replica(0).byzantine = DataLossAdversary(keep_upto=1)
        FaultInjector(runtime).arm(
            FaultSchedule().crash_for(2_000.0, 1, 1_000.0))
        drive(runtime)
        # Every replica that was up during the view change convicts the
        # primary (r1 was crashed while the accusations circulated).
        for replica_id in (0, 2):
            assert 0 in runtime.replica(replica_id).detected_faulty

    def test_equivocating_primary_detected(self):
        runtime = fd_cluster(seed=3)
        runtime.replica(0).byzantine = EquivocatingAdversary(
            report_only={1})
        FaultInjector(runtime).arm(
            FaultSchedule().crash_for(2_000.0, 1, 1_000.0))
        drive(runtime)
        assert any(0 in r.detected_faulty for r in runtime.replicas)

    def test_detection_propagates_beyond_the_detecting_replica(self):
        """Lemma 15: a fault detected by one correct replica is eventually
        detected by every correct replica that hears the accusation."""
        runtime = fd_cluster(seed=4)
        runtime.replica(0).byzantine = DataLossAdversary(keep_upto=0)
        # Trigger the view change without crashing anyone, so every
        # replica is up to receive the broadcast accusations.
        runtime.sim.call_at(
            2_000.0, lambda: runtime.replica(1).suspect_view(
                runtime.replica(1).view))
        drive(runtime)
        detections = [0 in r.detected_faulty for r in runtime.replicas]
        assert all(detections), detections


class TestStrongAccuracy:
    """Theorem 6: a benign replica is never detected as faulty."""

    def test_benign_view_change_detects_nothing(self):
        runtime = fd_cluster(seed=5)
        runtime.sim.call_at(
            2_000.0,
            lambda: runtime.replica(0).suspect_view(
                runtime.replica(0).view))
        drive(runtime, duration_ms=6_000.0)
        assert all(r.view >= 1 for r in runtime.replicas)
        assert all(not r.detected_faulty for r in runtime.replicas)

    def test_crash_recovery_is_not_a_byzantine_fault(self):
        """A replica that crashes and recovers with intact logs must not
        be accused -- crash faults are benign."""
        runtime = fd_cluster(seed=6)
        FaultInjector(runtime).arm(
            FaultSchedule().crash_for(2_000.0, 1, 1_000.0))
        drive(runtime)
        assert all(not r.detected_faulty for r in runtime.replicas)

    def test_repeated_view_changes_stay_clean(self):
        runtime = fd_cluster(seed=7)
        for at in (1_500.0, 3_000.0, 4_500.0):
            runtime.sim.call_at(
                at,
                lambda: runtime.replica(
                    runtime.replica(0).groups.primary(
                        runtime.replica(0).view)).suspect_view(
                            runtime.replica(0).view))
        drive(runtime, duration_ms=7_000.0)
        assert all(not r.detected_faulty for r in runtime.replicas)

    def test_silent_replica_not_convicted(self):
        """Withholding the view-change message looks like a crash; FD must
        not convict (omission of the *message* is benign-compatible)."""
        runtime = fd_cluster(seed=8)
        runtime.replica(2).byzantine = SilentAdversary()
        FaultInjector(runtime).arm(
            FaultSchedule().crash_for(2_000.0, 1, 1_000.0))
        drive(runtime)
        # r2 (passive in view 0, no obligations) is never convicted.
        assert all(2 not in r.detected_faulty for r in runtime.replicas)


class TestFdDisabled:
    def test_no_detection_without_fd(self):
        """Without FD, the same data-loss fault passes unnoticed (the
        motivation for the mechanism)."""
        runtime = fd_cluster(use_fd=False, seed=9)
        runtime.replica(0).byzantine = DataLossAdversary(keep_upto=1)
        FaultInjector(runtime).arm(
            FaultSchedule().crash_for(2_000.0, 1, 1_000.0))
        drive(runtime)
        assert all(not r.detected_faulty for r in runtime.replicas)

    def test_progress_unaffected_by_fd(self):
        with_fd = fd_cluster(seed=10, use_fd=True)
        without_fd = fd_cluster(seed=10, use_fd=False)
        d1 = drive(with_fd, duration_ms=3_000.0)
        d2 = drive(without_fd, duration_ms=3_000.0)
        assert d1.throughput.total > 0.8 * d2.throughput.total


class TestVcConfirmPhase:
    def test_final_proof_recorded_after_fd_view_change(self):
        runtime = fd_cluster(seed=11)
        runtime.sim.call_at(
            2_000.0,
            lambda: runtime.replica(0).suspect_view(0))
        drive(runtime, duration_ms=6_000.0)
        new_view = runtime.replica(0).view
        actives = runtime.replica(0).groups.group(new_view)
        for rid in actives:
            replica = runtime.replica(rid)
            assert new_view in replica.final_proofs
            # t+1 confirm signatures form the proof.
            assert len(replica.final_proofs[new_view]) == \
                runtime.config.t + 1
