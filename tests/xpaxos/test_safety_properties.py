"""Property-based safety tests: random benign fault schedules must never
violate total order (Definition 3 outside anarchy)."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.common.config import ClusterConfig, ProtocolName, WorkloadConfig
from repro.faults.checker import SafetyChecker
from repro.faults.injector import FaultInjector, FaultSchedule
from repro.protocols.registry import build_cluster
from repro.workloads.clients import ClosedLoopDriver


def build(t, seed):
    config = ClusterConfig(
        t=t, protocol=ProtocolName.XPAXOS, delta_ms=50.0,
        request_retransmit_ms=200.0, view_change_timeout_ms=400.0,
        batch_timeout_ms=2.0)
    return build_cluster(config, num_clients=2, seed=seed)


crash_events = st.lists(
    st.tuples(
        st.floats(min_value=500.0, max_value=4_000.0),  # crash time
        st.integers(min_value=0, max_value=2),           # victim
        st.floats(min_value=200.0, max_value=1_500.0),   # downtime
    ),
    min_size=0, max_size=3,
)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(events=crash_events, seed=st.integers(min_value=0, max_value=100))
def test_random_crash_schedules_never_violate_safety(events, seed):
    """Crash faults are benign: any schedule of crashes and recoveries
    (even ones that temporarily stop progress) must preserve total order."""
    runtime = build(t=1, seed=seed)
    schedule = FaultSchedule()
    # Never crash two replicas at overlapping times in this property (that
    # can stall progress, which is fine, but keep runs short).
    for at, victim, downtime in events:
        schedule.crash_for(at, victim, downtime)
    FaultInjector(runtime).arm(schedule)
    checker = SafetyChecker(runtime)
    driver = ClosedLoopDriver(
        runtime, WorkloadConfig(num_clients=2, request_size=32,
                                duration_ms=6_000.0, warmup_ms=100.0))
    driver.run()
    checker.assert_safe()
    assert checker.violations() == []


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    pairs=st.lists(
        st.tuples(st.sampled_from(["r0", "r1", "r2"]),
                  st.sampled_from(["r0", "r1", "r2"]),
                  st.floats(min_value=500.0, max_value=3_000.0),
                  st.floats(min_value=200.0, max_value=1_500.0)),
        min_size=0, max_size=2),
    seed=st.integers(min_value=0, max_value=50),
)
def test_random_partitions_never_violate_safety(pairs, seed):
    """Network faults alone (no non-crash faults) can never break
    consistency -- XPaxos inherits the CFT column of Table 1."""
    runtime = build(t=1, seed=seed)
    schedule = FaultSchedule()
    for a, b, at, duration in pairs:
        if a != b:
            schedule.partition(at, a, b)
            schedule.heal(at + duration, a, b)
    FaultInjector(runtime).arm(schedule)
    checker = SafetyChecker(runtime)
    driver = ClosedLoopDriver(
        runtime, WorkloadConfig(num_clients=2, request_size=32,
                                duration_ms=6_000.0, warmup_ms=100.0))
    driver.run()
    checker.assert_safe()


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=1000))
def test_fault_free_runs_are_deterministic_and_ordered(seed):
    runtime = build(t=1, seed=seed)
    checker = SafetyChecker(runtime)
    driver = ClosedLoopDriver(
        runtime, WorkloadConfig(num_clients=2, request_size=32,
                                duration_ms=2_000.0, warmup_ms=100.0))
    driver.run()
    assert checker.violations() == []
    assert driver.throughput.total > 0


def test_overlapping_crashes_preserve_sole_survivor_log():
    """Regression (found by the crash-schedule property): with r1 down
    500-1764 ms and r0 down 1000-1582 ms, r2 is briefly the sole holder
    of a committed slot and enters a view whose actives are both still
    down -- its VIEW-CHANGE was sent once and lost, and the new actives
    later re-assigned that slot to a different batch.  The passive-side
    VIEW-CHANGE retransmission (reliable-channel emulation) must carry
    r2's log into the eventual view."""
    runtime = build(t=1, seed=0)
    schedule = (FaultSchedule()
                .crash_for(500.0, 1, 1264.193244329622)
                .crash_for(1000.0, 0, 582.0))
    FaultInjector(runtime).arm(schedule)
    checker = SafetyChecker(runtime)
    driver = ClosedLoopDriver(
        runtime, WorkloadConfig(num_clients=2, request_size=32,
                                duration_ms=6_000.0, warmup_ms=100.0))
    driver.run()
    checker.assert_safe()
    assert checker.violations() == []
    assert driver.throughput.total > 0


def test_client_commit_implies_majority_persistence():
    """Every client-committed request must be in the commit logs (or the
    executed state) of at least t+1 replicas at the end of a run."""
    runtime = build(t=1, seed=7)
    driver = ClosedLoopDriver(
        runtime, WorkloadConfig(num_clients=2, request_size=32,
                                duration_ms=2_000.0, warmup_ms=0.0))
    driver.run()
    committed_rids = {rid for client in runtime.clients
                      for _, _, rid in client.completions}
    assert committed_rids
    for rid in committed_rids:
        holders = sum(
            1 for replica in runtime.replicas
            if any(trace_rid == rid
                   for _, trace_rid in replica.execution_trace))
        assert holders >= runtime.config.t + 1, (
            f"{rid} committed by client but held by only {holders} replicas")
