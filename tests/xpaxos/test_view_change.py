"""Tests for the XPaxos view change (Section 4.3, Algorithm 3)."""

import pytest

from repro.common.config import ProtocolName, WorkloadConfig
from repro.faults.checker import SafetyChecker
from repro.faults.injector import FaultInjector, FaultSchedule
from repro.workloads.clients import ClosedLoopDriver
from tests.conftest import make_cluster, run_workload


def run_with_schedule(runtime, schedule, duration_ms=8_000.0):
    workload = WorkloadConfig(num_clients=len(runtime.clients),
                              request_size=64,
                              duration_ms=duration_ms, warmup_ms=100.0)
    driver = ClosedLoopDriver(runtime, workload)
    FaultInjector(runtime).arm(schedule)
    checker = SafetyChecker(runtime)
    driver.run()
    return driver, checker


class TestFollowerCrash:
    def test_progress_resumes_after_view_change(self, xpaxos_t1):
        schedule = FaultSchedule().crash_for(1_000.0, 1, 1_000.0)
        driver, checker = run_with_schedule(xpaxos_t1, schedule)
        checker.assert_safe()
        assert driver.throughput.total > 500
        assert all(r.view > 0 for r in xpaxos_t1.replicas)

    def test_requests_issued_before_crash_eventually_commit(self,
                                                            xpaxos_t1):
        schedule = FaultSchedule().crash_for(1_000.0, 1, 1_000.0)
        driver, checker = run_with_schedule(xpaxos_t1, schedule)
        # Every client should be cycling again by the end of the run.
        for client in xpaxos_t1.clients:
            assert client.completions

    def test_views_converge(self, xpaxos_t1):
        schedule = FaultSchedule().crash_for(1_000.0, 1, 1_000.0)
        run_with_schedule(xpaxos_t1, schedule)
        views = {r.view for r in xpaxos_t1.replicas}
        assert len(views) == 1


class TestPrimaryCrash:
    def test_progress_resumes(self, xpaxos_t1):
        schedule = FaultSchedule().crash_for(1_000.0, 0, 1_000.0)
        driver, checker = run_with_schedule(xpaxos_t1, schedule)
        checker.assert_safe()
        assert driver.throughput.total > 500

    def test_new_view_excludes_crashed_primary_while_down(self, xpaxos_t1):
        schedule = FaultSchedule().crash(1_000.0, 0)  # crash forever
        driver, checker = run_with_schedule(xpaxos_t1, schedule,
                                            duration_ms=6_000.0)
        checker.assert_safe()
        live = [xpaxos_t1.replica(1), xpaxos_t1.replica(2)]
        view = live[0].view
        group = live[0].groups.group(view)
        assert 0 not in group
        assert driver.throughput.total > 200


class TestPassiveCrash:
    def test_no_view_change_needed(self, xpaxos_t1):
        """A view is not changed unless there is a fault within the
        synchronous group (Section 4.1)."""
        schedule = FaultSchedule().crash_for(1_000.0, 2, 2_000.0)
        driver, checker = run_with_schedule(xpaxos_t1, schedule,
                                            duration_ms=5_000.0)
        checker.assert_safe()
        assert all(r.view == 0 for r in xpaxos_t1.replicas)
        assert driver.throughput.total > 500


class TestPartitionTriggersViewChange:
    def test_partitioned_synchronous_group_rotates(self, xpaxos_t1):
        schedule = (FaultSchedule()
                    .partition(1_000.0, "r0", "r1")
                    .heal(3_000.0, "r0", "r1"))
        driver, checker = run_with_schedule(xpaxos_t1, schedule)
        checker.assert_safe()
        assert all(r.view > 0 for r in xpaxos_t1.replicas)
        assert driver.throughput.total > 500


class TestT2ViewChange:
    def test_follower_crash_t2(self, xpaxos_t2):
        schedule = FaultSchedule().crash_for(1_000.0, 1, 1_000.0)
        driver, checker = run_with_schedule(xpaxos_t2, schedule)
        checker.assert_safe()
        assert driver.throughput.total > 300

    def test_two_simultaneous_crashes_t2(self, xpaxos_t2):
        """t = 2 must survive two crash faults."""
        schedule = (FaultSchedule()
                    .crash_for(1_000.0, 0, 2_000.0)
                    .crash_for(1_000.0, 1, 2_000.0))
        driver, checker = run_with_schedule(xpaxos_t2, schedule,
                                            duration_ms=10_000.0)
        checker.assert_safe()
        assert driver.throughput.total > 200


class TestStateCarriesAcrossViews:
    def test_committed_state_survives_view_change(self):
        """Requests committed in view i must be visible after the change
        to view i+1 (Lemma 1 in action)."""
        from repro.smr.app import KVStore
        from repro.protocols.registry import build_cluster
        from repro.common.config import ClusterConfig

        config = ClusterConfig(t=1, protocol=ProtocolName.XPAXOS,
                               delta_ms=50.0, request_retransmit_ms=200.0,
                               view_change_timeout_ms=400.0,
                               batch_timeout_ms=2.0)
        runtime = build_cluster(config, num_clients=1,
                                app_factory=KVStore, seed=7)
        client = runtime.clients[0]
        results = []
        client.on_result = results.append

        client.propose(("put", "key", "v1"), size_bytes=32)
        runtime.sim.run(until=500.0)
        assert results == [None]

        # Force a view change by crashing the follower briefly.
        runtime.replica(1).crash()
        runtime.sim.call_at(1_500.0, runtime.replica(1).recover)
        runtime.sim.run(until=4_000.0)

        client.propose(("get", "key"), size_bytes=32)
        runtime.sim.run(until=8_000.0)
        assert results[-1] == "v1"


class TestViewChangeMechanics:
    def test_view_change_count_is_bounded(self, xpaxos_t1):
        """One crash must not cause unbounded view churn."""
        schedule = FaultSchedule().crash_for(1_000.0, 1, 500.0)
        run_with_schedule(xpaxos_t1, schedule)
        assert max(r.view for r in xpaxos_t1.replicas) <= 6

    def test_suspect_from_passive_replica_ignored(self, xpaxos_t1):
        """Only active replicas of a view may initiate its view change
        (Section 4.3.2)."""
        from repro.protocols.xpaxos import messages as msg

        passive = xpaxos_t1.replica(2)
        primary = xpaxos_t1.replica(0)
        sig = xpaxos_t1.keystore.sign(passive.principal,
                                      msg.suspect_payload(0, 2))
        primary.on_message("r2", msg.Suspect(0, 2, sig))
        xpaxos_t1.sim.run(until=500.0)
        assert primary.view == 0

    def test_forged_suspect_ignored(self, xpaxos_t1):
        from repro.protocols.xpaxos import messages as msg

        primary = xpaxos_t1.replica(0)
        forged = xpaxos_t1.keystore.forge_attempt(
            "r2", "r1", msg.suspect_payload(0, 1))
        primary.on_message("r2", msg.Suspect(0, 1, forged))
        xpaxos_t1.sim.run(until=500.0)
        assert primary.view == 0

    def test_valid_suspect_advances_view(self, xpaxos_t1):
        from repro.protocols.xpaxos import messages as msg

        follower = xpaxos_t1.replica(1)
        primary = xpaxos_t1.replica(0)
        sig = xpaxos_t1.keystore.sign(follower.principal,
                                      msg.suspect_payload(0, 1))
        primary.on_message("r1", msg.Suspect(0, 1, sig))
        xpaxos_t1.sim.run(until=2_000.0)
        assert primary.view >= 1
