"""Tests for passive-replica state retrieval (Section 4.5.2's "retrieve
the missing state from others") and view fast-forwarding."""

import pytest

from repro.protocols.xpaxos import messages as msg
from tests.conftest import make_cluster, run_workload


class TestFetchOnGap:
    def test_recovered_passive_replica_backfills_hole(self, xpaxos_t1):
        """Crash the passive replica mid-run: lazy commits sent while it is
        down are lost; on recovery the gap must be fetched and filled."""
        passive = xpaxos_t1.replica(2)
        # Let some traffic commit, crash the passive, let more commit,
        # recover, let more commit -- then check it executed everything.
        from repro.common.config import WorkloadConfig
        from repro.workloads.clients import ClosedLoopDriver

        driver = ClosedLoopDriver(
            xpaxos_t1,
            WorkloadConfig(num_clients=3, request_size=64,
                           duration_ms=6_000.0, warmup_ms=0.0))
        xpaxos_t1.sim.call_at(1_000.0, passive.crash)
        xpaxos_t1.sim.call_at(2_500.0, passive.recover)
        driver.run()
        primary = xpaxos_t1.replica(0)
        assert primary.committed_requests > 0
        # The passive replica caught up over the hole.
        assert passive.ex >= 0.95 * primary.ex

    def test_fetch_reply_carries_requested_entries(self, xpaxos_t1):
        run_workload(xpaxos_t1, duration_ms=1_000.0)
        primary = xpaxos_t1.replica(0)
        passive = xpaxos_t1.replica(2)
        end = primary.commit_log.end
        assert end >= 2
        primary._on_fetch("r2", msg.FetchEntries(1, end, 2))
        xpaxos_t1.sim.run(until=xpaxos_t1.sim.now + 100.0)
        # The reply is consumed by the passive replica transparently; its
        # log covers the range.
        for seqno in range(1, end + 1):
            assert passive.ex >= end or seqno in passive.commit_log

    def test_fetch_respects_checkpoint_floor(self):
        """Entries below the responder's checkpoint come back as the
        checkpoint itself."""
        runtime = make_cluster(checkpoint_period=10, num_clients=4)
        run_workload(runtime, duration_ms=2_000.0)
        primary = runtime.replica(0)
        assert primary.stable_checkpoint is not None
        floor = primary.commit_log.low_water
        collected = []
        original_send = primary.send_authenticated

        def spy(dst, payload, size_bytes=0):
            if isinstance(payload, msg.FetchReply):
                collected.append(payload)
            original_send(dst, payload, size_bytes=size_bytes)

        primary.send_authenticated = spy
        primary._on_fetch("r2", msg.FetchEntries(1, floor, 2))
        assert collected
        reply = collected[0]
        # Entries below the floor are gone; the checkpoint substitutes.
        assert all(e.seqno > floor for e in reply.entries)
        assert reply.checkpoint is not None
        assert reply.checkpoint.seqno >= floor

    def test_fetch_pending_flag_prevents_storms(self, xpaxos_t1):
        passive = xpaxos_t1.replica(2)
        sent = []
        original = passive.multicast_authenticated

        def spy(dsts, payload, size_bytes=0):
            if isinstance(payload, msg.FetchEntries):
                sent.extend(payload for _ in dsts)
            original(dsts, payload, size_bytes=size_bytes)

        passive.multicast_authenticated = spy
        passive._fetch_missing(1, 5)
        passive._fetch_missing(1, 5)
        passive._fetch_missing(1, 5)
        # One request per active replica, once.
        assert len(sent) == xpaxos_t1.config.t + 1 or \
            len(sent) == len(passive._active_names()) - (
                1 if passive.is_active else 0)

    def test_fetch_retry_allowed_after_window(self, xpaxos_t1):
        passive = xpaxos_t1.replica(2)
        passive._fetch_missing(1, 5)
        assert passive._fetch_pending
        xpaxos_t1.sim.run(
            until=xpaxos_t1.sim.now + 2 * xpaxos_t1.config.delta_ms + 1.0)
        assert not passive._fetch_pending


class TestViewFastForward:
    def test_lazy_commit_from_newer_view_advances_view(self, xpaxos_t1):
        from repro.smr.log import CommitEntry
        from repro.smr.messages import Batch, Request

        passive = xpaxos_t1.replica(0)  # passive in view 2
        batch = Batch((Request(op=1, timestamp=1, client=0),))
        sig = xpaxos_t1.keystore.sign("r1", ("e", 1))
        entry = CommitEntry(1, 2, batch, (sig,))
        passive._on_lazy_commit("r2", msg.LazyCommit(2, 1, entry))
        assert passive.view == 2

    def test_no_fast_forward_when_active_in_that_view(self, xpaxos_t1):
        """A replica that is ACTIVE in the newer view must go through the
        real view change, not silently jump."""
        from repro.smr.log import CommitEntry
        from repro.smr.messages import Batch, Request

        replica = xpaxos_t1.replica(0)  # active (primary) in view 1
        batch = Batch((Request(op=1, timestamp=1, client=0),))
        sig = xpaxos_t1.keystore.sign("r2", ("e", 1))
        entry = CommitEntry(1, 1, batch, (sig,))
        replica._on_lazy_commit("r2", msg.LazyCommit(1, 1, entry))
        assert replica.view == 0
