"""Byzantine behaviour in the common case: unforgeability holds the line.

The paper's adversary "cannot break cryptographic primitives" (Section 2);
these tests exercise the concrete consequences: forged commits are
rejected, equivocation cannot assemble valid proofs, and replayed
signatures from old views/slots do not advance state.
"""

import pytest

from repro.crypto.primitives import digest_of
from repro.protocols.xpaxos import messages as msg
from repro.smr.messages import Batch, Request
from tests.conftest import make_cluster, run_workload


def make_signed_request(runtime, client_id=0, timestamp=1, op="x"):
    body = (op, timestamp, client_id)
    sig = runtime.keystore.sign(f"c{client_id}", body)
    return Request(op=op, timestamp=timestamp, client=client_id,
                   size_bytes=8, signature=sig)


class TestForgedMessages:
    def test_forged_fast_prepare_rejected(self, xpaxos_t1):
        """A Byzantine passive replica impersonating the primary cannot
        make the follower execute anything."""
        follower = xpaxos_t1.replica(1)
        request = make_signed_request(xpaxos_t1)
        batch = Batch((request,))
        batch_digest = digest_of(tuple(r.rid for r in batch))
        forged_m0 = xpaxos_t1.keystore.forge_attempt(
            "r2", "r0", msg.commit0_payload(batch_digest, 1, 0))
        fake = msg.FastPrepare(0, 1, batch, batch_digest, forged_m0)
        # Delivered as if from the true primary's address is impossible in
        # our network (no spoofing), so the adversary can at best deliver
        # from itself -- rejected by the source check...
        follower.on_message("r2", fake)
        assert follower.committed_requests == 0
        # ...and even from the right source, the signature fails.
        follower.on_message("r0", fake)
        xpaxos_t1.sim.run(until=200.0)
        assert follower.committed_requests == 0

    def test_forged_fast_commit_rejected(self, xpaxos_t1):
        """A forged m1 cannot complete a slot at the primary."""
        primary = xpaxos_t1.replica(0)
        client = xpaxos_t1.clients[0]
        client.propose("op", size_bytes=8)
        xpaxos_t1.sim.run(until=5.0)  # primary prepared, follower not yet
        assert primary.prepare_log.end >= 1
        entry = primary.prepare_log.get(primary.prepare_log.end)
        batch_digest = digest_of(tuple(r.rid for r in entry.batch))
        forged_m1 = xpaxos_t1.keystore.forge_attempt(
            "r2", "r1", msg.commit1_payload(batch_digest, entry.seqno, 0,
                                            digest_of((b"",))))
        before = primary.committed_requests
        fake = msg.FastCommit(0, entry.seqno, batch_digest,
                              digest_of((b"",)), forged_m1)
        try:
            primary.on_message("r1", fake)
        except Exception:
            pass
        assert primary.committed_requests == before

    def test_forged_view_change_signature_detected(self, xpaxos_t1):
        """View-change messages carry signatures; content forged under a
        wrong key never enters VCSet as that sender."""
        replica = xpaxos_t1.replica(0)
        payload = msg.view_change_payload(1, 1, (), None, None)
        forged = xpaxos_t1.keystore.forge_attempt("r2", "r1", payload)
        fake = msg.ViewChange(new_view=1, sender=1, commit_entries=(),
                              checkpoint=None, sig=forged)
        # The replica is in view 0; a view-change for view 1 fast-forwards
        # it, but the forged message's content must not be trusted as r1's.
        replica.on_message("r2", fake)
        state = replica._vc.get(1)
        if state is not None:
            recorded = state.vcset.get(1)
            # If recorded at all, it must carry r1's *claimed* signature
            # that fails verification -- the FD/selection layers verify
            # proofs before using them, so assert the signature is invalid.
            if recorded is not None:
                assert not xpaxos_t1.keystore.verify(
                    recorded.sig, payload)


class TestReplayAttacks:
    def test_replayed_commit_from_old_slot_ignored(self, xpaxos_t1):
        """Replaying a valid old FastCommit cannot re-commit or corrupt a
        newer slot (sequence and digest binding)."""
        run_workload(xpaxos_t1, duration_ms=500.0)
        # Quiesce: let all in-flight traffic finish before measuring.
        xpaxos_t1.sim.run(until=xpaxos_t1.sim.now + 1_000.0)
        primary = xpaxos_t1.replica(0)
        follower = xpaxos_t1.replica(1)
        old_entry = follower.commit_log.get(follower.commit_log.end)
        assert old_entry is not None
        m0, m1 = old_entry.proof
        batch_digest = msg.batch_digest_of(old_entry.batch)
        replay = msg.FastCommit(0, old_entry.seqno + 100, batch_digest,
                                digest_of((b"",)), m1)
        before_ex = primary.ex
        primary.on_message("r1", replay)
        xpaxos_t1.sim.run(until=xpaxos_t1.sim.now + 100.0)
        assert primary.ex == before_ex

    def test_duplicate_client_request_single_execution(self, xpaxos_t1):
        """Replaying a signed client request yields one execution and a
        cached reply (at-most-once semantics)."""
        primary = xpaxos_t1.replica(0)
        request = make_signed_request(xpaxos_t1)
        for _ in range(5):
            primary.on_message("c0", msg.Replicate(request))
        xpaxos_t1.sim.run(until=500.0)
        executions = [rid for _, rid in primary.execution_trace
                      if rid == request.rid]
        assert len(executions) == 1


class TestEquivocationLimits:
    def test_two_conflicting_batches_cannot_both_gather_proofs(self):
        """At t >= 2, a Byzantine primary sending different batches to
        different followers cannot commit either unless ALL followers vote
        for the same digest -- so no two conflicting slots both commit."""
        runtime = make_cluster(t=2, num_clients=1)
        primary = runtime.replica(0)
        follower_a = runtime.replica(1)
        follower_b = runtime.replica(2)

        request_a = make_signed_request(runtime, client_id=0, op="a")
        request_b = make_signed_request(runtime, client_id=0, op="b",
                                        timestamp=1)
        batch_a = Batch((request_a,))
        batch_b = Batch((request_b,))
        digest_a = digest_of(tuple(r.rid for r in batch_a))
        digest_b = digest_of(tuple(r.rid for r in batch_b))

        # The Byzantine primary signs BOTH (it owns its key).
        sig_a = runtime.keystore.sign("r0",
                                      msg.prepare_payload(digest_a, 1, 0))
        sig_b = runtime.keystore.sign("r0",
                                      msg.prepare_payload(digest_b, 1, 0))
        follower_a.on_message("r0", msg.Prepare(0, 1, batch_a, digest_a,
                                                sig_a))
        follower_b.on_message("r0", msg.Prepare(0, 1, batch_b, digest_b,
                                                sig_b))
        runtime.sim.run(until=1_000.0)

        # Neither follower can commit: each needs the OTHER follower's
        # commit vote on its own digest, which never comes.
        assert follower_a.committed_requests == 0
        assert follower_b.committed_requests == 0

    def test_client_rejects_mismatched_reply_digest(self, xpaxos_t1):
        """A faulty primary returning a corrupted result cannot convince
        the client: the embedded m1 covers the follower's reply digest.

        The primary owns its channel key, so it can stamp a perfectly
        valid transport MAC on the corrupted reply -- the content checks
        are what must hold the line."""
        client = xpaxos_t1.clients[0]
        results = []
        client.on_result = results.append
        client.propose("op", size_bytes=8)
        xpaxos_t1.sim.run(until=300.0)
        assert len(results) == 1  # sanity: the honest flow works

        # Second request in flight; answer it with a corrupted result
        # (digest kept from the honest reply) under a valid channel MAC.
        primary = xpaxos_t1.replica(0)
        cached = primary._last_reply[0]
        request = client.propose("op2", size_bytes=8)
        tampered = msg.ReplyMsg(
            replica=0, view=cached.view, seqno=cached.seqno + 1,
            timestamp=request.timestamp, client=0,
            result=b"corrupted", result_digest=cached.result_digest,
            follower_commit=cached.follower_commit)
        mac = xpaxos_t1.keystore.mac("r0", "c0", tampered)
        count_before = len(results)
        client._on_deliver_auth("r0", tampered, mac, 64)
        assert len(results) == count_before  # not accepted
