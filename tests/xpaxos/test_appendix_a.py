"""The Appendix A example execution (Figure 11).

The scenario: requests r0..r2 are committed (partially) in view i; a network
fault at the follower activates a view change to i+1; a new request r3
commits in i+1; then the primary s0 suffers a non-crash (data-loss) fault
and the view changes to i+2.

* Without FD (Figure 11a): the committed requests survive into view i+2 via
  the correct replicas' commit logs -- consistency holds outside anarchy.
* With FD (Figure 11b): s0's data-loss fault is *detected* during the view
  change to i+2.
"""

import pytest

from repro.common.config import ClusterConfig, ProtocolName
from repro.faults.adversary import DataLossAdversary
from repro.protocols.registry import build_cluster
from repro.smr.app import KVStore


def scripted_cluster(use_fd):
    config = ClusterConfig(
        t=1, protocol=ProtocolName.XPAXOS, delta_ms=50.0,
        request_retransmit_ms=250.0, view_change_timeout_ms=500.0,
        batch_timeout_ms=1.0, batch_size=1,
        use_fault_detection=use_fd)
    return build_cluster(config, num_clients=4, app_factory=KVStore,
                         seed=13)


def propose_and_wait(runtime, client_index, op, until_ms):
    client = runtime.clients[client_index]
    results = []
    client.on_result = results.append
    client.propose(op, size_bytes=32)
    runtime.sim.run(until=until_ms)
    return results


class TestFigure11:
    @pytest.mark.parametrize("use_fd", [False, True])
    def test_committed_requests_survive_two_view_changes(self, use_fd):
        runtime = scripted_cluster(use_fd)
        sim = runtime.sim

        # View i: commit three requests.
        assert propose_and_wait(runtime, 0, ("put", "r0", 0), 300.0)
        assert propose_and_wait(runtime, 1, ("put", "r1", 1), 600.0)
        assert propose_and_wait(runtime, 2, ("put", "r2", 2), 900.0)

        # Network fault at the follower: view change to i+1 (group s0,s2).
        runtime.network.partitions.block_pair("r0", "r1")
        runtime.replica(0).suspect_view(0)
        sim.run(until=2_000.0)
        assert runtime.replica(0).view >= 1

        # View i+1: commit r3.
        assert propose_and_wait(runtime, 3, ("put", "r3", 3), 3_000.0)

        # Heal, then s0 becomes non-crash-faulty (data loss) and the view
        # changes to i+2 (group s1,s2).
        runtime.network.partitions.heal_all()
        runtime.replica(0).byzantine = DataLossAdversary(keep_upto=1)
        current = runtime.replica(2).view
        runtime.replica(0).suspect_view(current)
        sim.run(until=6_000.0)
        final_view = runtime.replica(2).view
        assert final_view > current

        # Outside anarchy every committed request must survive into the
        # new view: read them all back through the new group.
        for key, expected in (("r0", 0), ("r1", 1), ("r2", 2), ("r3", 3)):
            results = propose_and_wait(
                runtime, 0, ("get", key), sim.now + 2_000.0)
            assert results, f"read of {key} did not commit"
            assert results[-1] == expected, (
                f"{key} lost across view changes")

    def test_fd_detects_s0_data_loss(self):
        runtime = scripted_cluster(use_fd=True)
        sim = runtime.sim

        assert propose_and_wait(runtime, 0, ("put", "r0", 0), 300.0)
        assert propose_and_wait(runtime, 1, ("put", "r1", 1), 600.0)
        assert propose_and_wait(runtime, 2, ("put", "r2", 2), 900.0)

        # Data-loss fault at the primary, then a view change it must
        # survive: with FD the fault is detected during the view change.
        runtime.replica(0).byzantine = DataLossAdversary(keep_upto=0)
        runtime.replica(1).suspect_view(0)
        sim.run(until=4_000.0)

        assert any(0 in runtime.replica(i).detected_faulty
                   for i in (1, 2)), "s0's data loss went undetected"

    def test_without_fd_data_loss_is_silent_but_consistent(self):
        """Figure 11a: without FD nothing is detected, yet outside anarchy
        the requests still survive via the correct replicas' logs."""
        runtime = scripted_cluster(use_fd=False)
        sim = runtime.sim

        assert propose_and_wait(runtime, 0, ("put", "r0", 0), 300.0)
        assert propose_and_wait(runtime, 1, ("put", "r1", 1), 600.0)

        runtime.replica(0).byzantine = DataLossAdversary(keep_upto=0)
        runtime.replica(1).suspect_view(0)
        sim.run(until=4_000.0)

        assert all(not r.detected_faulty for r in runtime.replicas)
        results = propose_and_wait(runtime, 2, ("get", "r1"),
                                   sim.now + 2_000.0)
        assert results and results[-1] == 1
