"""Fault detection at t = 2 (the general-case FD path).

At t >= 2 every active replica maintains a prepare log, so the state-loss
obligation applies to all of them -- a different code path than the t = 1
primary-only rule.
"""

import pytest

from repro.common.config import ClusterConfig, ProtocolName, WorkloadConfig
from repro.faults.adversary import DataLossAdversary
from repro.protocols.registry import build_cluster
from repro.workloads.clients import ClosedLoopDriver


def fd_cluster_t2(seed=21):
    config = ClusterConfig(
        t=2, protocol=ProtocolName.XPAXOS, delta_ms=50.0,
        request_retransmit_ms=300.0, view_change_timeout_ms=600.0,
        batch_timeout_ms=2.0, use_fault_detection=True)
    return build_cluster(config, num_clients=3, seed=seed)


def drive(runtime, duration_ms=8_000.0):
    driver = ClosedLoopDriver(
        runtime, WorkloadConfig(num_clients=3, request_size=64,
                                duration_ms=duration_ms, warmup_ms=100.0))
    driver.run()
    return driver


class TestT2Detection:
    def test_data_loss_primary_detected(self):
        runtime = fd_cluster_t2()
        runtime.replica(0).byzantine = DataLossAdversary(keep_upto=1)
        runtime.sim.call_at(
            2_000.0,
            lambda: runtime.replica(1).suspect_view(
                runtime.replica(1).view))
        drive(runtime)
        detectors = [r.replica_id for r in runtime.replicas
                     if 0 in r.detected_faulty]
        assert detectors, "no replica detected the faulty primary"

    def test_data_loss_follower_detected(self):
        """At t = 2 followers log prepares too, so a follower that loses
        its logs is equally convictable."""
        runtime = fd_cluster_t2(seed=22)
        runtime.replica(1).byzantine = DataLossAdversary(keep_upto=1)
        runtime.sim.call_at(
            2_000.0,
            lambda: runtime.replica(0).suspect_view(
                runtime.replica(0).view))
        drive(runtime)
        detectors = [r.replica_id for r in runtime.replicas
                     if 1 in r.detected_faulty]
        assert detectors, "no replica detected the faulty follower"

    def test_benign_t2_view_change_clean(self):
        runtime = fd_cluster_t2(seed=23)
        runtime.sim.call_at(
            2_000.0,
            lambda: runtime.replica(0).suspect_view(
                runtime.replica(0).view))
        driver = drive(runtime)
        assert driver.throughput.total > 200
        assert all(not r.detected_faulty for r in runtime.replicas)

    def test_progress_with_fd_and_crash_t2(self):
        from repro.faults.injector import FaultInjector, FaultSchedule
        from repro.faults.checker import SafetyChecker

        runtime = fd_cluster_t2(seed=24)
        FaultInjector(runtime).arm(
            FaultSchedule().crash_for(2_000.0, 1, 1_000.0))
        checker = SafetyChecker(runtime)
        driver = drive(runtime, duration_ms=10_000.0)
        checker.assert_safe()
        assert driver.throughput.total > 300
        assert all(not r.detected_faulty for r in runtime.replicas)
