"""Tests for synchronous-group selection (Section 4.3.1, Table 2)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ConfigurationError
from repro.protocols.xpaxos.groups import SynchronousGroups


class TestTable2:
    """The t = 1 rotation must reproduce the paper's Table 2 exactly."""

    def test_view_i(self):
        groups = SynchronousGroups(n=3, t=1)
        assert groups.primary(0) == 0
        assert groups.followers(0) == (1,)
        assert groups.passive(0) == (2,)

    def test_view_i_plus_1(self):
        groups = SynchronousGroups(n=3, t=1)
        assert groups.primary(1) == 0
        assert groups.followers(1) == (2,)
        assert groups.passive(1) == (1,)

    def test_view_i_plus_2(self):
        groups = SynchronousGroups(n=3, t=1)
        assert groups.primary(2) == 1
        assert groups.followers(2) == (2,)
        assert groups.passive(2) == (0,)

    def test_cycle_repeats(self):
        groups = SynchronousGroups(n=3, t=1)
        for view in range(12):
            assert groups.group(view) == groups.group(view + 3)


class TestGeneral:
    def test_group_count_is_binomial(self):
        for t in (1, 2, 3):
            groups = SynchronousGroups(n=2 * t + 1, t=t)
            assert groups.group_count == math.comb(2 * t + 1, t + 1)

    def test_invalid_n_rejected(self):
        with pytest.raises(ConfigurationError):
            SynchronousGroups(n=4, t=1)

    def test_negative_view_rejected(self):
        with pytest.raises(ValueError):
            SynchronousGroups(n=3, t=1).group(-1)

    @given(st.integers(min_value=1, max_value=4),
           st.integers(min_value=0, max_value=100))
    def test_partition_into_active_passive(self, t, view):
        groups = SynchronousGroups(n=2 * t + 1, t=t)
        active = set(groups.group(view))
        passive = set(groups.passive(view))
        assert len(active) == t + 1
        assert len(passive) == t
        assert active | passive == set(range(2 * t + 1))
        assert not active & passive

    @given(st.integers(min_value=1, max_value=3),
           st.integers(min_value=0, max_value=50))
    def test_primary_is_in_group(self, t, view):
        groups = SynchronousGroups(n=2 * t + 1, t=t)
        assert groups.primary(view) in groups.group(view)
        assert groups.is_primary(view, groups.primary(view))

    def test_every_combination_appears_within_one_cycle(self):
        """Availability (Section 4.6) needs every t+1 subset to get a turn."""
        t = 2
        groups = SynchronousGroups(n=5, t=t)
        seen = {groups.group(v) for v in range(groups.group_count)}
        assert len(seen) == groups.group_count

    def test_every_replica_is_eventually_passive(self):
        groups = SynchronousGroups(n=3, t=1)
        passives = {groups.passive(v)[0] for v in range(3)}
        assert passives == {0, 1, 2}

    def test_next_view_with_group(self):
        groups = SynchronousGroups(n=3, t=1)
        # Group (1, 2) is at view index 2 within each cycle of 3.
        assert groups.next_view_with_group(0, (1, 2)) == 2
        assert groups.next_view_with_group(2, (1, 2)) == 5
        assert groups.next_view_with_group(4, (2, 1)) == 5

    def test_next_view_with_invalid_group_rejected(self):
        groups = SynchronousGroups(n=3, t=1)
        with pytest.raises(ValueError):
            groups.next_view_with_group(0, (0, 1, 2))
