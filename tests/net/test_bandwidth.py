"""Tests for the uplink bandwidth model."""

import pytest

from repro.net.bandwidth import BandwidthModel


class TestSerialization:
    def test_departure_time_scales_with_size(self):
        bw = BandwidthModel(default_rate=1000.0)  # 1000 bytes/ms
        assert bw.serialize("n", 500, now=0.0) == pytest.approx(0.5)

    def test_zero_size_departs_immediately(self):
        bw = BandwidthModel(default_rate=1000.0)
        assert bw.serialize("n", 0, now=5.0) == 5.0

    def test_queueing_behind_previous_message(self):
        bw = BandwidthModel(default_rate=1000.0)
        first = bw.serialize("n", 1000, now=0.0)   # departs at 1.0
        second = bw.serialize("n", 1000, now=0.0)  # queues behind
        assert first == pytest.approx(1.0)
        assert second == pytest.approx(2.0)

    def test_idle_uplink_does_not_queue(self):
        bw = BandwidthModel(default_rate=1000.0)
        bw.serialize("n", 1000, now=0.0)
        late = bw.serialize("n", 1000, now=10.0)
        assert late == pytest.approx(11.0)

    def test_per_node_isolation(self):
        bw = BandwidthModel(default_rate=1000.0)
        bw.serialize("a", 100_000, now=0.0)
        assert bw.serialize("b", 1000, now=0.0) == pytest.approx(1.0)

    def test_negative_size_rejected(self):
        bw = BandwidthModel()
        with pytest.raises(ValueError):
            bw.serialize("n", -1, now=0.0)


class TestRates:
    def test_heterogeneous_rates(self):
        bw = BandwidthModel(default_rate=1000.0)
        bw.set_rate("slow", 100.0)
        assert bw.serialize("slow", 1000, now=0.0) == pytest.approx(10.0)
        assert bw.serialize("fast", 1000, now=0.0) == pytest.approx(1.0)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            BandwidthModel(default_rate=0.0)
        bw = BandwidthModel()
        with pytest.raises(ValueError):
            bw.set_rate("n", -5.0)


class TestAccounting:
    def test_bytes_sent_accumulates(self):
        bw = BandwidthModel()
        bw.serialize("n", 100, now=0.0)
        bw.serialize("n", 200, now=0.0)
        assert bw.bytes_sent("n") == 300

    def test_backlog(self):
        bw = BandwidthModel(default_rate=100.0)
        bw.serialize("n", 1000, now=0.0)  # busy until t=10
        assert bw.backlog_ms("n", now=4.0) == pytest.approx(6.0)
        assert bw.backlog_ms("n", now=20.0) == 0.0

    def test_reset_clears_counters(self):
        bw = BandwidthModel()
        bw.serialize("n", 100, now=0.0)
        bw.reset()
        assert bw.bytes_sent("n") == 0

    def test_reset_clears_booked_uplink_time(self):
        # Regression: reset() used to leave free_at booked, so post-warmup
        # sends inherited the warmup backlog.
        bw = BandwidthModel(default_rate=100.0)
        bw.serialize("n", 10_000, now=0.0)  # uplink busy until t=100
        assert bw.backlog_ms("n", now=0.0) == pytest.approx(100.0)
        bw.reset()
        assert bw.backlog_ms("n", now=0.0) == 0.0
        # A fresh send right after reset departs with no inherited queueing.
        assert bw.serialize("n", 100, now=0.0) == pytest.approx(1.0)
