"""Tests for the message-delivery fabric."""

import pytest

from repro.common.errors import ConfigurationError
from repro.net.bandwidth import BandwidthModel
from repro.net.latency import LatencyModel
from repro.net.network import Endpoint, Network
from repro.sim.core import Simulator


def make_net(fifo=False, bandwidth=None, sites=("X", "Y")):
    sim = Simulator()
    latency = LatencyModel.uniform(sites, one_way_ms=5.0)
    net = Network(sim, latency, bandwidth=bandwidth, fifo=fifo)
    return sim, net


class _Node:
    def __init__(self, net, name, site):
        self.inbox = []
        self.up = True
        net.attach(Endpoint(name, site,
                            lambda src, p: self.inbox.append((src, p)),
                            lambda: self.up))


class TestDelivery:
    def test_message_delivered_with_latency(self):
        sim, net = make_net()
        a = _Node(net, "a", "X")
        b = _Node(net, "b", "Y")
        net.send("a", "b", "hello")
        sim.run()
        assert b.inbox == [("a", "hello")]
        assert sim.now == 5.0

    def test_intra_site_latency(self):
        sim, net = make_net()
        a = _Node(net, "a", "X")
        b = _Node(net, "b", "X")
        net.send("a", "b", "m")
        sim.run()
        assert sim.now == net.latency.intra_site_ms

    def test_broadcast(self):
        sim, net = make_net()
        a = _Node(net, "a", "X")
        b = _Node(net, "b", "Y")
        c = _Node(net, "c", "Y")
        net.broadcast("a", ["b", "c"], "m")
        sim.run()
        assert b.inbox and c.inbox

    def test_duplicate_endpoint_rejected(self):
        _, net = make_net()
        _Node(net, "a", "X")
        with pytest.raises(ConfigurationError):
            _Node(net, "a", "X")

    def test_unknown_endpoint_rejected(self):
        _, net = make_net()
        _Node(net, "a", "X")
        with pytest.raises(ConfigurationError):
            net.send("a", "ghost", "m")


class TestFaults:
    def test_partitioned_pair_drops(self):
        sim, net = make_net()
        a = _Node(net, "a", "X")
        b = _Node(net, "b", "Y")
        net.partitions.block_pair("a", "b")
        net.send("a", "b", "m")
        sim.run()
        assert b.inbox == []
        assert net.stats.messages_dropped_partition == 1

    def test_crashed_receiver_drops_at_delivery(self):
        sim, net = make_net()
        a = _Node(net, "a", "X")
        b = _Node(net, "b", "Y")
        net.send("a", "b", "m")
        sim.call_at(1.0, lambda: setattr(b, "up", False))
        sim.run()
        assert b.inbox == []
        assert net.stats.messages_dropped_crash == 1

    def test_crashed_sender_cannot_send(self):
        sim, net = make_net()
        a = _Node(net, "a", "X")
        b = _Node(net, "b", "Y")
        a.up = False
        net.send("a", "b", "m")
        sim.run()
        assert b.inbox == []

    def test_receiver_up_again_after_drop_window(self):
        sim, net = make_net()
        a = _Node(net, "a", "X")
        b = _Node(net, "b", "Y")
        b.up = False
        net.send("a", "b", "lost")
        sim.run()
        b.up = True
        net.send("a", "b", "received")
        sim.run()
        assert b.inbox == [("a", "received")]

    def test_send_filter_censors(self):
        sim, net = make_net()
        a = _Node(net, "a", "X")
        b = _Node(net, "b", "Y")
        net.send_filter = lambda src, dst, payload: payload != "censored"
        net.send("a", "b", "censored")
        net.send("a", "b", "ok")
        sim.run()
        assert b.inbox == [("a", "ok")]


class TestFifoMode:
    def test_fifo_preserves_per_pair_order(self):
        sim = Simulator()
        latency = LatencyModel.uniform(["X", "Y"], one_way_ms=5.0,
                                       jitter=3.0, seed=1)
        latency.deterministic = False
        net = Network(sim, latency, fifo=True)
        a = _Node(net, "a", "X")
        b = _Node(net, "b", "Y")
        for i in range(20):
            net.send("a", "b", i)
        sim.run()
        assert [p for _, p in b.inbox] == list(range(20))


class TestBandwidthIntegration:
    def test_inter_site_charged_intra_site_free(self):
        bw = BandwidthModel(default_rate=1000.0)
        sim, net = make_net(bandwidth=bw)
        a = _Node(net, "a", "X")
        b = _Node(net, "b", "Y")
        c = _Node(net, "c", "X")
        net.send("a", "b", "wan", size_bytes=10_000)  # 10 ms serialization
        net.send("a", "c", "lan", size_bytes=10_000)  # free intra-site
        sim.run()
        assert bw.bytes_sent("a") == 10_000

    def test_uplink_delays_departure(self):
        bw = BandwidthModel(default_rate=1000.0)
        sim, net = make_net(bandwidth=bw)
        a = _Node(net, "a", "X")
        b = _Node(net, "b", "Y")
        net.send("a", "b", "m", size_bytes=10_000)
        sim.run()
        # 10 ms serialization + 5 ms propagation.
        assert sim.now == pytest.approx(15.0)


class TestTimely:
    def test_timely_respects_partition(self):
        _, net = make_net()
        _Node(net, "a", "X")
        _Node(net, "b", "Y")
        assert net.timely("a", "b", delta_ms=10.0)
        net.partitions.block_pair("a", "b")
        assert not net.timely("a", "b", delta_ms=10.0)

    def test_timely_respects_delta(self):
        _, net = make_net()
        _Node(net, "a", "X")
        _Node(net, "b", "Y")
        assert not net.timely("a", "b", delta_ms=1.0)  # mean one-way is 5

    def test_timely_false_for_crashed(self):
        _, net = make_net()
        a = _Node(net, "a", "X")
        _Node(net, "b", "Y")
        a.up = False
        assert not net.timely("a", "b", delta_ms=100.0)
