"""Tests for the authenticated multicast path: per-receiver MACs stamped
at delivery fan-out time, with authenticator bytes in the size accounting.
"""

import pytest

from repro.crypto.authenticators import MAC_VECTOR, MODELED_MAC, NULL
from repro.crypto.primitives import KeyStore, Mac
from repro.net.bandwidth import BandwidthModel
from repro.net.latency import LatencyModel
from repro.net.network import Endpoint, Network
from repro.sim.core import Simulator


def make_net(fifo=False, bandwidth=False, jitter=0.0, seed=7):
    sim = Simulator()
    latency = LatencyModel.uniform(("X", "Y", "Z"), one_way_ms=5.0,
                                   jitter=jitter, seed=seed)
    if jitter:
        latency.deterministic = False
    bw = BandwidthModel(default_rate=1000.0) if bandwidth else None
    return sim, Network(sim, latency, bandwidth=bw, fifo=fifo)


class _AuthNode:
    """A sink endpoint recording authenticated deliveries."""

    def __init__(self, net, name, site):
        self.inbox = []
        self.auth_inbox = []
        self.up = True
        net.attach(Endpoint(
            name, site,
            lambda src, p: self.inbox.append((src, p)),
            lambda: self.up,
            deliver_auth=lambda src, body, auth, size:
                self.auth_inbox.append((src, body, auth, size))))


class _PlainNode:
    """An endpoint without an authenticated-delivery callback."""

    def __init__(self, net, name, site):
        self.inbox = []
        net.attach(Endpoint(name, site,
                            lambda src, p: self.inbox.append((src, p)),
                            lambda: True))


def build(**kwargs):
    sim, net = make_net(**kwargs)
    nodes = {
        "a": _AuthNode(net, "a", "X"),
        "b": _AuthNode(net, "b", "Y"),
        "c": _AuthNode(net, "c", "Y"),
        "d": _AuthNode(net, "d", "Z"),
    }
    return sim, net, nodes


class TestMacStamping:
    def test_each_receiver_gets_its_own_valid_mac(self):
        sim, net, nodes = build()
        keystore = KeyStore()
        body = ("prechk", 8, 0)
        net.multicast_authenticated("a", ["b", "c", "d"], body,
                                    size_bytes=44,
                                    authenticator=MAC_VECTOR,
                                    keystore=keystore)
        sim.run()
        macs = {}
        for name in ("b", "c", "d"):
            ((src, got, auth, size),) = nodes[name].auth_inbox
            assert src == "a" and got == body
            assert size == 44 + MAC_VECTOR.auth_bytes
            assert isinstance(auth, Mac)
            assert auth.sender == "a" and auth.receiver == name
            assert keystore.verify_mac(auth, body)
            macs[name] = auth
        # Channel-bound: the three MACs are all distinct.
        assert len({m._token for m in macs.values()}) == 3

    def test_payload_object_is_shared_not_copied(self):
        sim, net, nodes = build()
        body = ("big", b"x" * 64)
        net.multicast_authenticated("a", ["b", "c"], body,
                                    authenticator=NULL,
                                    keystore=KeyStore())
        sim.run()
        got_b = nodes["b"].auth_inbox[0][1]
        got_c = nodes["c"].auth_inbox[0][1]
        assert got_b is body and got_c is body

    def test_endpoint_without_auth_callback_gets_bare_body(self):
        sim, net = make_net()
        plain = _PlainNode(net, "p", "X")
        _AuthNode(net, "a", "X")
        net.multicast_authenticated("a", ["p"], "m",
                                    authenticator=MAC_VECTOR,
                                    keystore=KeyStore())
        sim.run()
        assert plain.inbox == [("a", "m")]


class TestAccounting:
    def test_bytes_include_authenticator_per_receiver(self):
        _, net, _ = build()
        net.multicast_authenticated("a", ["b", "c", "d"], "m",
                                    size_bytes=100,
                                    authenticator=MODELED_MAC,
                                    keystore=KeyStore())
        assert net.stats.bytes_sent == 3 * (100 + MODELED_MAC.auth_bytes)

    def test_null_policy_adds_no_bytes(self):
        _, net, _ = build()
        net.multicast_authenticated("a", ["b", "c"], "m", size_bytes=100,
                                    authenticator=NULL,
                                    keystore=KeyStore())
        assert net.stats.bytes_sent == 200

    def test_uplink_serializes_wire_bytes(self):
        # 980 + 20 MAC bytes = 1000 on the wire: exactly 1 ms at
        # 1000 B/ms, so two inter-site receivers give a 2 ms backlog.
        sim, net, _ = build(bandwidth=True)
        net.multicast_authenticated("a", ["b", "d"], "m", size_bytes=980,
                                    authenticator=MAC_VECTOR,
                                    keystore=KeyStore())
        assert net.bandwidth.backlog_ms("a", sim.now) == pytest.approx(2.0)


class TestDropSemantics:
    def test_partition_and_crash_drops_match_multicast(self):
        sim, net, nodes = build()
        net.partitions.block_pair("a", "c")
        nodes["d"].up = False
        net.multicast_authenticated("a", ["b", "c", "d"], "m",
                                    authenticator=MAC_VECTOR,
                                    keystore=KeyStore())
        sim.run()
        assert net.stats.messages_sent == 3
        assert net.stats.messages_dropped_partition == 1
        assert net.stats.messages_dropped_crash == 1
        assert net.stats.messages_delivered == 1
        assert len(nodes["b"].auth_inbox) == 1

    def test_crashed_sender_stamps_nothing(self):
        sim, net, nodes = build()
        nodes["a"].up = False
        net.multicast_authenticated("a", ["b", "c"], "m",
                                    authenticator=MAC_VECTOR,
                                    keystore=KeyStore())
        sim.run()
        assert net.stats.messages_dropped_crash == 2
        assert not nodes["b"].auth_inbox and not nodes["c"].auth_inbox

    def test_send_filter_probed_per_destination(self):
        sim, net, nodes = build()
        net.send_filter = lambda src, dst, payload: dst != "c"
        net.multicast_authenticated("a", ["b", "c", "d"], "m",
                                    authenticator=MAC_VECTOR,
                                    keystore=KeyStore())
        sim.run()
        assert not nodes["c"].auth_inbox
        assert nodes["b"].auth_inbox and nodes["d"].auth_inbox


class TestDeliveryScheduleEquivalence:
    def test_same_latency_draws_as_plain_multicast(self):
        """The authenticated path consumes latency samples in the same
        per-destination order as plain multicast: with equal seeds the
        delivery schedule is identical."""

        def run(authenticated):
            sim, net, nodes = build(jitter=3.0)
            order = []
            for node in nodes.values():
                node.inbox = order
                node.auth_inbox = order
            for round_no in range(20):
                if authenticated:
                    net.multicast_authenticated(
                        "a", ["b", "c", "d"], ("m", round_no),
                        size_bytes=64, authenticator=NULL,
                        keystore=KeyStore())
                else:
                    net.multicast("a", ["b", "c", "d"], ("m", round_no),
                                  size_bytes=64)
            sim.run()
            return [(src, body) if len(rest) == 0 else (src, body)
                    for src, body, *rest in order], sim.now

        plain = run(authenticated=False)
        authed = run(authenticated=True)
        assert authed == plain


class TestNodeRuntimeVerification:
    def _cluster(self):
        from tests.conftest import make_cluster

        return make_cluster()

    def test_forged_delivery_counted_and_dropped(self):
        from repro.protocols.xpaxos import messages as msg

        runtime = self._cluster()
        r1 = runtime.replica(1)
        prechk = msg.PreChk(seqno=64, view=0, state_digest=b"s" * 32,
                            sender=0)
        received = r1.messages_received
        r1._on_deliver_auth("r0", prechk,
                            runtime.keystore.mac("r0", "r1", "not-it"), 64)
        assert r1.auth_failures == 1
        assert r1.messages_received == received + 1
        assert 64 not in r1._prechk_votes
