"""Tests for the network's multicast fast path.

The contract: ``multicast(src, dsts, p)`` is observationally identical to
``for dst in dsts: send(src, dst, p)`` -- same delivery order, same stats,
same RNG draw order -- it just amortizes the sender-side bookkeeping.
"""

import pytest

from repro.common.errors import ConfigurationError
from repro.net.bandwidth import BandwidthModel
from repro.net.latency import LatencyModel
from repro.net.network import Endpoint, Network
from repro.sim.core import Simulator


def make_net(fifo=False, bandwidth=False, jitter=0.0, seed=7):
    sim = Simulator()
    latency = LatencyModel.uniform(("X", "Y", "Z"), one_way_ms=5.0,
                                   jitter=jitter, seed=seed)
    if jitter:
        latency.deterministic = False
    bw = BandwidthModel(default_rate=1000.0) if bandwidth else None
    net = Network(sim, latency, bandwidth=bw, fifo=fifo)
    return sim, net


class _Node:
    def __init__(self, net, name, site):
        self.inbox = []
        self.up = True
        net.attach(Endpoint(name, site,
                            lambda src, p: self.inbox.append((src, p)),
                            lambda: self.up))


def build(fifo=False, bandwidth=False, jitter=0.0, seed=7):
    sim, net = make_net(fifo=fifo, bandwidth=bandwidth, jitter=jitter,
                        seed=seed)
    nodes = {
        "a": _Node(net, "a", "X"),
        "b": _Node(net, "b", "Y"),
        "c": _Node(net, "c", "Y"),
        "d": _Node(net, "d", "Z"),
    }
    return sim, net, nodes


def stats_tuple(net):
    s = net.stats
    return (s.messages_sent, s.messages_delivered,
            s.messages_dropped_partition, s.messages_dropped_crash,
            s.bytes_sent)


class TestEquivalence:
    def test_matches_sequential_sends_fifo_on(self):
        # Same seed, jittered latency, FIFO on: multicast must produce the
        # exact delivery schedule and stats of n sequential sends.
        trace_seq = self._run(sequential=True)
        trace_multi = self._run(sequential=False)
        assert trace_multi == trace_seq

    def _run(self, sequential):
        sim, net, nodes = build(fifo=True, bandwidth=True, jitter=2.0)
        dsts = ["b", "c", "d"]
        log = []
        for name, node in nodes.items():
            node.inbox = log  # shared log records global delivery order
        for round_no in range(20):
            if sequential:
                for dst in dsts:
                    net.send("a", dst, ("batch", round_no), size_bytes=512)
            else:
                net.multicast("a", dsts, ("batch", round_no), size_bytes=512)
        sim.run()
        return log, stats_tuple(net), sim.now

    def test_matches_sequential_sends_fifo_off(self):
        def run(sequential):
            sim, net, nodes = build(fifo=False, jitter=3.0)
            order = []
            for node in nodes.values():
                node.inbox = order
            payload = "m"
            if sequential:
                for dst in ("b", "c", "d"):
                    net.send("a", dst, payload, size_bytes=64)
            else:
                net.multicast("a", ("b", "c", "d"), payload, size_bytes=64)
            sim.run()
            return order, stats_tuple(net), sim.now

        assert run(True) == run(False)


class TestDropAccounting:
    def test_partitioned_destination_counted_per_message(self):
        sim, net, nodes = build()
        net.partitions.block_pair("a", "c")
        net.multicast("a", ["b", "c", "d"], "m")
        sim.run()
        assert net.stats.messages_sent == 3
        assert net.stats.messages_dropped_partition == 1
        assert net.stats.messages_delivered == 2
        assert nodes["c"].inbox == []

    def test_crashed_sender_drops_all(self):
        sim, net, nodes = build()
        nodes["a"].up = False
        net.multicast("a", ["b", "c", "d"], "m")
        sim.run()
        assert net.stats.messages_sent == 3
        assert net.stats.messages_dropped_crash == 3
        assert net.stats.messages_delivered == 0

    def test_send_filter_probed_per_destination(self):
        sim, net, nodes = build()
        censored = []
        net.send_filter = (
            lambda src, dst, payload: censored.append(dst) or dst != "c")
        net.multicast("a", ["b", "c", "d"], "m")
        sim.run()
        assert censored == ["b", "c", "d"]
        assert net.stats.messages_dropped_partition == 1
        assert nodes["c"].inbox == []
        assert nodes["b"].inbox and nodes["d"].inbox

    def test_crashed_receiver_drops_at_delivery(self):
        sim, net, nodes = build()
        net.multicast("a", ["b", "c"], "m")
        nodes["b"].up = False
        sim.run()
        assert nodes["b"].inbox == []
        assert nodes["c"].inbox == [("a", "m")]
        assert net.stats.messages_dropped_crash == 1

    def test_bytes_counted_per_destination(self):
        sim, net, _ = build()
        net.multicast("a", ["b", "c", "d"], "m", size_bytes=100)
        assert net.stats.bytes_sent == 300


class TestErrors:
    def test_unknown_source_rejected(self):
        _, net, _ = build()
        with pytest.raises(ConfigurationError):
            net.multicast("ghost", ["b"], "m")

    def test_unknown_destination_rejected(self):
        _, net, _ = build()
        with pytest.raises(ConfigurationError):
            net.multicast("a", ["b", "ghost"], "m")


class TestBandwidthInteraction:
    def test_uplink_serializes_per_destination(self):
        # Three 1000-byte inter-site messages at rate 1000 B/ms leave the
        # uplink back to back: departures at 1, 2 and 3 ms.
        sim, net, nodes = build(bandwidth=True)
        net.multicast("a", ["b", "d"], "m", size_bytes=1000)
        net.multicast("a", ["c"], "m2", size_bytes=1000)
        assert net.bandwidth.backlog_ms("a", sim.now) == pytest.approx(3.0)
        sim.run()
        assert nodes["b"].inbox and nodes["c"].inbox and nodes["d"].inbox
