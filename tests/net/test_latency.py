"""Tests for the Table 3 latency model."""

import pytest

from repro.common.errors import ConfigurationError
from repro.net.latency import EC2_TABLE3, EC2_SITES, LatencyModel, LinkStats


class TestLinkStats:
    def test_ordering_enforced(self):
        with pytest.raises(ConfigurationError):
            LinkStats(avg_ms=100, p9999_ms=50, p99999_ms=200, max_ms=300)

    def test_valid_stats_accepted(self):
        stats = LinkStats(88, 1097, 82190, 166390)
        assert stats.avg_ms == 88


class TestTable3Data:
    def test_all_15_measured_pairs_present(self):
        measured = {frozenset(pair) for pair in EC2_TABLE3}
        assert len(measured) == 15  # C(6,2) pairs from the paper's table

    def test_symmetric(self):
        for (a, b), stats in EC2_TABLE3.items():
            assert EC2_TABLE3[(b, a)] == stats

    def test_paper_values_spot_checks(self):
        # First row of Table 3: VA-CA 88 / 1097 / 82190 / 166390.
        stats = EC2_TABLE3[("VA", "CA")]
        assert (stats.avg_ms, stats.p9999_ms, stats.p99999_ms,
                stats.max_ms) == (88, 1097, 82190, 166390)
        # JP-BR row: 394 / 2496 / 11399 / 94775.
        stats = EC2_TABLE3[("JP", "BR")]
        assert (stats.avg_ms, stats.p9999_ms) == (394, 2496)

    def test_9999_tail_under_2500ms_supports_delta_choice(self):
        # Section 5.1.1: RTT < 2.5 s at the 99.99th percentile for every
        # pair, which is why the paper picks Delta = 1.25 s.
        for stats in EC2_TABLE3.values():
            assert stats.p9999_ms < 2500


class TestLatencyModel:
    def test_ec2_model_covers_all_sites(self):
        model = LatencyModel.ec2()
        for a in EC2_SITES:
            for b in EC2_SITES:
                if a != b:
                    assert model.mean_one_way(a, b) > 0

    def test_same_site_is_intra_site(self):
        model = LatencyModel.ec2()
        assert model.mean_one_way("CA", "CA") == model.intra_site_ms

    def test_deterministic_mode_returns_median(self):
        model = LatencyModel.ec2(deterministic=True)
        assert model.sample_one_way("VA", "CA") == 44.0  # 88 / 2

    def test_samples_bounded_by_observed_max(self):
        model = LatencyModel.ec2(seed=7)
        ceiling = EC2_TABLE3[("VA", "CA")].max_ms / 2.0
        for _ in range(2000):
            assert 0 < model.sample_one_way("VA", "CA") <= ceiling

    def test_sample_median_tracks_table(self):
        model = LatencyModel.ec2(seed=3)
        samples = sorted(model.sample_one_way("EU", "JP")
                         for _ in range(4001))
        median = samples[len(samples) // 2]
        # Table 3: EU-JP average RTT 287 ms -> one-way median ~143.5 ms.
        assert median == pytest.approx(143.5, rel=0.10)

    def test_tail_heavier_than_median(self):
        model = LatencyModel.ec2(seed=5)
        samples = sorted(model.sample_one_way("VA", "CA")
                         for _ in range(5000))
        p999 = samples[int(0.999 * len(samples))]
        assert p999 > 2 * samples[len(samples) // 2]

    def test_unknown_link_raises(self):
        model = LatencyModel.uniform(["A", "B"])
        with pytest.raises(ConfigurationError):
            model.stats("A", "Z")

    def test_uniform_model(self):
        model = LatencyModel.uniform(["A", "B", "C"], one_way_ms=3.0)
        assert model.sample_one_way("A", "B") == 3.0
        assert model.sample_one_way("B", "C") == 3.0

    def test_rtt_trace_generation(self):
        model = LatencyModel.ec2(seed=11)
        trace = model.rtt_trace("VA", "CA", 100)
        assert len(trace) == 100
        assert all(rtt > 0 for rtt in trace)

    def test_determinism_under_seed(self):
        a = LatencyModel.ec2(seed=9)
        b = LatencyModel.ec2(seed=9)
        assert [a.sample_one_way("VA", "CA") for _ in range(50)] == \
            [b.sample_one_way("VA", "CA") for _ in range(50)]
