"""Tests for burst-correlated latency sampling."""

import pytest

from repro.net.latency import LatencyModel


class TestWindowCorrelation:
    def test_same_window_same_sample(self):
        model = LatencyModel.ec2(seed=3)
        a = model.sample_one_way("VA", "CA", now=100.0)
        b = model.sample_one_way("VA", "CA", now=120.0)  # same 250ms window
        assert a == b

    def test_different_windows_differ(self):
        model = LatencyModel.ec2(seed=3)
        samples = {model.sample_one_way("VA", "CA", now=float(w) * 250.0)
                   for w in range(50)}
        assert len(samples) > 40  # essentially all distinct

    def test_directions_are_independent(self):
        model = LatencyModel.ec2(seed=3)
        forward = model.sample_one_way("VA", "CA", now=0.0)
        backward = model.sample_one_way("CA", "VA", now=0.0)
        assert forward != backward

    def test_links_are_independent(self):
        model = LatencyModel.ec2(seed=3)
        a = model.sample_one_way("VA", "CA", now=0.0)
        b = model.sample_one_way("VA", "EU", now=0.0)
        assert a != b

    def test_no_timestamp_means_iid(self):
        model = LatencyModel.ec2(seed=3)
        samples = {model.sample_one_way("VA", "CA") for _ in range(20)}
        assert len(samples) == 20

    def test_correlation_disabled_by_zero_window(self):
        model = LatencyModel.ec2(seed=3)
        model.correlation_window_ms = 0.0
        a = model.sample_one_way("VA", "CA", now=100.0)
        b = model.sample_one_way("VA", "CA", now=100.0)
        assert a != b

    def test_marginal_distribution_unchanged(self):
        """Windowed draws still follow the fitted log-normal: the median
        over many windows tracks Table 3's average/2."""
        model = LatencyModel.ec2(seed=9)
        samples = sorted(
            model.sample_one_way("VA", "CA", now=float(w) * 250.0)
            for w in range(4_001))
        median = samples[len(samples) // 2]
        assert median == pytest.approx(44.0, rel=0.1)

    def test_deterministic_mode_ignores_window(self):
        model = LatencyModel.ec2(seed=1, deterministic=True)
        assert model.sample_one_way("VA", "CA", now=0.0) == 44.0

    def test_cache_bounded(self):
        model = LatencyModel.ec2(seed=4)
        for w in range(70_000):
            model.sample_one_way("VA", "CA", now=float(w) * 250.0)
        assert len(model._window_draws) <= 65_537
