"""Coalesced multicast delivery: one heap entry per fan-out arrival tick.

The contract: ``Network(coalesce=True)`` (the default) is observationally
identical to ``coalesce=False`` -- same deliveries in the same order at
the same virtual times, same RNG draw order, same stats -- it only
collapses the per-receiver delivery events that land on the same tick
into one shared event whose callback fires the receivers in destination
order (stamping per-receiver MACs inside the drain on the authenticated
path).
"""

from repro.crypto.authenticators import MAC_VECTOR, NULL
from repro.crypto.primitives import KeyStore
from repro.net.bandwidth import BandwidthModel
from repro.net.latency import LatencyModel
from repro.net.network import Endpoint, Network
from repro.sim.core import Simulator


def make_net(coalesce, fifo=False, bandwidth=False, jitter=0.0, seed=7):
    sim = Simulator()
    latency = LatencyModel.uniform(("X", "Y", "Z"), one_way_ms=5.0,
                                   jitter=jitter, seed=seed)
    if jitter:
        latency.deterministic = False
    bw = BandwidthModel(default_rate=1000.0) if bandwidth else None
    return sim, Network(sim, latency, bandwidth=bw, fifo=fifo,
                        coalesce=coalesce)


class _Node:
    def __init__(self, net, name, site):
        self.inbox = []
        self.auth_inbox = []
        self.up = True
        net.attach(Endpoint(
            name, site,
            lambda src, p: self.inbox.append((src, p, net.sim.now)),
            lambda: self.up,
            deliver_auth=lambda src, body, auth, size:
                self.auth_inbox.append((src, body, size, net.sim.now))))


def build(coalesce, **kwargs):
    sim, net = make_net(coalesce, **kwargs)
    nodes = {name: _Node(net, name, site)
             for name, site in (("a", "X"), ("b", "Y"),
                                ("c", "Y"), ("d", "Z"))}
    return sim, net, nodes


def core_stats(net):
    s = net.stats
    return (s.messages_sent, s.messages_delivered,
            s.messages_dropped_partition, s.messages_dropped_crash,
            s.bytes_sent, s.auth_stamped, s.auth_verified)


class TestPlainMulticastEquivalence:
    def _run(self, coalesce, **kwargs):
        sim, net, nodes = build(coalesce, **kwargs)
        log = []
        for node in nodes.values():
            node.inbox = log
        for round_no in range(25):
            net.multicast("a", ("b", "c", "d"), ("m", round_no),
                          size_bytes=256)
        sim.run()
        return log, core_stats(net), sim.now

    def test_deterministic_latency_same_schedule(self):
        # Zero jitter: every receiver in a site shares the arrival tick,
        # so coalescing actually engages and must change nothing.
        on = self._run(coalesce=True)
        off = self._run(coalesce=False)
        assert on == off

    def test_jittered_latency_same_schedule(self):
        # Distinct arrival ticks per receiver: the coalesced path must
        # degrade to per-receiver events without reordering anything.
        on = self._run(coalesce=True, jitter=3.0)
        off = self._run(coalesce=False, jitter=3.0)
        assert on == off

    def test_bandwidth_same_schedule(self):
        on = self._run(coalesce=True, bandwidth=True, fifo=True)
        off = self._run(coalesce=False, bandwidth=True, fifo=True)
        assert on == off

    def test_coalescing_counters_engage(self):
        sim, net, nodes = build(coalesce=True)
        net.multicast("a", ("b", "c"), "m", size_bytes=64)
        sim.run()
        # b and c share a site: one arrival tick, one shared event.
        assert net.stats.coalesced_ticks == 1
        assert net.stats.coalesced_deliveries == 2
        sim2, net2, _ = build(coalesce=False)
        net2.multicast("a", ("b", "c"), "m", size_bytes=64)
        sim2.run()
        assert net2.stats.coalesced_ticks == 0
        assert net2.stats.coalesced_deliveries == 0


class TestAuthenticatedMulticastEquivalence:
    def _run(self, coalesce, authenticator, **kwargs):
        sim, net, nodes = build(coalesce, **kwargs)
        log = []
        keystore = KeyStore()
        for node in nodes.values():
            node.auth_inbox = log
        for round_no in range(25):
            net.multicast_authenticated(
                "a", ["b", "c", "d"], ("m", round_no), size_bytes=256,
                authenticator=authenticator, keystore=keystore)
        sim.run()
        return log, core_stats(net), sim.now

    def test_mac_vector_same_schedule_and_macs_valid(self):
        on = self._run(coalesce=True, authenticator=MAC_VECTOR)
        off = self._run(coalesce=False, authenticator=MAC_VECTOR)
        assert on == off

    def test_null_policy_same_schedule(self):
        on = self._run(coalesce=True, authenticator=NULL)
        off = self._run(coalesce=False, authenticator=NULL)
        assert on == off

    def test_macs_stamped_inside_drain_verify(self):
        # Per-receiver MACs stamped by the shared event's callback must
        # verify exactly as eagerly stamped ones do.
        sim, net, nodes = build(coalesce=True)
        keystore = KeyStore()
        net.multicast_authenticated("a", ["b", "c", "d"], "body",
                                    size_bytes=64,
                                    authenticator=MAC_VECTOR,
                                    keystore=keystore)
        sim.run()
        for name in ("b", "c", "d"):
            (src, body, auth, size), = [
                (s, b, None, sz)
                for s, b, sz, _t in nodes[name].auth_inbox]
            assert src == "a" and body == "body"
        assert net.stats.auth_stamped == 3

    def test_partition_at_send_time_respected_per_receiver(self):
        def run(coalesce):
            sim, net, nodes = build(coalesce)
            net.partitions.block_pair("a", "c")
            net.multicast_authenticated("a", ["b", "c"], "m", size_bytes=64,
                                        authenticator=MAC_VECTOR,
                                        keystore=KeyStore())
            sim.run()
            return (len(nodes["b"].auth_inbox), len(nodes["c"].auth_inbox),
                    net.stats.messages_dropped_partition)

        assert run(True) == run(False) == (1, 0, 1)

    def test_partition_mid_flight_keeps_in_flight_messages(self):
        # Partition checks are send-time by contract (see Network.send);
        # a partition raised mid-flight must not drop already-sent
        # messages on either scheduling path.
        def run(coalesce):
            sim, net, nodes = build(coalesce)
            net.multicast_authenticated("a", ["b", "c"], "m", size_bytes=64,
                                        authenticator=MAC_VECTOR,
                                        keystore=KeyStore())
            net.partitions.block_pair("a", "c")
            sim.run()
            return (len(nodes["b"].auth_inbox), len(nodes["c"].auth_inbox),
                    net.stats.messages_dropped_partition)

        assert run(True) == run(False) == (1, 1, 0)

    def test_crash_mid_flight_respected_per_receiver(self):
        def run(coalesce):
            sim, net, nodes = build(coalesce)
            net.multicast_authenticated("a", ["b", "c"], "m", size_bytes=64,
                                        authenticator=MAC_VECTOR,
                                        keystore=KeyStore())
            nodes["c"].up = False
            sim.run()
            return (len(nodes["b"].auth_inbox), len(nodes["c"].auth_inbox),
                    net.stats.messages_dropped_crash)

        assert run(True) == run(False) == (1, 0, 1)
