"""Tests for partitions and the paper's Definition 1."""

import pytest

from repro.net.partition import PartitionController, partitioned_replicas


class TestPartitionController:
    def test_block_and_unblock(self):
        pc = PartitionController()
        pc.block_pair("a", "b")
        assert pc.blocked("a", "b")
        assert pc.blocked("b", "a")  # symmetric
        pc.unblock_pair("b", "a")
        assert not pc.blocked("a", "b")

    def test_self_partition_rejected(self):
        with pytest.raises(ValueError):
            PartitionController().block_pair("a", "a")

    def test_isolate(self):
        pc = PartitionController()
        pc.isolate("a", ["a", "b", "c"])
        assert pc.blocked("a", "b")
        assert pc.blocked("a", "c")
        assert not pc.blocked("b", "c")

    def test_heal_node(self):
        pc = PartitionController()
        pc.block_pair("a", "b")
        pc.block_pair("a", "c")
        pc.block_pair("b", "c")
        pc.heal_node("a")
        assert not pc.blocked("a", "b")
        assert pc.blocked("b", "c")

    def test_split(self):
        pc = PartitionController()
        pc.split(["a", "b"], ["c", "d"])
        assert pc.blocked("a", "c")
        assert pc.blocked("b", "d")
        assert not pc.blocked("a", "b")
        assert not pc.blocked("c", "d")

    def test_split_overlap_rejected(self):
        with pytest.raises(ValueError):
            PartitionController().split(["a", "b"], ["b", "c"])

    def test_heal_all(self):
        pc = PartitionController()
        pc.split(["a"], ["b", "c"])
        pc.heal_all()
        assert not pc.blocked_pairs


class TestDefinition1:
    """The paper's Definition 1 (partitioned replicas), incl. Figure 1."""

    def test_fully_connected_none_partitioned(self):
        replicas = ["p1", "p2", "p3"]
        assert partitioned_replicas(replicas, lambda a, b: True) == frozenset()

    def test_one_isolated_replica(self):
        replicas = ["p1", "p2", "p3"]

        def timely(a, b):
            return "p3" not in (a, b)

        assert partitioned_replicas(replicas, timely) == {"p3"}

    def test_figure1_example(self):
        """Figure 1: five replicas, p1-p2, p1-p3 and p4-p2/p3 style cuts
        leave two maximum cliques of size 2+... the paper counts exactly 3
        partitioned replicas, either {p1,p4,p5} or {p2,p3,p5}."""
        replicas = ["p1", "p2", "p3", "p4", "p5"]
        # Timely pairs: p1-p4, p2-p3 (and everything else cut, p5 cut from
        # everyone) -- the figure's >Delta edges separate
        # {p1,p4} | {p2,p3} | {p5}.
        timely_pairs = {frozenset(("p1", "p4")), frozenset(("p2", "p3"))}

        def timely(a, b):
            return frozenset((a, b)) in timely_pairs

        partitioned = partitioned_replicas(replicas, timely)
        assert len(partitioned) == 3
        # One of the two size-2 cliques survives; the other 3 replicas are
        # partitioned.
        assert partitioned in ({"p2", "p3", "p5"}, {"p1", "p4", "p5"})

    def test_total_partition_leaves_n_minus_1(self):
        replicas = ["a", "b", "c", "d"]
        partitioned = partitioned_replicas(replicas, lambda a, b: False)
        # Largest subset has size 1, so n - 1 replicas are partitioned.
        assert len(partitioned) == 3

    def test_deterministic_tiebreak(self):
        replicas = ["a", "b", "c", "d"]
        timely_pairs = {frozenset(("a", "b")), frozenset(("c", "d"))}

        def timely(x, y):
            return frozenset((x, y)) in timely_pairs

        first = partitioned_replicas(replicas, timely)
        second = partitioned_replicas(replicas, timely)
        assert first == second
