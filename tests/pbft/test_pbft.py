"""Tests for the speculative PBFT baseline."""

import pytest

from repro.common.config import ProtocolName
from repro.faults.checker import SafetyChecker
from tests.conftest import make_cluster, run_workload


@pytest.fixture
def pbft_t1():
    return make_cluster(ProtocolName.PBFT, t=1)


class TestDeployment:
    def test_needs_3t_plus_1_replicas(self, pbft_t1):
        assert pbft_t1.config.n == 4

    def test_common_case_uses_2t_plus_1(self, pbft_t1):
        replica = pbft_t1.replica(0)
        assert replica.active_ids() == [0, 1, 2]
        assert not pbft_t1.replica(3).is_active

    def test_undersized_cluster_rejected(self):
        from repro.common.config import ClusterConfig
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ClusterConfig(t=1, protocol=ProtocolName.PBFT, n=3)


class TestCommonCase:
    def test_requests_commit(self, pbft_t1):
        driver = run_workload(pbft_t1)
        assert driver.throughput.total > 100

    def test_total_order_across_actives(self, pbft_t1):
        run_workload(pbft_t1)
        assert SafetyChecker(pbft_t1).violations() == []

    def test_passive_replica_not_involved(self, pbft_t1):
        run_workload(pbft_t1, duration_ms=1_000.0)
        assert pbft_t1.replica(3).committed_requests == 0

    def test_client_needs_t_plus_1_matching_replies(self, pbft_t1):
        assert pbft_t1.clients[0].reply_quorum == 2

    def test_two_phase_latency_exceeds_paxos(self):
        """PBFT's extra all-to-all phase costs one extra one-way delay
        compared to Paxos's single round trip."""
        pbft = make_cluster(ProtocolName.PBFT, t=1)
        paxos = make_cluster(ProtocolName.PAXOS, t=1)
        lat_pbft = run_workload(pbft).mean_latency_ms()
        lat_paxos = run_workload(paxos).mean_latency_ms()
        assert lat_pbft > lat_paxos

    def test_t2_deployment(self):
        runtime = make_cluster(ProtocolName.PBFT, t=2)
        assert runtime.config.n == 7
        driver = run_workload(runtime)
        assert driver.throughput.total > 100
        assert SafetyChecker(runtime).violations() == []

    def test_quorum_is_2t_plus_1_votes(self, pbft_t1):
        """A slot commits only after 2t+1 commit votes."""
        run_workload(pbft_t1, duration_ms=500.0)
        # All three actives executed the same prefix.
        lengths = [len(pbft_t1.replica(i).execution_trace)
                   for i in (0, 1, 2)]
        assert min(lengths) > 0
