"""Speculative-PBFT view changes: leader faults and vote-keying.

The baselines gained a real leader-change path (VIEW-CHANGE / NEW-VIEW
with prepared-certificate carry-over over a rotating 2t + 1 active set);
these tests drive it on the shared :class:`ClusterHarness` fixtures, plus
message-reordering unit tests for the ``(seqno, digest)`` vote keying.
"""

import pytest

from repro.common.config import ProtocolName
from repro.crypto.primitives import Digest
from repro.faults.injector import FaultSchedule
from repro.protocols.pbft.replica import CommitMsg, PrePrepare
from repro.smr.messages import Batch, Request
from tests.conftest import make_cluster, make_harness


def run_with_crash(crash_at, downtime, duration=8_000.0, victim=0):
    harness = make_harness(ProtocolName.PBFT)
    harness.arm(FaultSchedule().crash_for(crash_at, victim, downtime))
    driver = harness.drive(duration_ms=duration)
    return harness, driver


class TestLeaderFailover:
    def test_progress_resumes_after_primary_crash(self):
        harness, driver = run_with_crash(1_000.0, 2_000.0)
        harness.checker.assert_safe()
        assert driver.throughput.total > 500
        live_views = {r.view for r in harness.replicas if not r.crashed}
        assert max(live_views) >= 1

    def test_commits_continue_after_failover_settles(self):
        harness, driver = run_with_crash(1_000.0, 2_000.0)
        last_commit = max(c.completions[-1][1]
                          for c in harness.runtime.clients
                          if c.completions)
        assert last_commit > 7_000.0, \
            f"commits stopped at t={last_commit:.0f} ms"

    def test_active_set_rotates_with_the_view(self):
        harness, _ = run_with_crash(1_000.0, 2_000.0)
        replica = next(r for r in harness.replicas if r.view >= 1)
        actives = replica.active_ids()
        assert len(actives) == 2 * harness.runtime.config.t + 1
        assert replica.view % harness.runtime.config.n in actives

    def test_committed_state_survives_failover(self):
        """Prepared/committed certificates must carry over: every client
        observes gap-free monotone timestamps across the view change."""
        harness, driver = run_with_crash(1_500.0, 2_000.0)
        harness.checker.assert_safe()
        assert harness.checker.violations() == []
        for client in harness.runtime.clients:
            timestamps = [rid[1] for _, _, rid in client.completions]
            assert timestamps == list(range(1, len(timestamps) + 1))

    def test_active_follower_crash_rotates_past_it(self):
        """Crashing active follower r1 stalls the 2t+1 quorum; the view
        must rotate to an active set that excludes it (view 1's leader is
        r1 itself, so the election escalates past it)."""
        harness, driver = run_with_crash(1_000.0, 2_500.0, victim=1)
        harness.checker.assert_safe()
        assert driver.throughput.total > 300
        top = max(r.view for r in harness.replicas)
        assert top >= 2

    def test_recovered_replica_catches_up(self):
        """A crashed primary recovering into a view where it is no longer
        leader syncs its execution horizon from its peers."""
        harness = make_harness(ProtocolName.PBFT)
        harness.arm(FaultSchedule().crash_for(1_000.0, 0, 1_000.0))
        probe = {}
        harness.sim.call_at(1_999.0, lambda: probe.update(
            stale=harness.replica(0).ex,
            top=max(r.ex for r in harness.replicas)))
        harness.drive(duration_ms=6_000.0)
        r0 = harness.replica(0)
        # While down its horizon froze; the recovery sync must lift it at
        # least to what the cluster had committed by then.
        assert r0.ex >= probe["top"] > probe["stale"]

    def test_no_elections_in_fault_free_run(self):
        harness = make_harness(ProtocolName.PBFT)
        harness.drive(duration_ms=3_000.0)
        assert all(r.elections_started == 0 for r in harness.replicas)
        assert all(r.view == 0 for r in harness.replicas)


class TestQuorumBlackout:
    def test_progress_resumes_after_majority_crash(self):
        harness = make_harness(ProtocolName.PBFT)
        harness.arm(FaultSchedule()
                    .crash_for(1_500.0, 1, 1_500.0)
                    .crash_for(1_500.0, 2, 1_500.0))
        driver = harness.drive(duration_ms=8_000.0)
        harness.checker.assert_safe()
        last_commit = max(c.completions[-1][1]
                          for c in harness.runtime.clients
                          if c.completions)
        assert last_commit > 7_000.0


def _request(client, timestamp):
    return Request(op=("noop",), timestamp=timestamp, client=client,
                   size_bytes=8)


class TestVoteKeying:
    """The `_record_vote` bugfix: votes pool by (seqno, digest), so
    commits that outrun the PRE-PREPARE cannot complete a *different*
    batch at the same slot."""

    def make_replica(self):
        runtime = make_cluster(ProtocolName.PBFT, num_clients=1)
        return runtime.replica(1)  # active non-leader

    def test_early_commits_with_conflicting_digest_do_not_pool(self):
        replica = self.make_replica()
        batch = Batch((_request(0, 1),))
        good = replica.batch_digest(batch)
        evil = Digest(b"\xee" * 32)
        # Three commits for a *different* digest arrive first.
        for sender in (0, 2, 3):
            replica._on_commit(CommitMsg(0, 1, evil, sender))
        # The pre-prepare then fixes the real digest: the replica votes,
        # but the conflicting votes must not count toward this batch.
        replica._on_pre_prepare("r0", PrePrepare(0, 1, batch, good))
        assert 1 not in replica.commit_log
        assert replica.ex == 0

    def test_early_commits_with_matching_digest_complete_on_arrival(self):
        replica = self.make_replica()
        batch = Batch((_request(0, 1),))
        good = replica.batch_digest(batch)
        # The second-phase votes outrun the pre-prepare (reordering).
        replica._on_commit(CommitMsg(0, 1, good, 0))
        replica._on_commit(CommitMsg(0, 1, good, 2))
        assert 1 not in replica.commit_log  # nothing to commit yet
        # The pre-prepare lands: replica votes and the slot completes.
        replica._on_pre_prepare("r0", PrePrepare(0, 1, batch, good))
        assert replica.ex == 1
        assert [rid for sn, rid in replica.execution_trace] == [(0, 1)]

    def test_conflicting_then_matching_votes_commit_the_right_batch(self):
        replica = self.make_replica()
        batch = Batch((_request(0, 1),))
        good = replica.batch_digest(batch)
        evil = Digest(b"\xee" * 32)
        replica._on_commit(CommitMsg(0, 1, evil, 0))
        replica._on_commit(CommitMsg(0, 1, evil, 2))
        replica._on_pre_prepare("r0", PrePrepare(0, 1, batch, good))
        assert replica.ex == 0
        # Enough votes for the real digest arrive afterwards.
        replica._on_commit(CommitMsg(0, 1, good, 0))
        replica._on_commit(CommitMsg(0, 1, good, 2))
        assert replica.ex == 1
        assert [rid for sn, rid in replica.execution_trace] == [(0, 1)]
