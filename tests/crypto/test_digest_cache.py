"""Digest-cache correctness: the per-message cache must be invisible.

Three obligations (docs/profiling.md):

* cached digests are byte-identical to the seed encoder's output for
  every wire-message shape (the cache may only change *when* hashing
  happens, never *what* is hashed);
* MAC vectors are unchanged whether a fan-out rides the coalesced batch
  path or the per-receiver path -- the authenticator depends only on
  (sender, receiver, body digest), never on delivery scheduling;
* the cache is never invalidated, which is exactly why mutating a frozen
  message after it has been digested is forbidden (lint rule A002): the
  stale digest this test demonstrates is the bug the rule prevents.
"""

import dataclasses

from repro.crypto.authenticators import (
    MAC_VECTOR,
    MacVectorAuthenticator,
    registered_classes,
)
from repro.crypto.primitives import (
    Digest,
    KeyStore,
    Mac,
    Signature,
    digest_cache_stats,
    digest_of,
    reset_digest_cache_stats,
)
from repro.harness.perf import _seed_digest_of
from repro.net.latency import LatencyModel
from repro.net.network import Endpoint, Network
from repro.protocols.xpaxos.messages import PreChk, ReplyMsg
from repro.sim.core import Simulator
from repro.smr.messages import Batch, Reply, Request


def make_batch(i=0, n=4):
    return Batch(tuple(
        Request(op=("put", f"key-{i}-{j}", b"v" * 24), timestamp=i * 8 + j,
                client=j, size_bytes=64)
        for j in range(n)))


class TestByteIdentity:
    """digest_of == the seed encoder, byte for byte, shape by shape."""

    def test_wire_messages_match_seed_encoder(self):
        keystore = KeyStore()
        sig = keystore.sign("r0", ("prepare", 1, 2))
        mac = keystore.mac("r0", "c1", ("reply", 3))
        samples = [
            Request(op=("get", "k"), timestamp=7, client=2, size_bytes=32),
            Request(op=("put", "k", b"v"), timestamp=8, client=2,
                    signature=sig),
            make_batch(),
            Reply(replica=1, view=0, seqno=5, timestamp=7, result="ok"),
            ReplyMsg(replica=0, view=1, seqno=9, timestamp=4, client=3,
                     result=None, result_digest=digest_of(("r", 9))),
            PreChk(seqno=40, view=1, state_digest=b"\x01" * 32, sender=2),
            sig,
            mac,
            ("tuple", 1, 2.5, None, True, b"bytes"),
            {"b": 1, "a": (2, 3)},
            ["list", ("nested", Digest(b"\x02" * 32))],
        ]
        for obj in samples:
            assert digest_of(obj).value == _seed_digest_of(obj).value, obj

    def test_repeated_digests_stay_identical(self):
        batch = make_batch(1)
        first = digest_of(batch)
        for _ in range(3):
            assert digest_of(batch).value == first.value
        # A fresh, equal-valued instance digests to the same bytes.
        assert digest_of(make_batch(1)).value == first.value

    def test_every_registered_wire_class_is_frozen(self):
        # The cache's immutability contract: every class that crosses
        # the wire is a frozen dataclass (and therefore cacheable).
        # The registry is process-global and other test modules register
        # ad-hoc fixture classes, so scope the sweep to the package.
        for cls in registered_classes():
            if not cls.__module__.startswith("repro."):
                continue
            assert dataclasses.is_dataclass(cls), cls
            assert cls.__dataclass_params__.frozen, cls


class TestMemoization:
    def test_frozen_message_is_cached(self):
        reset_digest_cache_stats()
        batch = make_batch(2)
        first = digest_of(batch)
        second = digest_of(batch)
        assert second is first  # the cached Digest object itself
        stats = digest_cache_stats()
        assert stats["hits"] >= 1
        assert stats["stores"] >= 1

    def test_plain_tuples_are_never_cached(self):
        reset_digest_cache_stats()
        body = ("batch", b"x" * 64)
        digest_of(body)
        digest_of(body)
        stats = digest_cache_stats()
        assert stats["hits"] == 0
        assert stats["uncached"] == 2


def _auth_net(sites, coalesce):
    """A network with one auth-recording sink per (name, site) pair."""
    sim = Simulator()
    latency = LatencyModel.uniform(
        tuple(sorted(set(site for _, site in sites))) + ("S",),
        one_way_ms=5.0, jitter=0.0, seed=7)
    # No bandwidth model: uplink serialization would spread the arrival
    # ticks and keep the receivers off the coalesced path.
    net = Network(sim, latency, coalesce=coalesce)
    inboxes = {}
    for name, site in sites:
        inbox = inboxes[name] = []
        net.attach(Endpoint(
            name, site,
            lambda src, p: None,
            lambda: True,
            deliver_auth=(lambda inbox: lambda src, body, auth, size:
                          inbox.append(auth))(inbox)))
    net.attach(Endpoint("s", "S", lambda src, p: None, lambda: True))
    return sim, net, inboxes


class TestMacVectorsBothPaths:
    """The same fan-out through the coalesced batch path and the
    per-receiver path must stamp byte-identical MAC vectors."""

    def run_fanout(self, coalesce):
        sim, net, inboxes = _auth_net(
            [("b", "Y"), ("c", "Y"), ("d", "Z")], coalesce)
        keystore = KeyStore()
        body = PreChk(seqno=11, view=0, state_digest=b"\x03" * 32, sender=0)
        net.multicast_authenticated("s", sorted(inboxes), body,
                                    size_bytes=44,
                                    authenticator=MAC_VECTOR,
                                    keystore=keystore)
        sim.run()
        macs = {}
        for name, inbox in inboxes.items():
            (auth,) = inbox
            assert keystore.verify_mac(auth, body)
            macs[name] = tuple(auth)  # full layout, token bytes included
        return net.stats, macs

    def test_coalesced_and_per_receiver_macs_are_byte_identical(self):
        # Same topology, both delivery paths: with coalescing on, the
        # zero-jitter arrivals share one batch event (`_deliver_auth_batch`
        # hoists the digest across the drain); with it off, every
        # receiver rides its own event.  The MAC vector must not notice.
        coalesced_stats, coalesced = self.run_fanout(coalesce=True)
        split_stats, split = self.run_fanout(coalesce=False)
        assert coalesced_stats.coalesced_deliveries == 3
        assert split_stats.coalesced_deliveries == 0
        assert coalesced == split

    def test_transport_stamp_matches_keystore_mac_digest(self):
        # The inlined fan-out stamp and the KeyStore API derive the
        # same token ("keep in sync" contract in authenticators.py).
        keystore = KeyStore()
        context = digest_of(("ctx", 1))
        stamped = MacVectorAuthenticator().stamp(keystore, "a", "b", context)
        assert tuple(stamped) == tuple(keystore.mac_digest("a", "b", context))


class TestMutationAfterDigestGuard:
    """Why A002 exists: a mutated message keeps serving its stale digest."""

    def test_mutation_after_digest_serves_stale_digest(self):
        request = Request(op=("put", "k", b"old"), timestamp=1, client=1)
        before = digest_of(request)
        # The forbidden write A002 flags in real code -- performed here
        # deliberately to pin down the failure mode it prevents.
        object.__setattr__(request, "timestamp", 999)  # repro: lint-ok[A002]
        assert digest_of(request) is before  # stale: cache never revalidates
        fresh = Request(op=("put", "k", b"old"), timestamp=999, client=1)
        assert digest_of(fresh).value != before.value

    def test_unmutated_messages_never_go_stale(self):
        batch = make_batch(3)
        assert digest_of(batch).value == _seed_digest_of(batch).value
