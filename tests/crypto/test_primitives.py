"""Tests for simulated signatures, MACs, and canonical digests."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import SignatureError
from repro.crypto.primitives import (
    KeyStore,
    client_principal,
    digest_of,
    replica_principal,
)


@pytest.fixture
def keystore():
    return KeyStore()


class TestDigest:
    def test_equal_payloads_equal_digests(self):
        assert digest_of(("a", 1, 2.5)) == digest_of(("a", 1, 2.5))

    def test_different_payloads_differ(self):
        assert digest_of(("a", 1)) != digest_of(("a", 2))

    def test_type_distinctions(self):
        # 1 and "1" and b"1" must hash differently.
        assert digest_of(1) != digest_of("1")
        assert digest_of("1") != digest_of(b"1")
        assert digest_of(True) != digest_of(1)

    def test_nested_structures(self):
        payload = {"k": [1, (2, 3)], "other": None}
        assert digest_of(payload) == digest_of(
            {"other": None, "k": [1, (2, 3)]})

    def test_list_vs_concatenation_ambiguity(self):
        # ["ab"] must differ from ["a", "b"].
        assert digest_of(["ab"]) != digest_of(["a", "b"])

    def test_dataclass_payloads(self):
        from repro.smr.messages import Request

        r1 = Request(op=1, timestamp=1, client=0)
        r2 = Request(op=1, timestamp=1, client=0)
        r3 = Request(op=2, timestamp=1, client=0)
        assert digest_of(r1) == digest_of(r2)
        assert digest_of(r1) != digest_of(r3)

    def test_unencodable_type_raises(self):
        with pytest.raises(TypeError):
            digest_of(object())

    @given(st.one_of(st.integers(), st.text(), st.binary(),
                     st.booleans(), st.none()))
    def test_digest_is_stable(self, payload):
        assert digest_of(payload) == digest_of(payload)


class TestSignatures:
    def test_sign_verify_roundtrip(self, keystore):
        sig = keystore.sign("r0", ("hello", 42))
        assert keystore.verify(sig, ("hello", 42))

    def test_verify_rejects_wrong_payload(self, keystore):
        sig = keystore.sign("r0", ("hello", 42))
        assert not keystore.verify(sig, ("hello", 43))

    def test_forgery_fails(self, keystore):
        forged = keystore.forge_attempt("r1", "r0", ("hello", 42))
        assert forged.signer == "r0"  # claims to be r0...
        assert not keystore.verify(forged, ("hello", 42))  # ...but fails

    def test_check_raises_on_wrong_signer(self, keystore):
        sig = keystore.sign("r1", "payload")
        with pytest.raises(SignatureError):
            keystore.check(sig, "payload", expected_signer="r0")

    def test_check_raises_on_tampered_payload(self, keystore):
        sig = keystore.sign("r0", "payload")
        with pytest.raises(SignatureError):
            keystore.check(sig, "tampered", expected_signer="r0")

    def test_check_passes_valid(self, keystore):
        sig = keystore.sign("r0", "payload")
        keystore.check(sig, "payload", expected_signer="r0")

    def test_sign_digest_matches_sign(self, keystore):
        payload = ("x", 1)
        a = keystore.sign("r0", payload)
        b = keystore.sign_digest("r0", digest_of(payload))
        assert a == b

    def test_replayed_signature_still_verifies(self, keystore):
        # Byzantine nodes may replay signatures they saw; that must work
        # (the protocol defends via sequence/view numbers, not the crypto).
        sig = keystore.sign("r0", "msg")
        assert keystore.verify(sig, "msg")
        assert keystore.verify_digest(sig, digest_of("msg"))

    def test_distinct_keystores_are_distinct_pki(self):
        ks_a = KeyStore(secret=b"world-a")
        ks_b = KeyStore(secret=b"world-b")
        sig = ks_a.sign("r0", "msg")
        assert not ks_b.verify(sig, "msg")


class TestMacs:
    def test_mac_roundtrip(self, keystore):
        mac = keystore.mac("r0", "c1", ("reply", 7))
        assert keystore.verify_mac(mac, ("reply", 7))

    def test_mac_rejects_tampering(self, keystore):
        mac = keystore.mac("r0", "c1", ("reply", 7))
        assert not keystore.verify_mac(mac, ("reply", 8))

    def test_mac_binds_channel(self, keystore):
        mac_01 = keystore.mac("r0", "c1", "m")
        mac_02 = keystore.mac("r0", "c2", "m")
        assert mac_01 != mac_02


class TestPrincipals:
    def test_replica_and_client_namespaces_disjoint(self):
        assert replica_principal(3) != client_principal(3)

    def test_principal_format(self):
        assert replica_principal(0) == "r0"
        assert client_principal(12) == "c12"
