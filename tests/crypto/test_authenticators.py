"""Unit tests for the transport-level authenticator policies."""

import pytest

from repro.crypto.authenticators import (
    MAC_BYTES,
    MAC_VECTOR,
    MODELED_MAC,
    NULL,
    SIG_BYTES,
    SIGNATURE,
    authenticator_for,
    register,
    registered_classes,
)
from repro.crypto.costs import CostModel, CpuMeter
from repro.crypto.primitives import KeyStore, Mac, digest_of


@pytest.fixture
def keystore():
    return KeyStore()


@pytest.fixture
def cpu():
    return CpuMeter(CostModel.free())


class TestMacVector:
    def test_roundtrip(self, keystore, cpu):
        body = ("prechk", 8, 0, b"state", 1)
        ctx = MAC_VECTOR.begin(keystore, "r1", body)
        mac = MAC_VECTOR.stamp(keystore, "r1", "r2", ctx)
        assert MAC_VECTOR.verify(keystore, cpu, "r1", "r2", body, mac)

    def test_one_digest_many_channels(self, keystore, cpu):
        """The fan-out optimization: one payload digest, n channel MACs,
        each valid only on its own channel."""
        body = ("payload", 42)
        ctx = MAC_VECTOR.begin(keystore, "r0", body)
        assert ctx == digest_of(body)
        macs = {dst: MAC_VECTOR.stamp(keystore, "r0", dst, ctx)
                for dst in ("r1", "r2", "c0")}
        assert len({m._token for m in macs.values()}) == 3
        for dst, mac in macs.items():
            assert MAC_VECTOR.verify(keystore, cpu, "r0", dst, body, mac)
            other = "r1" if dst != "r1" else "r2"
            assert not MAC_VECTOR.verify(keystore, cpu, "r0", other, body,
                                         mac)

    def test_rejects_tampered_body(self, keystore, cpu):
        ctx = MAC_VECTOR.begin(keystore, "r1", ("m", 1))
        mac = MAC_VECTOR.stamp(keystore, "r1", "r2", ctx)
        assert not MAC_VECTOR.verify(keystore, cpu, "r1", "r2", ("m", 2),
                                     mac)

    def test_rejects_claimed_sender_mismatch(self, keystore, cpu):
        """A Byzantine r3 relaying r1's MAC from its own address fails
        the channel binding."""
        body = ("m", 1)
        mac = MAC_VECTOR.stamp(keystore, "r1", "r2",
                               MAC_VECTOR.begin(keystore, "r1", body))
        assert not MAC_VECTOR.verify(keystore, cpu, "r3", "r2", body, mac)

    def test_rejects_wrong_auth_type(self, keystore, cpu):
        assert not MAC_VECTOR.verify(keystore, cpu, "r1", "r2", "m", None)
        assert not MAC_VECTOR.verify(keystore, cpu, "r1", "r2", "m",
                                     keystore.sign("r1", "m"))

    def test_sender_charges_per_receiver(self, keystore):
        cpu = CpuMeter(CostModel())
        MAC_VECTOR.charge_send(cpu, 7, 1024)
        assert cpu.busy_us == pytest.approx(
            7 * CostModel().mac_cost(1024))

    def test_wire_bytes(self):
        assert MAC_VECTOR.auth_bytes == MAC_BYTES == 20


class TestSignature:
    def test_shared_across_receivers(self, keystore, cpu):
        body = ("vc", 3)
        ctx = SIGNATURE.begin(keystore, "r1", body)
        assert SIGNATURE.stamp(keystore, "r1", "r2", ctx) is ctx
        assert SIGNATURE.verify(keystore, cpu, "r1", "r2", body, ctx)
        assert SIGNATURE.verify(keystore, cpu, "r1", "r9", body, ctx)

    def test_rejects_wrong_signer(self, keystore, cpu):
        sig = keystore.sign("r3", ("vc", 3))
        assert not SIGNATURE.verify(keystore, cpu, "r1", "r2", ("vc", 3),
                                    sig)

    def test_charges_one_sign(self, keystore):
        cpu = CpuMeter(CostModel())
        SIGNATURE.charge_send(cpu, 9, 4096)
        assert cpu.busy_us == pytest.approx(CostModel().sign_cost())

    def test_wire_bytes(self):
        assert SIGNATURE.auth_bytes == SIG_BYTES == 128


class TestNullAndModeled:
    def test_null_is_free_and_open(self, keystore, cpu):
        assert NULL.auth_bytes == 0
        assert not NULL.verify_on_delivery
        assert NULL.stamp(keystore, "a", "b",
                          NULL.begin(keystore, "a", "m")) is None
        NULL.charge_send(cpu, 5, 1024)
        assert cpu.busy_us == 0.0

    def test_modeled_charges_but_stamps_nothing(self, keystore):
        cpu = CpuMeter(CostModel())
        assert MODELED_MAC.auth_bytes == MAC_BYTES
        assert not MODELED_MAC.verify_on_delivery
        assert MODELED_MAC.stamp(
            keystore, "a", "b", MODELED_MAC.begin(keystore, "a", "m")) \
            is None
        MODELED_MAC.charge_send(cpu, 3, 512)
        assert cpu.busy_us == pytest.approx(3 * CostModel().mac_cost(512))


class TestRegistry:
    def test_register_and_lookup(self):
        class Probe:
            pass

        assert authenticator_for(Probe) is None
        register(Probe, MAC_VECTOR)
        assert authenticator_for(Probe) is MAC_VECTOR
        register(Probe, MAC_VECTOR)  # idempotent

    def test_rebinding_to_other_policy_rejected(self):
        class Probe2:
            pass

        register(Probe2, NULL)
        with pytest.raises(ValueError):
            register(Probe2, MAC_VECTOR)

    def test_every_protocol_wire_class_is_registered(self):
        """All five protocols' wire messages carry a policy (the registry
        is what the delivery-time verification keys on)."""
        import repro.protocols.base as base
        import repro.protocols.paxos.replica as paxos
        import repro.protocols.pbft.replica as pbft
        import repro.protocols.xpaxos.messages as xmsg
        import repro.protocols.zab.replica as zab
        import repro.protocols.zyzzyva.replica as zyz

        expected = [
            base.ClientRequestMsg, base.GenericReply, base.SyncRequest,
            base.SyncReply,
            paxos.Accept, paxos.Accepted, paxos.Learn, paxos.NewBallot,
            paxos.Promise,
            pbft.PrePrepare, pbft.CommitMsg, pbft.ViewChange, pbft.NewView,
            zyz.OrderReq, zyz.CommitCert, zyz.ViewChange, zyz.NewView,
            zab.Proposal, zab.Ack, zab.CommitZab, zab.FollowerInfo,
            zab.NewEpoch,
            xmsg.Replicate, xmsg.Prepare, xmsg.CommitVote, xmsg.FastPrepare,
            xmsg.FastCommit, xmsg.ReplyMsg, xmsg.Suspect, xmsg.ViewChange,
            xmsg.VcFinal, xmsg.VcConfirm, xmsg.NewView, xmsg.PreChk,
            xmsg.Chkpt, xmsg.LazyChk, xmsg.LazyCommit, xmsg.FetchEntries,
            xmsg.FetchReply, xmsg.ReSend, xmsg.SignedReplyShare,
            xmsg.SignedReplies, xmsg.FaultAccusation,
        ]
        registry = registered_classes()
        missing = [cls.__name__ for cls in expected if cls not in registry]
        assert not missing, missing
        # The two MAC-vector channels are the adversarially exercised ones.
        assert registry[xmsg.PreChk] is MAC_VECTOR
        assert registry[xmsg.ReplyMsg] is MAC_VECTOR
