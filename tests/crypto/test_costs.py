"""Tests for the crypto CPU cost model and meter."""

import pytest

from repro.crypto.costs import CostModel, CpuMeter


class TestCostModel:
    def test_defaults_reflect_rsa_vs_hmac_gap(self):
        model = CostModel()
        # The whole point of Figure 8: signing is orders of magnitude more
        # expensive than MACs.
        assert model.sign_cost() > 100 * model.mac_cost(1024)

    def test_mac_cost_scales_with_size(self):
        model = CostModel()
        assert model.mac_cost(4096) > model.mac_cost(1024)

    def test_digest_cost_scales_with_size(self):
        model = CostModel()
        assert model.digest_cost(4096) > model.digest_cost(0)

    def test_free_model_is_zero(self):
        model = CostModel.free()
        assert model.sign_cost() == 0
        assert model.verify_cost() == 0
        assert model.mac_cost(10_000) == 0
        assert model.digest_cost(10_000) == 0


class TestCpuMeter:
    def test_accumulates_by_category(self):
        meter = CpuMeter(CostModel())
        meter.charge_sign()
        meter.charge_sign()
        meter.charge_verify()
        breakdown = meter.breakdown()
        assert breakdown["sign"] == 2 * CostModel().sign_us
        assert breakdown["verify"] == CostModel().verify_us

    def test_utilisation_percent(self):
        meter = CpuMeter(CostModel())
        # 8000 us busy over 1 ms elapsed = 800% of one core = all 8 cores.
        meter.charge("x", 8_000.0)
        assert meter.utilisation_percent(1.0) == pytest.approx(800.0)

    def test_utilisation_capped_at_core_count(self):
        meter = CpuMeter(CostModel(cores=4))
        meter.charge("x", 1e9)
        assert meter.utilisation_percent(1.0) == 400.0

    def test_utilisation_zero_for_zero_elapsed(self):
        meter = CpuMeter(CostModel())
        meter.charge_sign()
        assert meter.utilisation_percent(0.0) == 0.0

    def test_utilisation_over_measured_window(self):
        # busy_since_us subtracts warmup-time work: 3000 us accumulated in
        # warmup, 2000 us in a 1 ms measured window -> 200%.
        meter = CpuMeter(CostModel())
        meter.charge("x", 3_000.0)
        mark = meter.busy_us
        meter.charge("x", 2_000.0)
        assert meter.utilisation_percent(
            1.0, busy_since_us=mark) == pytest.approx(200.0)

    def test_charge_macs_matches_repeated_charge_mac(self):
        bulk = CpuMeter(CostModel())
        loop = CpuMeter(CostModel())
        bulk.charge_macs(7, 1024)
        for _ in range(7):
            loop.charge_mac(1024)
        assert bulk.busy_us == pytest.approx(loop.busy_us)
        assert bulk.breakdown().keys() == loop.breakdown().keys()

    def test_negative_charge_rejected(self):
        meter = CpuMeter(CostModel())
        with pytest.raises(ValueError):
            meter.charge("x", -1.0)

    def test_reset(self):
        meter = CpuMeter(CostModel())
        meter.charge_mac(1024)
        meter.reset()
        assert meter.busy_us == 0.0
        assert meter.breakdown() == {}
