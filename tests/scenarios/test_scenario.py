"""Tests for the Scenario dataclass and schedule composition helpers."""

import pytest

from repro.common.config import ClusterConfig, ProtocolName
from repro.faults.injector import FaultSchedule
from repro.scenarios import Scenario, builtin_scenarios, get_scenario


class TestScenario:
    def test_defaults_apply_to_every_protocol(self):
        scenario = Scenario(name="x", description="d")
        assert all(scenario.applies_to(p) for p in ProtocolName)

    def test_scoped_scenario_skips_others(self):
        scenario = Scenario(
            name="x", description="d",
            protocols=frozenset({ProtocolName.XPAXOS}))
        assert scenario.applies_to(ProtocolName.XPAXOS)
        assert not scenario.applies_to(ProtocolName.PBFT)

    def test_adversaries_require_protocol_scope(self):
        with pytest.raises(ValueError):
            Scenario(name="x", description="d",
                     adversaries={0: lambda: None})

    def test_adversaries_rejected_on_incapable_protocols(self):
        """On protocols without a byzantine hook the adversary would be
        silently inert -- misgrading the cell -- so it is a spec error."""
        with pytest.raises(ValueError):
            Scenario(name="x", description="d",
                     protocols=frozenset({ProtocolName.PAXOS}),
                     adversaries={0: lambda: None})

    def test_adversaries_accepted_on_xpaxos_scope(self):
        scenario = Scenario(name="x", description="d",
                            protocols=frozenset({ProtocolName.XPAXOS}),
                            adversaries={0: lambda: None})
        assert scenario.applies_to(ProtocolName.XPAXOS)

    def test_duration_must_exceed_warmup(self):
        with pytest.raises(ValueError):
            Scenario(name="x", description="d",
                     duration_ms=100.0, warmup_ms=100.0)

    def test_workload_kwargs_round_trip(self):
        scenario = Scenario(name="x", description="d", num_clients=7,
                            request_size=256, duration_ms=5_000.0,
                            warmup_ms=250.0)
        kwargs = scenario.workload_kwargs()
        assert kwargs == dict(num_clients=7, request_size=256,
                              duration_ms=5_000.0, warmup_ms=250.0)


class TestLibrary:
    def test_at_least_ten_scenarios(self):
        assert len(builtin_scenarios()) >= 10

    def test_names_unique(self):
        names = [s.name for s in builtin_scenarios()]
        assert len(names) == len(set(names))

    def test_lookup_by_name(self):
        assert get_scenario("fault-free").name == "fault-free"

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="fault-free"):
            get_scenario("no-such-scenario")

    def test_anarchy_scenarios_declared(self):
        anarchy = [s for s in builtin_scenarios() if s.expect_anarchy]
        assert len(anarchy) >= 2
        # Anarchy needs a non-crash fault, which only XPaxos models.
        for scenario in anarchy:
            assert scenario.protocols == frozenset({ProtocolName.XPAXOS})
            assert scenario.adversaries

    def test_schedules_build_for_every_in_scope_protocol(self):
        for scenario in builtin_scenarios():
            for protocol in ProtocolName:
                if not scenario.applies_to(protocol):
                    continue
                config = ClusterConfig(t=1, protocol=protocol)
                schedule = scenario.schedule(config)
                assert schedule.end_ms < scenario.duration_ms

    def test_schedules_reference_only_existing_replicas(self):
        for scenario in builtin_scenarios():
            for protocol in ProtocolName:
                if not scenario.applies_to(protocol):
                    continue
                config = ClusterConfig(t=1, protocol=protocol)
                assert config.n is not None
                for event in scenario.schedule(config).events:
                    if event.replica is not None:
                        assert 0 <= event.replica < config.n


class TestScheduleComposition:
    def test_shift_offsets_every_event(self):
        schedule = FaultSchedule().crash_for(100.0, 0, 50.0)
        shifted = schedule.shift(1_000.0)
        assert [e.at_ms for e in shifted.events] == [1_100.0, 1_150.0]
        # The original is untouched.
        assert [e.at_ms for e in schedule.events] == [100.0, 150.0]

    def test_merge_sorts_by_time(self):
        a = FaultSchedule().crash(500.0, 0)
        b = FaultSchedule().recover(100.0, 1)
        merged = a + b
        assert [e.at_ms for e in merged.events] == [100.0, 500.0]
        assert len(a.events) == 1 and len(b.events) == 1

    def test_rolling_crashes_one_at_a_time(self):
        schedule = FaultSchedule.rolling_crashes(
            [0, 1, 2], start_ms=1_000.0, interval_ms=500.0,
            downtime_ms=400.0)
        crashes = [e for e in schedule.events if e.kind == "crash"]
        recovers = [e for e in schedule.events if e.kind == "recover"]
        assert [e.replica for e in crashes] == [0, 1, 2]
        # Each recovery precedes the next crash.
        for recover, crash in zip(recovers, crashes[1:]):
            assert recover.at_ms <= crash.at_ms

    def test_flapping_partition_alternates(self):
        schedule = FaultSchedule.flapping_partition(
            "r0", "r1", start_ms=0.0, period_ms=100.0, flaps=3)
        kinds = [e.kind for e in schedule.events]
        assert kinds == ["partition", "heal"] * 3
        assert schedule.end_ms == 250.0

    def test_flapping_rejects_bad_duty(self):
        with pytest.raises(ValueError):
            FaultSchedule.flapping_partition("a", "b", 0.0, 100.0, 1,
                                             duty=1.5)

    def test_isolate_and_heal_are_symmetric(self):
        schedule = (FaultSchedule()
                    .isolate(10.0, "r0", ["r1", "r2"])
                    .heal_isolation(20.0, "r0", ["r1", "r2"]))
        pairs = [(e.kind, e.pair) for e in schedule.events]
        assert (("partition", ("r0", "r1")) in pairs
                and ("heal", ("r0", "r2")) in pairs)

    def test_suspect_event_requires_replica(self):
        schedule = FaultSchedule().suspect(50.0, 1)
        assert schedule.events[0].kind == "suspect"
        assert schedule.events[0].replica == 1

    def test_end_ms_empty_schedule(self):
        assert FaultSchedule().end_ms == 0.0
