"""Seeded randomized-schedule fuzzing (outside anarchy by construction).

Each case generates a random-but-reproducible fault schedule under the
constraints of :func:`repro.scenarios.fuzz.random_schedule` (no non-crash
faults, at most one replica faulty at a time, everything heals before a
tail window), runs it, and asserts the unconditional XFT guarantees:
total order always, commit progress whenever the system is healthy.
"""

import random

import pytest

from repro.common.config import ProtocolName, sites_for
from repro.faults.liveness import LivenessChecker
from repro.net.latency import LatencyModel
from repro.scenarios.fuzz import random_schedule, schedule_signature
from tests.conftest import make_harness

HORIZON_MS = 6_000.0
XPAXOS_SEEDS = [101, 202, 303, 404, 505]
PBFT_SEEDS = [111, 222, 333]
ZAB_SEEDS = [121, 232, 343]
#: Seeds for the jittered-latency (message-reordering) runs.
REORDER_SEEDS = [17, 29]


def fuzz_run(protocol, seed, passive_only=False,
             kinds=("crash", "isolate"), jitter=0.0, bound_ms=2_000.0):
    latency = None
    if jitter:
        # A widened latency tail makes unrelated links race each other:
        # second-phase votes overtake pre-prepares, commits overtake
        # proposals -- the reordering paths the vote/commit bugfixes
        # guard (still fully deterministic per seed).
        sites = set(sites_for(protocol, 1))
        latency = LatencyModel.uniform(sites, one_way_ms=1.0, seed=seed,
                                       jitter=jitter)
    harness = make_harness(protocol, seed=seed, latency=latency)
    config = harness.runtime.config
    # The passive replica is the last one however large the cluster is.
    victims = [config.n - 1] if passive_only else None
    rng = random.Random(seed)
    schedule = random_schedule(rng, config, HORIZON_MS,
                               victims=victims, kinds=kinds)
    harness.arm(schedule)
    liveness = LivenessChecker(harness.runtime, bound_ms=bound_ms)
    liveness.watch(HORIZON_MS)
    harness.checker.observe_periodically(50.0, HORIZON_MS)
    driver = harness.drive(duration_ms=HORIZON_MS)
    return harness, driver, liveness, schedule


class TestXPaxosFuzz:
    @pytest.mark.parametrize("seed", XPAXOS_SEEDS)
    def test_safety_and_liveness(self, seed):
        harness, driver, liveness, schedule = fuzz_run(
            ProtocolName.XPAXOS, seed)
        # Outside anarchy by construction (tnc = 0 throughout).
        assert not harness.checker.anarchy_observed
        harness.checker.assert_safe()
        liveness.assert_live()
        assert driver.throughput.total > 0


class TestPbftFuzz:
    """Since the baseline view-change work, speculative PBFT survives
    crashes and isolations of *any* single replica -- including the
    primary -- by rotating its active set, so the generator is no longer
    constrained to the passive replica."""

    @pytest.mark.parametrize("seed", PBFT_SEEDS)
    def test_safety_and_liveness(self, seed):
        harness, driver, liveness, schedule = fuzz_run(
            ProtocolName.PBFT, seed)
        assert not harness.checker.anarchy_observed
        harness.checker.assert_safe()
        liveness.assert_live()
        assert driver.throughput.total > 0


class TestZabFuzz:
    @pytest.mark.parametrize("seed", ZAB_SEEDS)
    def test_safety_and_liveness(self, seed):
        harness, driver, liveness, schedule = fuzz_run(
            ProtocolName.ZAB, seed)
        assert not harness.checker.anarchy_observed
        harness.checker.assert_safe()
        liveness.assert_live()
        assert driver.throughput.total > 0


class TestReorderingFuzz:
    """Crash/isolate schedules under a jittered latency model, so that
    messages legitimately overtake each other across links: COMMITs beat
    their PRE-PREPARE (PBFT) and COMMITZABs beat their PROPOSAL (Zab).
    Exercises the (seqno, digest) vote keying and the early-commit buffer
    end to end."""

    @pytest.mark.parametrize("seed", REORDER_SEEDS)
    def test_pbft_reordered_messages_stay_safe(self, seed):
        harness, driver, liveness, _ = fuzz_run(
            ProtocolName.PBFT, seed, jitter=1.5, bound_ms=2_400.0)
        assert not harness.checker.anarchy_observed
        harness.checker.assert_safe()
        liveness.assert_live()
        assert driver.throughput.total > 0

    @pytest.mark.parametrize("seed", REORDER_SEEDS)
    def test_zab_reordered_messages_stay_safe(self, seed):
        harness, driver, liveness, _ = fuzz_run(
            ProtocolName.ZAB, seed, jitter=1.5, bound_ms=2_400.0)
        assert not harness.checker.anarchy_observed
        harness.checker.assert_safe()
        liveness.assert_live()
        assert driver.throughput.total > 0

    def test_reordering_actually_happens(self):
        """The jittered model must actually reorder deliveries (otherwise
        the class above degenerates to the plain fuzz)."""
        sites = set(sites_for(ProtocolName.ZAB, 1))
        latency = LatencyModel.uniform(sites, one_way_ms=1.0, seed=17,
                                       jitter=1.5)
        site_list = sorted(sites)
        draws = [latency.sample_one_way(site_list[0], site_list[1])
                 for _ in range(200)]
        assert max(draws) > min(draws)


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        harness = make_harness(ProtocolName.XPAXOS)
        signatures = []
        for _ in range(2):
            rng = random.Random(42)
            schedule = random_schedule(rng, harness.runtime.config,
                                       HORIZON_MS)
            signatures.append(schedule_signature(schedule))
        assert signatures[0] == signatures[1]
        assert signatures[0]  # non-empty for this seed

    def test_same_seed_same_run(self):
        totals = []
        for _ in range(2):
            _, driver, _, _ = fuzz_run(ProtocolName.XPAXOS, 101)
            totals.append(driver.throughput.total)
        assert totals[0] == totals[1]

    def test_different_seeds_differ(self):
        harness = make_harness(ProtocolName.XPAXOS)
        signatures = []
        for seed in (1, 2, 3, 4):
            rng = random.Random(seed)
            schedule = random_schedule(rng, harness.runtime.config,
                                       HORIZON_MS)
            signatures.append(tuple(schedule_signature(schedule)))
        assert len(set(signatures)) > 1


class TestGeneratorConstraints:
    @pytest.mark.parametrize("seed", range(20))
    def test_one_fault_at_a_time_and_healed_tail(self, seed):
        harness = make_harness(ProtocolName.XPAXOS)
        rng = random.Random(seed)
        schedule = random_schedule(rng, harness.runtime.config, HORIZON_MS)
        down = set()
        blocked = set()
        for event in sorted(schedule.events, key=lambda e: e.at_ms):
            if event.kind == "crash":
                assert not down and not blocked
                down.add(event.replica)
            elif event.kind == "recover":
                down.discard(event.replica)
            elif event.kind == "partition":
                assert not down
                blocked.add(event.pair)
            elif event.kind == "heal":
                blocked.discard(event.pair)
        assert not down and not blocked  # everything healed
        assert schedule.end_ms <= HORIZON_MS - 2_000.0

    def test_victim_restriction_respected(self):
        harness = make_harness(ProtocolName.PBFT)
        rng = random.Random(7)
        schedule = random_schedule(rng, harness.runtime.config, HORIZON_MS,
                                   victims=[3], kinds=("crash",))
        for event in schedule.events:
            assert event.kind in ("crash", "recover")
            assert event.replica == 3

    def test_rejects_empty_victims_and_bad_kinds(self):
        harness = make_harness()
        rng = random.Random(0)
        with pytest.raises(ValueError):
            random_schedule(rng, harness.runtime.config, HORIZON_MS,
                            victims=[])
        with pytest.raises(ValueError):
            random_schedule(rng, harness.runtime.config, HORIZON_MS,
                            kinds=("crash", "meteor"))
