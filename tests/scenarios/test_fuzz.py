"""Seeded randomized-schedule fuzzing (outside anarchy by construction).

Each case generates a random-but-reproducible fault schedule under the
constraints of :func:`repro.scenarios.fuzz.random_schedule` (no non-crash
faults, at most one replica faulty at a time, everything heals before a
tail window), runs it, and asserts the unconditional XFT guarantees:
total order always, commit progress whenever the system is healthy.
"""

import random

import pytest

from repro.common.config import ProtocolName
from repro.faults.liveness import LivenessChecker
from repro.scenarios.fuzz import random_schedule, schedule_signature
from tests.conftest import make_harness

HORIZON_MS = 6_000.0
XPAXOS_SEEDS = [101, 202, 303, 404, 505]
PBFT_SEEDS = [111, 222, 333]


def fuzz_run(protocol, seed, passive_only=False,
             kinds=("crash", "isolate")):
    harness = make_harness(protocol, seed=seed)
    config = harness.runtime.config
    # The passive replica is the last one however large the cluster is.
    victims = [config.n - 1] if passive_only else None
    rng = random.Random(seed)
    schedule = random_schedule(rng, config, HORIZON_MS,
                               victims=victims, kinds=kinds)
    harness.arm(schedule)
    liveness = LivenessChecker(harness.runtime, bound_ms=2_000.0)
    liveness.watch(HORIZON_MS)
    harness.checker.observe_periodically(50.0, HORIZON_MS)
    driver = harness.drive(duration_ms=HORIZON_MS)
    return harness, driver, liveness, schedule


class TestXPaxosFuzz:
    @pytest.mark.parametrize("seed", XPAXOS_SEEDS)
    def test_safety_and_liveness(self, seed):
        harness, driver, liveness, schedule = fuzz_run(
            ProtocolName.XPAXOS, seed)
        # Outside anarchy by construction (tnc = 0 throughout).
        assert not harness.checker.anarchy_observed
        harness.checker.assert_safe()
        liveness.assert_live()
        assert driver.throughput.total > 0


class TestPbftFuzz:
    """PBFT here is the fixed-leader speculative baseline: only faults on
    the passive replica are survivable, so the generator is constrained
    to it -- which is itself the paper's point about the baselines."""

    @pytest.mark.parametrize("seed", PBFT_SEEDS)
    def test_safety_and_liveness(self, seed):
        harness, driver, liveness, schedule = fuzz_run(
            ProtocolName.PBFT, seed, passive_only=True, kinds=("crash",))
        assert not harness.checker.anarchy_observed
        harness.checker.assert_safe()
        liveness.assert_live()
        assert driver.throughput.total > 0


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        harness = make_harness(ProtocolName.XPAXOS)
        signatures = []
        for _ in range(2):
            rng = random.Random(42)
            schedule = random_schedule(rng, harness.runtime.config,
                                       HORIZON_MS)
            signatures.append(schedule_signature(schedule))
        assert signatures[0] == signatures[1]
        assert signatures[0]  # non-empty for this seed

    def test_same_seed_same_run(self):
        totals = []
        for _ in range(2):
            _, driver, _, _ = fuzz_run(ProtocolName.XPAXOS, 101)
            totals.append(driver.throughput.total)
        assert totals[0] == totals[1]

    def test_different_seeds_differ(self):
        harness = make_harness(ProtocolName.XPAXOS)
        signatures = []
        for seed in (1, 2, 3, 4):
            rng = random.Random(seed)
            schedule = random_schedule(rng, harness.runtime.config,
                                       HORIZON_MS)
            signatures.append(tuple(schedule_signature(schedule)))
        assert len(set(signatures)) > 1


class TestGeneratorConstraints:
    @pytest.mark.parametrize("seed", range(20))
    def test_one_fault_at_a_time_and_healed_tail(self, seed):
        harness = make_harness(ProtocolName.XPAXOS)
        rng = random.Random(seed)
        schedule = random_schedule(rng, harness.runtime.config, HORIZON_MS)
        down = set()
        blocked = set()
        for event in sorted(schedule.events, key=lambda e: e.at_ms):
            if event.kind == "crash":
                assert not down and not blocked
                down.add(event.replica)
            elif event.kind == "recover":
                down.discard(event.replica)
            elif event.kind == "partition":
                assert not down
                blocked.add(event.pair)
            elif event.kind == "heal":
                blocked.discard(event.pair)
        assert not down and not blocked  # everything healed
        assert schedule.end_ms <= HORIZON_MS - 2_000.0

    def test_victim_restriction_respected(self):
        harness = make_harness(ProtocolName.PBFT)
        rng = random.Random(7)
        schedule = random_schedule(rng, harness.runtime.config, HORIZON_MS,
                                   victims=[3], kinds=("crash",))
        for event in schedule.events:
            assert event.kind in ("crash", "recover")
            assert event.replica == 3

    def test_rejects_empty_victims_and_bad_kinds(self):
        harness = make_harness()
        rng = random.Random(0)
        with pytest.raises(ValueError):
            random_schedule(rng, harness.runtime.config, HORIZON_MS,
                            victims=[])
        with pytest.raises(ValueError):
            random_schedule(rng, harness.runtime.config, HORIZON_MS,
                            kinds=("crash", "meteor"))
