"""Tests for the liveness checker."""

import pytest

from repro.common.config import ProtocolName
from repro.faults.liveness import LivenessChecker, default_eligible
from repro.faults.injector import FaultSchedule
from tests.conftest import make_harness


class TestEligibility:
    def test_healthy_cluster_is_eligible(self):
        harness = make_harness()
        assert default_eligible(harness.runtime)

    def test_crash_suspends_eligibility(self):
        harness = make_harness()
        harness.replica(1).crash()
        assert not default_eligible(harness.runtime)
        harness.replica(1).recover()
        assert default_eligible(harness.runtime)

    def test_partition_suspends_eligibility(self):
        harness = make_harness()
        harness.runtime.network.partitions.block_pair("r0", "r1")
        assert not default_eligible(harness.runtime)


class TestWatch:
    def test_healthy_run_has_no_violations(self):
        harness = make_harness()
        checker = LivenessChecker(harness.runtime, bound_ms=1_000.0)
        checker.watch(3_000.0)
        harness.drive(duration_ms=3_000.0)
        checker.assert_live()

    def test_idle_cluster_without_clients_violates(self):
        """A healthy cluster whose commits stop is exactly what the
        checker exists to catch."""
        harness = make_harness()
        checker = LivenessChecker(harness.runtime, bound_ms=500.0)
        checker.watch(3_000.0)
        # Nobody drives the clients: no commits ever happen.
        harness.runtime.sim.run(until=3_000.0)
        assert checker.violations
        first = checker.violations[0]
        assert first.at_ms - first.stalled_since_ms > 500.0
        with pytest.raises(AssertionError):
            checker.assert_live()

    def test_stall_during_fault_window_is_excused(self):
        """Blackouts caused by injected faults never count: the clock
        starts only when the system is healthy again."""
        harness = make_harness(ProtocolName.PAXOS)
        harness.arm(FaultSchedule()
                    .crash_for(1_000.0, 1, 1_500.0)
                    .crash_for(1_000.0, 2, 1_500.0))
        checker = LivenessChecker(harness.runtime, bound_ms=1_200.0)
        checker.watch(6_000.0)
        harness.drive(duration_ms=6_000.0)
        checker.assert_live()

    def test_violation_reported_once_per_stall(self):
        harness = make_harness()
        checker = LivenessChecker(harness.runtime, bound_ms=300.0)
        checker.watch(5_000.0)
        harness.runtime.sim.run(until=5_000.0)
        assert len(checker.violations) == 1

    def test_one_live_event_at_a_time(self):
        harness = make_harness()
        checker = LivenessChecker(harness.runtime, bound_ms=1_000.0,
                                  period_ms=10.0)
        before = harness.sim.pending
        checker.watch(10_000_000.0)
        assert harness.sim.pending == before + 1

    def test_rejects_bad_parameters(self):
        harness = make_harness()
        with pytest.raises(ValueError):
            LivenessChecker(harness.runtime, bound_ms=0.0)
        with pytest.raises(ValueError):
            LivenessChecker(harness.runtime, bound_ms=10.0, period_ms=0.0)

    def test_custom_eligibility_hook(self):
        harness = make_harness()
        checker = LivenessChecker(harness.runtime, bound_ms=300.0,
                                  eligible=lambda runtime: False)
        checker.watch(3_000.0)
        harness.runtime.sim.run(until=3_000.0)
        assert checker.violations == []  # never eligible, never required
