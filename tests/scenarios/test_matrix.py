"""The scenario conformance matrix, parametrized cell by cell.

This package is the repo's standing correctness net: every protocol runs
every in-scope scenario of the built-in library and must satisfy its
safety/liveness invariants.  A perf or refactor PR that breaks fault
handling fails here with the exact ``(protocol, scenario)`` cell named.
"""

import pytest

from repro.common.config import ProtocolName
from repro.harness.matrix import (
    EXPECTED_VIOLATION,
    FAIL,
    MatrixRunner,
    PASS,
    SKIPPED,
)
from repro.scenarios import builtin_scenarios, get_scenario

SCENARIOS = builtin_scenarios()


@pytest.mark.parametrize("protocol", list(ProtocolName),
                         ids=[p.value for p in ProtocolName])
@pytest.mark.parametrize("scenario", SCENARIOS,
                         ids=[s.name for s in SCENARIOS])
class TestConformanceMatrix:
    def test_cell(self, scenario, protocol):
        cell = MatrixRunner(seed=0).run_cell(protocol, scenario)
        if not scenario.applies_to(protocol):
            assert cell.status == SKIPPED
            return
        if scenario.expect_anarchy:
            # The cell documents the boundary: anarchy must actually be
            # reached, and safety is then exempt by Definition 3.
            assert cell.status == EXPECTED_VIOLATION, cell.detail
            assert cell.anarchy_observed
            return
        assert cell.status == PASS, cell.detail
        assert cell.committed >= scenario.min_committed
        assert cell.safety_violations == 0
        assert not cell.anarchy_observed


class TestCellGrading:
    def test_out_of_scope_cell_is_skipped(self):
        # Byzantine scenarios need the non-crash adversary hook, which
        # only XPaxos models -- the last genuinely out-of-scope cells.
        cell = MatrixRunner().run_cell(
            ProtocolName.PBFT, get_scenario("byzantine-primary-data-loss"))
        assert cell.status == SKIPPED and cell.ok

    def test_crash_primary_now_in_scope_for_baselines(self):
        """The baseline view-change work brought the leader-fault cells
        into scope: a crashed PBFT primary must no longer stall the
        protocol forever."""
        cell = MatrixRunner(seed=0).run_cell(ProtocolName.PBFT,
                                             get_scenario("crash-primary"))
        assert cell.status == PASS, cell.detail
        assert cell.liveness_violations == 0

    def test_detection_expectation_enforced(self):
        scenario = get_scenario("byzantine-primary-data-loss")
        cell = MatrixRunner(seed=0).run_cell(ProtocolName.XPAXOS, scenario)
        assert cell.status == PASS and cell.detection_ok

    def test_convicted_expectation_names_the_culprit(self):
        """The detection scenarios assert *which* replica the fault
        detector convicts, not merely that someone is."""
        scenario = get_scenario("byzantine-primary-data-loss")
        assert scenario.convicted == frozenset({0})
        cell = MatrixRunner(seed=0).run_cell(ProtocolName.XPAXOS, scenario)
        assert cell.convicted == [0]
        assert cell.status == PASS

    def test_wrong_convicted_expectation_fails_the_cell(self):
        import dataclasses

        scenario = dataclasses.replace(
            get_scenario("byzantine-primary-data-loss"),
            convicted=frozenset({2}))
        cell = MatrixRunner(seed=0).run_cell(ProtocolName.XPAXOS, scenario)
        assert cell.status == FAIL
        assert "convicted" in cell.detail

    def test_t2_scenario_runs_five_replica_clusters(self):
        scenario = get_scenario("crash-two-followers-t2")
        runner = MatrixRunner(seed=0)
        config = runner.base_config(ProtocolName.PAXOS, scenario)
        assert config.t == 2 and config.n == 5
        cell = runner.run_cell(ProtocolName.PAXOS, scenario)
        assert cell.status == PASS, cell.detail

    def test_same_seed_is_byte_identical(self):
        scenario = get_scenario("crash-follower")
        runs = []
        for _ in range(2):
            runner = MatrixRunner(seed=5)
            result = runner.run_matrix(scenarios=[scenario],
                                       protocols=[ProtocolName.XPAXOS])
            runs.append(result.to_json())
        assert runs[0] == runs[1]

    def test_invariants_hold_across_seeds(self):
        scenario = get_scenario("fault-free")
        cells = [MatrixRunner(seed=seed).run_cell(ProtocolName.XPAXOS,
                                                  scenario)
                 for seed in (0, 1)]
        assert all(c.status == PASS for c in cells)
        assert all(c.seed == seed for c, seed in zip(cells, (0, 1)))

    def test_grid_formats_every_cell(self):
        runner = MatrixRunner(seed=0)
        result = runner.run_matrix(
            scenarios=[get_scenario("fault-free")],
            protocols=list(ProtocolName))
        grid = result.format_grid()
        for protocol in ProtocolName:
            assert protocol.value in grid
        assert "fault-free" in grid
        assert "5 pass" in grid

    def test_matrix_result_lookup_and_failures(self):
        result = MatrixRunner(seed=0).run_matrix(
            scenarios=[get_scenario("fault-free")],
            protocols=[ProtocolName.PAXOS])
        cell = result.cell(ProtocolName.PAXOS, "fault-free")
        assert cell.status == PASS
        assert result.failures == []
        with pytest.raises(KeyError):
            result.cell(ProtocolName.ZAB, "fault-free")
