"""Tests for deterministic random-stream derivation."""

import pytest
from hypothesis import given, strategies as st

from repro.common.rng import (
    derive_seed,
    exponential_backoff,
    lognormal_from_percentiles,
    stream,
    zipf_keys,
)


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_path_sensitivity(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")

    def test_root_seed_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_streams_are_independent(self):
        a = stream(7, "latency")
        b = stream(7, "faults")
        assert [a.random() for _ in range(5)] != \
            [b.random() for _ in range(5)]

    def test_stream_replayable(self):
        first = [stream(7, "x").random() for _ in range(1)][0]
        second = stream(7, "x").random()
        assert first == second


class TestLognormal:
    def test_median_tracks_target(self):
        rng = stream(3, "test")
        samples = sorted(
            lognormal_from_percentiles(rng, median=100.0, p9999=1000.0)
            for _ in range(4001))
        assert samples[2000] == pytest.approx(100.0, rel=0.1)

    def test_degenerate_tail_is_constant(self):
        rng = stream(3, "test")
        value = lognormal_from_percentiles(rng, median=50.0, p9999=50.0)
        assert value == pytest.approx(50.0)

    def test_invalid_inputs(self):
        rng = stream(3, "test")
        with pytest.raises(ValueError):
            lognormal_from_percentiles(rng, median=0.0, p9999=10.0)
        with pytest.raises(ValueError):
            lognormal_from_percentiles(rng, median=10.0, p9999=5.0)


class TestBackoff:
    def test_doubles_and_caps(self):
        assert exponential_backoff(100.0, 0) == 100.0
        assert exponential_backoff(100.0, 3) == 800.0
        assert exponential_backoff(100.0, 20, cap_ms=5_000.0) == 5_000.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            exponential_backoff(0.0, 1)
        with pytest.raises(ValueError):
            exponential_backoff(10.0, -1)


class TestZipf:
    def test_uniform_when_skew_zero(self):
        keys = zipf_keys(stream(5, "z"), n_keys=10, skew=0.0)
        drawn = [next(keys) for _ in range(1000)]
        assert set(drawn) == set(range(10))

    def test_skew_concentrates_on_low_keys(self):
        keys = zipf_keys(stream(5, "z"), n_keys=100, skew=1.2)
        drawn = [next(keys) for _ in range(2000)]
        head = sum(1 for k in drawn if k < 10)
        assert head > 0.5 * len(drawn)

    def test_bounds(self):
        keys = zipf_keys(stream(5, "z"), n_keys=7, skew=0.8)
        assert all(0 <= next(keys) < 7 for _ in range(500))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            next(zipf_keys(stream(1, "z"), n_keys=0, skew=1.0))
        with pytest.raises(ValueError):
            next(zipf_keys(stream(1, "z"), n_keys=5, skew=-1.0))
