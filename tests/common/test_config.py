"""Tests for configuration validation and defaults."""

import pytest

from repro.common.config import (
    ClusterConfig,
    MetricsConfig,
    ProtocolName,
    ReplicaCount,
    WorkloadConfig,
    sites_for,
)
from repro.common.errors import ConfigurationError


class TestClusterConfig:
    def test_defaults_match_paper(self):
        config = ClusterConfig()
        assert config.t == 1
        assert config.n == 3
        assert config.batch_size == 20         # Section 5.1.2
        assert config.delta_ms == 1250.0       # Section 5.1.1
        assert config.protocol is ProtocolName.XPAXOS

    def test_n_defaults_per_protocol_class(self):
        assert ClusterConfig(t=2, protocol=ProtocolName.PAXOS).n == 5
        assert ClusterConfig(t=2, protocol=ProtocolName.PBFT).n == 7
        assert ClusterConfig(t=2, protocol=ProtocolName.ZYZZYVA).n == 7
        assert ClusterConfig(t=2, protocol=ProtocolName.ZAB).n == 5

    def test_undersized_n_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(t=2, protocol=ProtocolName.XPAXOS, n=4)

    def test_invalid_t_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(t=0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(batch_size=0)
        with pytest.raises(ConfigurationError):
            ClusterConfig(delta_ms=0.0)
        with pytest.raises(ConfigurationError):
            ClusterConfig(checkpoint_period=0)
        with pytest.raises(ConfigurationError):
            ClusterConfig(pipeline_depth=0)

    def test_short_site_list_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(t=1, sites=("CA", "VA"))

    def test_quorum(self):
        assert ClusterConfig(t=1).quorum == 2
        assert ClusterConfig(t=2).quorum == 3
        assert ClusterConfig(t=1, protocol=ProtocolName.PBFT).quorum == 3

    def test_active_count_per_protocol(self):
        assert ClusterConfig(t=2).active_count == 3                   # t+1
        assert ClusterConfig(
            t=2, protocol=ProtocolName.PAXOS).active_count == 3
        assert ClusterConfig(
            t=2, protocol=ProtocolName.PBFT).active_count == 5        # 2t+1
        assert ClusterConfig(
            t=2, protocol=ProtocolName.ZYZZYVA).active_count == 7     # all
        assert ClusterConfig(
            t=2, protocol=ProtocolName.ZAB).active_count == 5         # all

    def test_replica_ids(self):
        assert list(ClusterConfig(t=1).replica_ids()) == [0, 1, 2]


class TestReplicaCount:
    def test_n_formulas(self):
        assert ReplicaCount.CFT.n(3) == 7
        assert ReplicaCount.BFT.n(3) == 10

    def test_protocol_classification(self):
        assert ProtocolName.XPAXOS.replicas_for is ReplicaCount.CFT
        assert ProtocolName.PAXOS.replicas_for is ReplicaCount.CFT
        assert ProtocolName.ZAB.replicas_for is ReplicaCount.CFT
        assert ProtocolName.PBFT.replicas_for is ReplicaCount.BFT
        assert ProtocolName.ZYZZYVA.replicas_for is ReplicaCount.BFT


class TestSites:
    def test_sites_for_rejects_unknown_t(self):
        with pytest.raises(ConfigurationError):
            sites_for(ProtocolName.XPAXOS, 5)

    def test_t1_placement(self):
        assert sites_for(ProtocolName.XPAXOS, 1) == ("CA", "VA", "JP")

    def test_t2_placement_lengths(self):
        assert len(sites_for(ProtocolName.XPAXOS, 2)) == 5
        assert len(sites_for(ProtocolName.ZYZZYVA, 2)) == 7


class TestMetricsConfig:
    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsConfig(throughput_window_ms=0.0)
