"""Suppression comments and the baseline mechanism.

The contract under test (see ``docs/static-analysis.md``): an inline
``# repro: lint-ok[ID]`` silences exactly that rule at that line; the
committed baseline absorbs exact ``(file, rule, line)`` matches; a
baseline entry whose violation was fixed is *stale* and fails the run.
"""

from __future__ import annotations

import json

from repro.analysis import run_lint, write_baseline
from repro.analysis.findings import Finding
from tests.analysis.conftest import line_of, write_tree

DIRTY = """\
    import random


    def pick(options):
        return random.choice(options)


    def jitter():
        return random.random()
"""


def _dirty_tree(tmp_path):
    return write_tree(tmp_path, {"pkg/sampler.py": DIRTY})


class TestSuppressions:
    def test_same_line_marker_silences_one_finding(self, tmp_path):
        src = DIRTY.replace(
            "random.choice(options)",
            "random.choice(options)  # repro: lint-ok[D001]")
        write_tree(tmp_path, {"pkg/sampler.py": src})
        report = run_lint([str(tmp_path)], baseline_path=None)
        assert [f.line for f in report.findings] == [
            line_of(src, "random.random")]
        assert [f.line for f in report.suppressed] == [
            line_of(src, "random.choice")]

    def test_comment_above_silences_next_line(self, tmp_path):
        src = DIRTY.replace(
            "        return random.random()",
            "        # deliberate: exercises the guard\n"
            "        # repro: lint-ok[D001]\n"
            "        return random.random()")
        write_tree(tmp_path, {"pkg/sampler.py": src})
        report = run_lint([str(tmp_path)], baseline_path=None)
        assert [f.line for f in report.findings] == [
            line_of(src, "random.choice")]
        assert len(report.suppressed) == 1

    def test_marker_for_another_rule_does_not_silence(self, tmp_path):
        src = DIRTY.replace(
            "random.choice(options)",
            "random.choice(options)  # repro: lint-ok[S002]")
        write_tree(tmp_path, {"pkg/sampler.py": src})
        report = run_lint([str(tmp_path)], baseline_path=None)
        assert len(report.findings) == 2
        assert report.suppressed == []

    def test_comma_separated_ids(self, tmp_path):
        src = """\
            import heapq  # repro: lint-ok[S002, D001]
        """
        write_tree(tmp_path, {"pkg/q.py": src})
        report = run_lint([str(tmp_path)], baseline_path=None)
        assert report.findings == []
        assert len(report.suppressed) == 1


class TestBaseline:
    def test_baselined_findings_do_not_fail(self, tmp_path):
        root = _dirty_tree(tmp_path)
        dirty = run_lint([str(root)], baseline_path=None)
        assert len(dirty.findings) == 2
        baseline = tmp_path / "lint_baseline.json"
        write_baseline(str(baseline), dirty.findings)
        report = run_lint([str(root)], baseline_path=str(baseline))
        assert report.ok
        assert len(report.baselined) == 2
        assert report.findings == []

    def test_stale_entry_is_reported_and_fails(self, tmp_path):
        root = _dirty_tree(tmp_path)
        dirty = run_lint([str(root)], baseline_path=None)
        baseline = tmp_path / "lint_baseline.json"
        # Baseline today's findings plus one entry whose violation was
        # already fixed (nothing at line 999).
        ghost = Finding(file=dirty.findings[0].file, line=999,
                        rule="D001", message="already fixed")
        write_baseline(str(baseline), list(dirty.findings) + [ghost])
        report = run_lint([str(root)], baseline_path=str(baseline))
        assert not report.ok
        assert report.findings == []
        assert [e["line"] for e in report.stale_baseline] == [999]

    def test_fixing_a_baselined_violation_makes_it_stale(self, tmp_path):
        root = _dirty_tree(tmp_path)
        baseline = tmp_path / "lint_baseline.json"
        write_baseline(str(baseline),
                       run_lint([str(root)], baseline_path=None).findings)
        # "Fix" one violation: the entry for it must now be stale.
        path = root / "pkg" / "sampler.py"
        path.write_text(path.read_text().replace(
            "return random.random()", "return 4  # fixed"))
        report = run_lint([str(root)], baseline_path=str(baseline))
        assert not report.ok
        assert len(report.stale_baseline) == 1

    def test_only_run_ignores_other_rules_entries(self, tmp_path):
        root = _dirty_tree(tmp_path)
        baseline = tmp_path / "lint_baseline.json"
        # Baseline carries a D001 entry; a B001-only run has no opinion
        # on it -- neither matched nor stale.
        write_baseline(str(baseline),
                       run_lint([str(root)], baseline_path=None).findings)
        report = run_lint([str(root)], only=["B001"],
                          baseline_path=str(baseline))
        assert report.ok
        assert report.stale_baseline == []

    def test_line_drift_is_a_new_finding_plus_stale_entry(self, tmp_path):
        root = _dirty_tree(tmp_path)
        baseline = tmp_path / "lint_baseline.json"
        write_baseline(str(baseline),
                       run_lint([str(root)], baseline_path=None).findings)
        # Shift every line down by one: the old entries no longer match.
        path = root / "pkg" / "sampler.py"
        path.write_text("# shifted\n" + path.read_text())
        report = run_lint([str(root)], baseline_path=str(baseline))
        assert not report.ok
        assert len(report.findings) == 2
        assert len(report.stale_baseline) == 2

    def test_malformed_baseline_raises(self, tmp_path):
        root = _dirty_tree(tmp_path)
        baseline = tmp_path / "lint_baseline.json"
        baseline.write_text("{\"version\": 1")
        try:
            run_lint([str(root)], baseline_path=str(baseline))
        except ValueError as exc:
            assert "malformed baseline" in str(exc)
        else:
            raise AssertionError("malformed baseline must raise")

    def test_write_baseline_round_trips_sorted(self, tmp_path):
        baseline = tmp_path / "lint_baseline.json"
        findings = [
            Finding(file="b.py", line=2, rule="D001", message="m"),
            Finding(file="a.py", line=9, rule="S002", message="m"),
        ]
        write_baseline(str(baseline), findings)
        payload = json.loads(baseline.read_text())
        assert payload["version"] == 1
        assert [e["file"] for e in payload["findings"]] == ["a.py", "b.py"]
