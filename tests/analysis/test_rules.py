"""Each rule family fires with the exact rule id and line number.

Every test injects a deliberate violation into a generated fixture tree
and asserts (a) the right rule fires at the right ``file:line``, and
(b) the sanctioned idiom next to it stays silent.
"""

from __future__ import annotations

from tests.analysis.conftest import found, line_of, rules_fired

# ---------------------------------------------------------------------------
# D-series: determinism
# ---------------------------------------------------------------------------

D001_SRC = """\
    import os
    import random
    import uuid


    def pick(options):
        return random.choice(options)


    def token():
        return os.urandom(8), uuid.uuid4()


    def sanctioned(rng):
        # Draws on an instance are the seeded-stream idiom.
        seeded = random.Random(7)
        return rng.random() + seeded.random()
"""


class TestD001GlobalRng:
    def test_draw_and_entropy_fire_at_exact_lines(self, lint_tree):
        report = lint_tree({"pkg/sampler.py": D001_SRC})
        hits = found(report, "D001")
        assert (
            "pkg/sampler.py", line_of(D001_SRC, "random.choice")) in hits
        assert ("pkg/sampler.py", line_of(D001_SRC, "os.urandom")) in hits
        # choice, urandom and uuid4 each fire (urandom/uuid4 share a line)
        assert len(hits) == 3
        assert rules_fired(report) == ["D001"]

    def test_rng_module_is_allowlisted(self, lint_tree):
        report = lint_tree({"repro/common/rng.py": D001_SRC})
        assert found(report, "D001") == []


D002_SRC = """\
    import time
    from datetime import datetime


    def stamp():
        return time.time(), time.perf_counter()


    def today():
        return datetime.now()


    def virtual(sim):
        return sim.now
"""


class TestD002WallClock:
    def test_clock_reads_fire(self, lint_tree):
        report = lint_tree({"pkg/metrics.py": D002_SRC})
        hits = found(report, "D002")
        assert ("pkg/metrics.py", line_of(D002_SRC, "time.time()")) in hits
        assert ("pkg/metrics.py", line_of(D002_SRC, "datetime.now")) in hits
        # time.time, perf_counter and datetime.now each fire
        assert len(hits) == 3
        assert rules_fired(report) == ["D002"]

    def test_harness_timing_modules_are_allowlisted(self, lint_tree):
        report = lint_tree({
            "repro/harness/perf.py": D002_SRC,
            "repro/harness/profiling.py": D002_SRC,
        })
        assert found(report, "D002") == []


D003_SRC = """\
    def grade(slots_a, slots_b, names):
        for seqno in set(slots_a) & set(slots_b):
            check(seqno)
        for name in {n.strip() for n in names}:
            check(name)
        replicas = [r for r in frozenset(names)]
        for seqno in sorted(set(slots_a) | set(slots_b)):
            check(seqno)
        for item in sorted({1, 2, 3}):
            check(item)
"""


class TestD003SetIteration:
    def test_set_iterations_fire_and_sorted_is_silent(self, lint_tree):
        report = lint_tree({"pkg/checker.py": D003_SRC})
        hits = found(report, "D003")
        assert ("pkg/checker.py",
                line_of(D003_SRC, "set(slots_a) & set(slots_b)")) in hits
        assert ("pkg/checker.py",
                line_of(D003_SRC, "{n.strip() for n in names}")) in hits
        assert ("pkg/checker.py",
                line_of(D003_SRC, "frozenset(names)")) in hits
        # The two sorted(...) loops must not fire.
        assert len(hits) == 3


# ---------------------------------------------------------------------------
# A-series: authentication
# ---------------------------------------------------------------------------

A001_MESSAGES = """\
    from dataclasses import dataclass


    def register(cls, policy):
        return cls


    def register_modeled(cls):
        return register(cls, "modeled-mac")


    @dataclass(frozen=True)
    class Ping:
        seq: int


    @dataclass(frozen=True)
    class Pong:
        seq: int


    @dataclass(frozen=True)
    class Probe:
        seq: int


    @dataclass(frozen=True)
    class Accuse:
        who: int


    @register_modeled
    @dataclass(frozen=True)
    class Hello:
        who: int


    @dataclass(frozen=True)
    class Inner:
        data: bytes


    register(Pong, "null")

    for _cls in (Probe,):
        register(_cls, "null")
"""

A001_REPLICA = """\
    from pkg.protocols.demo.messages import Accuse, Hello, Ping, Pong, Probe


    def fanout(net, names):
        m = Ping(1)
        net.multicast_authenticated(names, m, size_bytes=64)
        net.send("r1", Pong(2))
        probe = Probe(3)
        net.send_authenticated("r2", probe)


    def build_hello():
        return Hello(0)


    def greet(net):
        h = build_hello()
        net.multicast(["a", "b"], h)


    def forward(net, accusation: Accuse):
        net.multicast_authenticated(["a"], accusation)


    def accuse(net):
        forward(net, Accuse(4))
"""


class TestA001UnregisteredWireMessage:
    def fixture(self):
        return {
            "pkg/protocols/demo/messages.py": A001_MESSAGES,
            "pkg/protocols/demo/replica.py": A001_REPLICA,
        }

    def test_only_the_sent_unregistered_classes_fire(self, lint_tree):
        report = lint_tree(self.fixture())
        hits = found(report, "A001")
        # Ping: sent via a local, never registered -> fires at its def.
        assert ("demo/messages.py",
                line_of(A001_MESSAGES, "class Ping")) in hits
        # Accuse: reaches the transport through an annotated parameter.
        assert ("demo/messages.py",
                line_of(A001_MESSAGES, "class Accuse")) in hits
        # Pong (direct register), Probe (tuple-loop register), Hello
        # (decorator register + helper-return send) and Inner (never
        # sent) must all stay silent.
        assert len(hits) == 2

    def test_smr_messages_path_is_in_scope(self, lint_tree):
        report = lint_tree({
            "pkg/smr/messages.py": """\
                from dataclasses import dataclass


                @dataclass(frozen=True)
                class Bare:
                    x: int
            """,
            "pkg/smr/runtime.py": """\
                from pkg.smr.messages import Bare


                def go(net):
                    net.send("r0", Bare(1))
            """,
        })
        assert len(found(report, "A001")) == 1

    def test_non_messages_modules_are_out_of_scope(self, lint_tree):
        report = lint_tree({
            "pkg/app.py": """\
                from dataclasses import dataclass


                @dataclass
                class Loose:
                    x: int


                def go(net):
                    net.send("r0", Loose(1))
            """,
        })
        assert found(report, "A001") == []


A002_CACHE = """\
from dataclasses import dataclass


@dataclass(frozen=True)
class Entry:
    value: int

    def __post_init__(self):
        object.__setattr__(self, "value", abs(self.value))


def poke(entry, digest):
    object.__setattr__(entry, "value", 7)


def memo(entry, digest):
    object.__setattr__(entry, "_cached_digest", digest)  # repro: lint-ok[A002] fixture suppression
"""


class TestA002FrozenMessageMutation:
    def fixture(self):
        return {"pkg/protocols/demo/state.py": A002_CACHE}

    def test_mutation_outside_post_init_fires(self, lint_tree):
        report = lint_tree(self.fixture())
        hits = found(report, "A002")
        assert ("demo/state.py",
                line_of(A002_CACHE, 'object.__setattr__(entry, "value"')) \
            in hits
        assert len(hits) == 1  # __post_init__ and the suppression stay quiet

    def test_crypto_primitives_is_exempt(self, lint_tree):
        report = lint_tree({
            "pkg/crypto/primitives.py": """\
                def cache_on_instance(obj, attr, value):
                    object.__setattr__(obj, attr, value)
            """,
        })
        assert found(report, "A002") == []

    def test_nested_function_inside_post_init_is_allowed(self, lint_tree):
        report = lint_tree({
            "pkg/app.py": """\
                from dataclasses import dataclass


                @dataclass(frozen=True)
                class Conf:
                    n: int

                    def __post_init__(self):
                        def fix(v):
                            object.__setattr__(self, "n", v)
                        fix(3)
            """,
        })
        assert found(report, "A002") == []


# ---------------------------------------------------------------------------
# S-series: simulator hygiene
# ---------------------------------------------------------------------------

S001_SRC = """\
    def schedule(callback, pending=[]):
        pending.append(callback)


    def init(opts={}, tags=set(), order=None):
        return opts, tags, order


    def fine(callback, pending=None, limit=8, name=""):
        return pending
"""


class TestS001MutableDefault:
    def test_mutable_defaults_fire(self, lint_tree):
        report = lint_tree({"pkg/sched.py": S001_SRC})
        hits = found(report, "S001")
        assert ("pkg/sched.py", line_of(S001_SRC, "pending=[]")) in hits
        assert ("pkg/sched.py", line_of(S001_SRC, "opts={}")) in hits
        assert len(hits) == 3  # opts={} and tags=set() share a line


class TestS002HeapOutsideCore:
    def test_import_fires_outside_core(self, lint_tree):
        src = """\
            import heapq


            def push(q, item):
                heapq.heappush(q, item)
        """
        report = lint_tree({"pkg/queue.py": src})
        assert found(report, "S002") == [
            ("pkg/queue.py", line_of(src, "import heapq"))]

    def test_sim_core_is_allowed(self, lint_tree):
        report = lint_tree({"repro/sim/core.py": "import heapq\n"})
        assert found(report, "S002") == []


S003_SRC = """\
    class LightEntry:
        def __init__(self, t):
            self.t = t


    class PooledEntry:
        __slots__ = ("t",)

        def __init__(self, t):
            self.t = t


    class Singleton:
        def __init__(self):
            self.big = {}


    def drain(n):
        out = []
        for i in range(n):
            out.append(LightEntry(i))
            out.append(PooledEntry(i))
        return out, Singleton()
"""


class TestS003MissingSlots:
    def test_loop_instantiated_class_without_slots_fires(self, lint_tree):
        report = lint_tree({"repro/net/pool.py": S003_SRC})
        # LightEntry fires (loop + no slots); PooledEntry has slots;
        # Singleton is never instantiated in a loop.
        assert found(report, "S003") == [
            ("net/pool.py", line_of(S003_SRC, "class LightEntry"))]

    def test_slots_dataclass_decorator_counts(self, lint_tree):
        report = lint_tree({"repro/sim/entry.py": """\
            from dataclasses import dataclass


            @dataclass(frozen=True, slots=True)
            class Entry:
                t: float


            def refill(n):
                return [Entry(float(i)) for i in range(n)]
        """})
        assert found(report, "S003") == []

    def test_cold_modules_are_out_of_scope(self, lint_tree):
        report = lint_tree({"pkg/tools.py": S003_SRC})
        assert found(report, "S003") == []


class TestS004BlockingCall:
    def test_sleep_in_sim_layer_fires(self, lint_tree):
        src = """\
            import time


            def settle(ms):
                time.sleep(ms / 1000.0)
                return open("state.bin")
        """
        report = lint_tree({"repro/protocols/demo/replica.py": src})
        hits = found(report, "S004")
        assert ("demo/replica.py", line_of(src, "time.sleep")) in hits
        assert ("demo/replica.py", line_of(src, "open(")) in hits

    def test_harness_may_do_real_io(self, lint_tree):
        report = lint_tree({"repro/harness/runner.py": """\
            def snapshot(path, payload):
                with open(path, "w") as fh:
                    fh.write(payload)
        """})
        assert found(report, "S004") == []


# ---------------------------------------------------------------------------
# B-series: bench registration
# ---------------------------------------------------------------------------

B001_SRC = """\
    def bench_event_churn(n):
        return n


    def bench_forgotten(n):
        return n


    def suite_benchmarks(n=100):
        return {
            "event_churn": lambda: bench_event_churn(n),
        }
"""


class TestB001UnregisteredBenchmark:
    def test_unreferenced_bench_fires_at_def_line(self, lint_tree):
        report = lint_tree({"repro/harness/perf.py": B001_SRC})
        assert found(report, "B001") == [
            ("harness/perf.py", line_of(B001_SRC, "def bench_forgotten"))]

    def test_modules_without_a_suite_are_ignored(self, lint_tree):
        report = lint_tree({
            "pkg/helpers.py": "def bench_loose(n):\n    return n\n"})
        assert found(report, "B001") == []

    def test_real_perf_module_is_clean(self):
        from repro.analysis import run_lint
        import repro.harness.perf as perf

        report = run_lint([perf.__file__], only=["B001"])
        assert report.findings == []
        assert report.files_checked == 1
