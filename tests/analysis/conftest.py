"""Shared helpers for the linter tests: fixture trees and line lookup.

Deliberate violations live in *generated* files under ``tmp_path`` --
never as committed fixture files -- so the real-tree lint run (which
covers ``tests/``) cannot fire on the test suite itself.  Violating
code inside the string literals below is invisible to the AST pass.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest


def write_tree(root: Path, files: dict) -> Path:
    """Materialise ``{relpath: source}`` under ``root`` (dedented)."""
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return root


def line_of(source: str, needle: str) -> int:
    """1-based line of the first line containing ``needle``."""
    for i, text in enumerate(textwrap.dedent(source).splitlines(), 1):
        if needle in text:
            return i
    raise AssertionError(f"{needle!r} not in fixture")


@pytest.fixture
def lint_tree(tmp_path):
    """``lint_tree(files) -> LintReport`` over a generated fixture tree
    (no baseline unless the test passes one explicitly)."""
    from repro.analysis import run_lint

    def run(files: dict, **kwargs):
        write_tree(tmp_path, files)
        kwargs.setdefault("baseline_path", None)
        return run_lint([str(tmp_path)], **kwargs)

    return run


def found(report, rule: str):
    """The ``(path-suffix, line)`` pairs of one rule's findings."""
    return [(f.file.rsplit("/", 2)[-2] + "/" + f.file.rsplit("/", 1)[-1]
             if "/" in f.file else f.file, f.line)
            for f in report.findings if f.rule == rule]


def rules_fired(report):
    return sorted({f.rule for f in report.findings})
