"""The `repro lint` CLI: exit codes, --json, --only, --write-baseline."""

from __future__ import annotations

import json

from repro.cli import build_parser, main
from tests.analysis.conftest import write_tree

CLEAN = """\
    def add(a, b):
        return a + b
"""

DIRTY = """\
    import random


    def pick(options):
        return random.choice(options)
"""


class TestParser:
    def test_lint_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.paths == []
        assert args.baseline == "benchmarks/lint_baseline.json"
        assert args.only == []
        assert not args.no_baseline

    def test_only_accepts_repeats_and_commas(self):
        args = build_parser().parse_args(
            ["lint", "--only", "B001,D001", "--only", "S002"])
        assert args.only == ["B001,D001", "S002"]


class TestLintCommand:
    def test_clean_tree_exits_zero(self, capsys, tmp_path):
        write_tree(tmp_path, {"pkg/math.py": CLEAN})
        code = main(["lint", str(tmp_path), "--no-baseline"])
        assert code == 0
        assert "lint ok" in capsys.readouterr().out

    def test_finding_exits_one_with_file_line_rule(self, capsys, tmp_path):
        write_tree(tmp_path, {"pkg/sampler.py": DIRTY})
        code = main(["lint", str(tmp_path), "--no-baseline"])
        assert code == 1
        out = capsys.readouterr().out
        assert "sampler.py:5: D001" in out
        assert "FAIL" in out

    def test_json_report_written(self, capsys, tmp_path):
        write_tree(tmp_path, {"pkg/sampler.py": DIRTY})
        report_path = tmp_path / "lint_report.json"
        code = main(["lint", str(tmp_path), "--no-baseline",
                     "--json", str(report_path)])
        assert code == 1
        payload = json.loads(report_path.read_text())
        assert not payload["ok"]
        [finding] = payload["findings"]
        assert finding["rule"] == "D001"
        assert finding["line"] == 5
        assert payload["files_checked"] == 1
        assert "D001" in payload["rules_run"]

    def test_only_b001_ignores_other_families(self, capsys, tmp_path):
        write_tree(tmp_path, {
            "pkg/sampler.py": DIRTY,  # D001: invisible to a B001-only run
            "pkg/perf.py": """\
                def bench_orphan(n):
                    return n


                def suite_benchmarks(n=10):
                    return {}
            """,
        })
        code = main(["lint", str(tmp_path), "--no-baseline",
                     "--only", "B001"])
        assert code == 1
        out = capsys.readouterr().out
        assert "B001" in out
        assert "D001" not in out

    def test_unknown_rule_is_usage_error(self, capsys, tmp_path):
        code = main(["lint", str(tmp_path), "--only", "Z999"])
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, capsys, tmp_path):
        code = main(["lint", str(tmp_path / "no-such-dir"),
                     "--no-baseline"])
        assert code == 2
        assert "no-such-dir" in capsys.readouterr().err

    def test_write_baseline_then_clean_run(self, capsys, tmp_path):
        write_tree(tmp_path, {"pkg/sampler.py": DIRTY})
        baseline = tmp_path / "baseline.json"
        code = main(["lint", str(tmp_path),
                     "--baseline", str(baseline), "--write-baseline"])
        assert code == 0
        assert "wrote 1" in capsys.readouterr().out
        # The grandfathered finding no longer fails the run.
        code = main(["lint", str(tmp_path), "--baseline", str(baseline)])
        assert code == 0
        assert "baselined" in capsys.readouterr().out

    def test_list_rules_prints_catalog(self, capsys):
        code = main(["lint", "--list-rules"])
        assert code == 0
        out = capsys.readouterr().out
        for rid in ("D001", "D002", "D003", "A001",
                    "S001", "S002", "S003", "S004", "B001"):
            assert rid in out

    def test_real_tree_is_clean(self, capsys, monkeypatch):
        # The repo's own acceptance bar: `repro lint` exits 0 at HEAD.
        from pathlib import Path

        repo_root = Path(__file__).resolve().parents[2]
        monkeypatch.chdir(repo_root)
        code = main(["lint"])
        assert code == 0, capsys.readouterr().out
