"""Tests for the safety checker and anarchy accounting."""

import pytest

from repro.faults.checker import SafetyChecker, check_total_order
from tests.conftest import make_cluster


class TestTotalOrderChecker:
    def test_identical_traces_pass(self):
        traces = {0: [(1, ("c0", 1)), (2, ("c1", 1))],
                  1: [(1, ("c0", 1)), (2, ("c1", 1))]}
        assert check_total_order(traces) == []

    def test_divergent_slot_detected(self):
        traces = {0: [(1, ("c0", 1))],
                  1: [(1, ("c1", 1))]}
        violations = check_total_order(traces)
        assert len(violations) == 1
        assert violations[0].seqno == 1

    def test_prefix_traces_pass(self):
        """A replica that is simply behind is not divergent."""
        traces = {0: [(1, ("c0", 1)), (2, ("c1", 1))],
                  1: [(1, ("c0", 1))]}
        assert check_total_order(traces) == []

    def test_batch_slots_compared_as_tuples(self):
        traces = {0: [(1, ("c0", 1)), (1, ("c1", 1))],
                  1: [(1, ("c0", 1)), (1, ("c1", 1))]}
        assert check_total_order(traces) == []
        traces_swapped = {0: [(1, ("c0", 1)), (1, ("c1", 1))],
                          1: [(1, ("c1", 1)), (1, ("c0", 1))]}
        assert check_total_order(traces_swapped)

    def test_empty_traces_pass(self):
        assert check_total_order({0: [], 1: []}) == []


class TestAnarchyAccounting:
    def test_healthy_cluster_not_in_anarchy(self):
        runtime = make_cluster()
        checker = SafetyChecker(runtime)
        assert checker.fault_counts() == (0, 0, 0)
        assert not checker.in_anarchy()

    def test_single_byzantine_within_threshold_not_anarchy(self):
        runtime = make_cluster()  # t = 1
        checker = SafetyChecker(runtime, non_crash_faulty=[0])
        assert checker.fault_counts() == (1, 0, 0)
        assert not checker.in_anarchy()  # tnc + tc + tp = 1 <= t

    def test_byzantine_plus_crash_is_anarchy(self):
        runtime = make_cluster()
        checker = SafetyChecker(runtime, non_crash_faulty=[0])
        runtime.replica(1).crash()
        assert checker.fault_counts() == (1, 1, 0)
        assert checker.in_anarchy()

    def test_byzantine_plus_partition_is_anarchy(self):
        runtime = make_cluster()
        checker = SafetyChecker(runtime, non_crash_faulty=[0])
        runtime.network.partitions.isolate("r1", ["r0", "r2"])
        tnc, tc, tp = checker.fault_counts()
        assert (tnc, tc, tp) == (1, 0, 1)
        assert checker.in_anarchy()

    def test_crashes_alone_never_anarchy(self):
        runtime = make_cluster()
        checker = SafetyChecker(runtime)
        runtime.replica(0).crash()
        runtime.replica(1).crash()
        assert not checker.in_anarchy()  # tnc == 0

    def test_observation_latches(self):
        runtime = make_cluster()
        checker = SafetyChecker(runtime, non_crash_faulty=[0])
        runtime.replica(1).crash()
        assert checker.observe()
        runtime.replica(1).recover()
        assert not checker.observe()
        assert checker.anarchy_observed  # latched

    def test_assert_safe_passes_on_clean_run(self):
        runtime = make_cluster()
        checker = SafetyChecker(runtime)
        checker.assert_safe()

    def test_assert_safe_raises_on_divergence_outside_anarchy(self):
        runtime = make_cluster()
        checker = SafetyChecker(runtime)
        runtime.replica(0).execution_trace.append((1, ("c0", 1)))
        runtime.replica(1).execution_trace.append((1, ("c9", 9)))
        with pytest.raises(AssertionError):
            checker.assert_safe()

    def test_periodic_observation_times_pinned(self):
        """Observations land exactly at now, now+p, ..., <= until."""
        runtime = make_cluster()
        checker = SafetyChecker(runtime)
        runtime.sim.run(until=150.0)
        checker.observe_periodically(period_ms=100.0, until_ms=500.0)
        runtime.sim.run(until=1_000.0)
        times = [t for t, _ in checker._observations]
        assert times == [150.0, 250.0, 350.0, 450.0]

    def test_periodic_observation_is_one_event_at_a_time(self):
        """Arming a long horizon must not pre-enqueue every observation:
        the next tick is scheduled only when the current one fires."""
        runtime = make_cluster()
        checker = SafetyChecker(runtime)
        before = runtime.sim.pending
        checker.observe_periodically(period_ms=10.0, until_ms=1_000_000.0)
        assert runtime.sim.pending == before + 1

    def test_periodic_observation_rejects_bad_period(self):
        runtime = make_cluster()
        checker = SafetyChecker(runtime)
        with pytest.raises(ValueError):
            checker.observe_periodically(period_ms=0.0, until_ms=100.0)

    def test_divergence_tolerated_in_anarchy(self):
        """Definition 3: safety is only promised outside anarchy."""
        runtime = make_cluster()
        checker = SafetyChecker(runtime, non_crash_faulty=[2])
        runtime.replica(1).crash()
        checker.observe()  # anarchy latched
        runtime.replica(0).execution_trace.append((1, ("c0", 1)))
        runtime.replica(1).execution_trace.append((1, ("c9", 9)))
        checker.assert_safe()  # no exception: anarchy was observed
