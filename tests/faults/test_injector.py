"""Tests for the fault injector and schedules."""

import pytest

from repro.faults.injector import FaultEvent, FaultInjector, FaultSchedule
from tests.conftest import make_cluster


class TestFaultSchedule:
    def test_crash_for_generates_pair(self):
        schedule = FaultSchedule().crash_for(100.0, 1, 50.0)
        kinds = [(e.kind, e.at_ms) for e in schedule.events]
        assert kinds == [("crash", 100.0), ("recover", 150.0)]

    def test_figure9_timeline(self):
        schedule = FaultSchedule.figure9()
        crashes = [(e.at_ms, e.replica) for e in schedule.events
                   if e.kind == "crash"]
        assert crashes == [(180_000.0, 1), (300_000.0, 0), (420_000.0, 2)]
        recoveries = [(e.at_ms, e.replica) for e in schedule.events
                      if e.kind == "recover"]
        assert recoveries == [(200_000.0, 1), (320_000.0, 0),
                              (440_000.0, 2)]

    def test_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(0.0, "crash")  # no replica
        with pytest.raises(ValueError):
            FaultEvent(0.0, "partition")  # no pair


class TestFaultInjector:
    def test_scheduled_crash_and_recovery(self):
        runtime = make_cluster()
        injector = FaultInjector(runtime)
        injector.arm(FaultSchedule().crash_for(100.0, 1, 100.0))
        runtime.sim.run(until=150.0)
        assert runtime.replica(1).crashed
        runtime.sim.run(until=250.0)
        assert not runtime.replica(1).crashed

    def test_partition_events(self):
        runtime = make_cluster()
        injector = FaultInjector(runtime)
        injector.arm(FaultSchedule()
                     .partition(100.0, "r0", "r1")
                     .heal(200.0, "r0", "r1"))
        runtime.sim.run(until=150.0)
        assert runtime.network.partitions.blocked("r0", "r1")
        runtime.sim.run(until=250.0)
        assert not runtime.network.partitions.blocked("r0", "r1")

    def test_immediate_operations(self):
        runtime = make_cluster()
        injector = FaultInjector(runtime)
        injector.crash_now(2)
        assert runtime.replica(2).crashed
        injector.recover_now(2)
        assert not runtime.replica(2).crashed
        injector.isolate_now(0)
        assert runtime.network.partitions.blocked("r0", "r1")
        injector.heal_now(0)
        assert not runtime.network.partitions.blocked("r0", "r1")

    def test_injection_log(self):
        runtime = make_cluster()
        injector = FaultInjector(runtime)
        injector.crash_now(1)
        injector.recover_now(1)
        assert [e.kind for e in injector.injected] == ["crash", "recover"]
