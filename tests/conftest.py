"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.common.config import ClusterConfig, ProtocolName, WorkloadConfig
from repro.faults.checker import SafetyChecker
from repro.faults.injector import FaultInjector, FaultSchedule
from repro.harness.matrix import CELL_TIMEOUTS
from repro.protocols.registry import build_cluster
from repro.smr.runtime import ClusterRuntime
from repro.workloads.clients import ClosedLoopDriver


#: Tight timeouts so fault scenarios converge quickly in unit tests --
#: the same values the scenario conformance cells run under.
FAST_TIMEOUTS = dict(CELL_TIMEOUTS)


def make_cluster(protocol=ProtocolName.XPAXOS, t=1, num_clients=3,
                 **overrides):
    """A small single-datacenter cluster with fast timeouts."""
    params = dict(FAST_TIMEOUTS)
    params.update(overrides)
    config = ClusterConfig(t=t, protocol=protocol, **params)
    return build_cluster(config, num_clients=num_clients, seed=42)


def run_workload(runtime, duration_ms=3_000.0, warmup_ms=100.0,
                 request_size=128):
    """Drive the cluster's clients in a closed loop; returns the driver."""
    workload = WorkloadConfig(
        num_clients=len(runtime.clients),
        request_size=request_size,
        duration_ms=duration_ms,
        warmup_ms=warmup_ms,
    )
    driver = ClosedLoopDriver(runtime, workload)
    driver.run()
    return driver


@dataclass
class ClusterHarness:
    """A cluster plus the standard fault/safety instrumentation.

    Bundles what nearly every fault test builds by hand: the runtime, a
    fault injector, and an anarchy-aware safety checker.  ``drive`` runs
    the closed-loop workload and returns the driver for assertions.
    """

    runtime: ClusterRuntime
    injector: FaultInjector
    checker: SafetyChecker

    def arm(self, schedule: FaultSchedule) -> "ClusterHarness":
        """Arm a fault schedule; returns self for chaining."""
        self.injector.arm(schedule)
        return self

    def drive(self, duration_ms: float = 3_000.0,
              warmup_ms: float = 100.0,
              request_size: int = 64) -> ClosedLoopDriver:
        """Run the closed-loop workload over all attached clients."""
        driver = ClosedLoopDriver(
            self.runtime,
            WorkloadConfig(num_clients=len(self.runtime.clients),
                           request_size=request_size,
                           duration_ms=duration_ms, warmup_ms=warmup_ms))
        driver.run()
        return driver

    # Convenience pass-throughs used all over the fault suites.
    def replica(self, replica_id: int):
        return self.runtime.replica(replica_id)

    @property
    def replicas(self):
        return self.runtime.replicas

    @property
    def sim(self):
        return self.runtime.sim


def make_harness(protocol=ProtocolName.XPAXOS, t=1, num_clients=3,
                 non_crash_faulty=(), seed=42, latency=None,
                 **overrides) -> ClusterHarness:
    """A small fast-timeout cluster with injector and checker attached."""
    params = dict(FAST_TIMEOUTS)
    params.update(overrides)
    config = ClusterConfig(t=t, protocol=protocol, **params)
    runtime = build_cluster(config, num_clients=num_clients, seed=seed,
                            latency=latency)
    return ClusterHarness(
        runtime=runtime,
        injector=FaultInjector(runtime),
        checker=SafetyChecker(runtime, non_crash_faulty=non_crash_faulty))


@pytest.fixture(params=list(ProtocolName), ids=[p.value for p in ProtocolName])
def protocol_harness(request):
    """One :class:`ClusterHarness` per protocol (parametrized)."""
    return make_harness(request.param)


@pytest.fixture
def xpaxos_t1():
    """A 3-replica XPaxos cluster with 3 clients."""
    return make_cluster(ProtocolName.XPAXOS, t=1)


@pytest.fixture
def xpaxos_t2():
    """A 5-replica XPaxos cluster with 3 clients."""
    return make_cluster(ProtocolName.XPAXOS, t=2)
