"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.common.config import ClusterConfig, ProtocolName, WorkloadConfig
from repro.protocols.registry import build_cluster
from repro.workloads.clients import ClosedLoopDriver


#: Tight timeouts so fault scenarios converge quickly in unit tests.
FAST_TIMEOUTS = dict(
    delta_ms=50.0,
    request_retransmit_ms=200.0,
    view_change_timeout_ms=400.0,
    batch_timeout_ms=2.0,
)


def make_cluster(protocol=ProtocolName.XPAXOS, t=1, num_clients=3,
                 **overrides):
    """A small single-datacenter cluster with fast timeouts."""
    params = dict(FAST_TIMEOUTS)
    params.update(overrides)
    config = ClusterConfig(t=t, protocol=protocol, **params)
    return build_cluster(config, num_clients=num_clients, seed=42)


def run_workload(runtime, duration_ms=3_000.0, warmup_ms=100.0,
                 request_size=128):
    """Drive the cluster's clients in a closed loop; returns the driver."""
    workload = WorkloadConfig(
        num_clients=len(runtime.clients),
        request_size=request_size,
        duration_ms=duration_ms,
        warmup_ms=warmup_ms,
    )
    driver = ClosedLoopDriver(runtime, workload)
    driver.run()
    return driver


@pytest.fixture
def xpaxos_t1():
    """A 3-replica XPaxos cluster with 3 clients."""
    return make_cluster(ProtocolName.XPAXOS, t=1)


@pytest.fixture
def xpaxos_t2():
    """A 5-replica XPaxos cluster with 3 clients."""
    return make_cluster(ProtocolName.XPAXOS, t=2)
