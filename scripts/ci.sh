#!/usr/bin/env bash
# CI pipeline, split into named stages so jobs (and humans) can run them
# independently:
#
#   scripts/ci.sh                # all stages: lint tier1 perf scenarios
#   scripts/ci.sh perf           # just the perf stage
#   scripts/ci.sh lint tier1     # any subset, in the given order
#
# Stages
# ------
# lint       byte-compiles every Python tree (and runs pyflakes when the
#            host has it) -- catches syntax/undefined-name rot cheaply --
#            then runs `repro lint`, the AST determinism & safety linter
#            (src/repro/analysis/; docs/static-analysis.md): bench
#            registration (B001) plus the D/A/S rule families over
#            src+tests+benchmarks, failing on any non-baselined finding
#            and writing lint_report.json for the CI artifact.
# tier1      the full unit + figure-regeneration suite (the repo's
#            correctness gate; see ROADMAP.md).
# perf       `repro bench` compares the current simulator/network hot
#            paths against the preserved seed implementation, refreshes
#            BENCH_perf.json, gates it against the best recorded point in
#            benchmarks/perf/history/ (>20% speedup drop fails -- see
#            `repro trajectory`), then archives this run as a new point.
#            REPRO_BENCH_ONLY=name,name narrows the suite for triage
#            (gated but never recorded); REPRO_BENCH_REPEAT=N raises the
#            best-of count.  A gate failure re-runs the suite under
#            --profile so CI can upload BENCH_perf.pstats.
# scenarios  a conformance-matrix slice through the CLI path (run with
#            --jobs $(nproc); the merged JSON is byte-identical to a
#            sequential run), diffed against the committed
#            SCENARIO_smoke.json golden.
# matrix     the FULL (protocol x scenario) conformance matrix -- every
#            known scenario against every protocol, --jobs $(nproc) --
#            diffed against the committed SCENARIO_matrix.json golden.
#            Too slow for every push; run nightly
#            (.github/workflows/nightly.yml) and on demand.
#
# The GitHub Actions workflows (.github/workflows/ci.yml, nightly.yml)
# run the stages as separate jobs and upload BENCH_perf.json,
# SCENARIO_smoke.json and SCENARIO_matrix.json as artifacts.  When
# GITHUB_STEP_SUMMARY is set, a per-stage wall-clock table is appended to
# it after the last stage.
#
# Perf/scenario serialization: the perf stage gates *same-host speedup
# ratios*, so it must never share the host with a --jobs matrix run --
# worker processes competing for cores skew the ratio and trip the
# trajectory gate spuriously (a trip under a loaded host is host
# contention, not a regression; see docs/parallelism.md).  Within one
# ci.sh invocation the stages already run strictly in order; the flock
# below additionally serializes perf against any *concurrent* ci.sh
# running the scenario stage on the same host.

set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

CI_LOCK="${REPRO_CI_LOCK:-${TMPDIR:-/tmp}/repro-ci-host.lock}"

# Take the host-wide CI lock for the duration of the calling subshell
# (no-op when util-linux flock is unavailable).
acquire_host_lock() {
    if command -v flock >/dev/null 2>&1; then
        exec 9>>"$CI_LOCK"
        flock 9
    fi
}

stage_lint() {
    echo "== lint: byte-compile + optional pyflakes =="
    python -m compileall -q src tests benchmarks examples
    if python -c "import pyflakes" 2>/dev/null; then
        python -m pyflakes src tests benchmarks examples
    else
        echo "pyflakes not installed; byte-compile only"
    fi
    # Every bench_* function must be registered in the gated suite --
    # an unregistered benchmark silently escapes the trajectory gate.
    # (Rule B001 of the repro linter; this used to be an inline check.)
    echo "== lint: bench registration (repro lint --only B001) =="
    python -m repro lint --only B001
    # The full determinism & safety linter: module-level RNG draws,
    # wall-clock reads, hash-ordered set iteration, unregistered wire
    # messages, simulator hygiene (docs/static-analysis.md).  Fails on
    # any finding that is neither suppressed inline nor in the committed
    # baseline (benchmarks/lint_baseline.json), and on stale baseline
    # entries.  The JSON report is uploaded as a CI artifact.
    echo "== lint: determinism & safety linter (repro lint) =="
    python -m repro lint src tests benchmarks --json lint_report.json
}

stage_tier1() {
    echo "== tier1: unit + figure-regeneration tests =="
    python -m pytest -x -q
}

# Subshell body: the host lock (fd 9) releases when the stage exits.
# The benchmarks themselves stay serial -- farming the suite's current
# and seed sides to concurrent workers would skew the gated ratios.
stage_perf() (
    acquire_host_lock
    echo "== perf: micro-benchmarks + trajectory gate =="
    # REPRO_BENCH_ONLY ("name,name,...") narrows the suite for triage --
    # the resulting partial payload is gated on the benchmarks present
    # but is never recorded.  REPRO_BENCH_REPEAT raises the best-of
    # count on noisy hosts.
    #
    # The gated benchmarks run at the `repro bench` default sizes: the
    # speedup-vs-seed ratio grows with workload size (the seed's GC and
    # allocation costs scale superlinearly), so points recorded at
    # different sizes are not comparable and would trip the gate on size
    # alone.  Only the ungated closed-loop/cohort cells are shrunk.
    bench_args=(--clients 8 --duration 1 \
        --repeat "${REPRO_BENCH_REPEAT:-2}")
    if [ -n "${REPRO_BENCH_ONLY:-}" ]; then
        for name in ${REPRO_BENCH_ONLY//,/ }; do
            bench_args+=(--only "$name")
        done
    fi
    python -m repro bench "${bench_args[@]}"

    if [ -z "${REPRO_BENCH_ONLY:-}" ]; then
        python - <<'EOF'
import json

with open("BENCH_perf.json") as fh:
    payload = json.load(fh)
benches = payload["benchmarks"]
assert benches["event_churn"]["results_match"]
assert benches["heap_churn_1m"]["results_match"]
assert benches["same_tick_drain"]["results_match"]
assert benches["message_storm"]["results_match"]
assert benches["broadcast_storm"]["results_match"]
assert benches["authenticated_broadcast"]["results_match"]
# The digest cache must be invisible byte-for-byte: cached and seed
# encoders produce identical digest streams.
assert benches["digest_cache"]["results_match"]
assert benches["xpaxos_closed_loop"]["deterministic"]
# Leader pipelining must beat a depth-1 pipeline under saturating
# open-loop load, and the open-loop driver must agree with the closed
# loop at matched offered load.
assert benches["pipelined_throughput"]["results_match"]
assert benches["pipelined_throughput"]["speedup"] > 1.0
assert benches["cohort_driver"]["agreement"]
assert benches["cohort_driver"]["deterministic"]
print("perf smoke ok: " + ", ".join(
    f"{name} {bench['speedup']:.2f}x"
    for name, bench in benches.items() if "speedup" in bench))
EOF
    fi

    # Trajectory gate: any benchmark's speedup-vs-seed falling >20% below
    # the best archived point fails the stage; a passing full run is
    # archived as the next point on the trajectory.  On a gate failure,
    # re-run the tripping subset under --profile so the CI artifact
    # carries a pstats file pointing at where the time went.
    if ! python -m repro trajectory check BENCH_perf.json; then
        echo "trajectory gate failed; capturing profile artifact" >&2
        python -m repro bench "${bench_args[@]}" \
            --profile BENCH_perf.pstats --output BENCH_perf_profiled.json \
            || true
        exit 1
    fi
    if [ -z "${REPRO_BENCH_ONLY:-}" ]; then
        python -m repro trajectory record BENCH_perf.json
    else
        echo "REPRO_BENCH_ONLY set: partial payload not recorded"
    fi
)

stage_scenarios() (
    acquire_host_lock
    echo "== scenarios: conformance matrix slice =="
    # crash-primary is the failover cell (in scope for all five since the
    # baseline view-change work); crash-primary-t2 exercises the
    # general-path view change on the larger cluster.  The cells fan out
    # over one worker per core; the merged JSON is byte-identical to a
    # --jobs 1 run, so the golden diff below is unaffected.
    python -m repro scenarios --protocol all \
        --jobs "${REPRO_SMOKE_JOBS:-$(nproc)}" \
        --scenario fault-free \
        --scenario fault-free-openloop \
        --scenario crash-primary \
        --scenario crash-primary-t2 \
        --scenario crash-follower \
        --scenario client-primary-partition \
        --scenario byzantine-primary-data-loss \
        --json SCENARIO_smoke.json

    python - <<'EOF'
import json

with open("SCENARIO_smoke.json") as fh:
    payload = json.load(fh)
cells = payload["cells"]
bad = [c for c in cells
       if c["status"] not in ("pass", "expected-violation", "skipped")]
assert not bad, bad
in_scope = [c for c in cells if c["status"] != "skipped"]
assert len(in_scope) >= 20, f"only {len(in_scope)} in-scope cells"
for failover_row in ("crash-primary", "crash-primary-t2"):
    row = [c for c in cells if c["scenario"] == failover_row]
    assert len(row) == 5 and all(c["status"] == "pass" for c in row), row
# The open-loop row drives every protocol with cohort arrivals; all five
# must absorb the offered rate.
open_row = [c for c in cells if c["scenario"] == "fault-free-openloop"]
assert len(open_row) == 5 and all(c["status"] == "pass"
                                  for c in open_row), open_row
print(f"scenario smoke ok: {len(in_scope)} cells pass")
EOF

    # The smoke artifact is a committed golden: any cell-grade or
    # commit-count drift against the checked-in SCENARIO_smoke.json fails
    # the build loudly (refresh the golden deliberately when behaviour
    # changes on purpose).
    if ! git diff --exit-code -- SCENARIO_smoke.json; then
        echo "SCENARIO_smoke.json drifted from the committed golden" >&2
        exit 1
    fi
)

stage_matrix() (
    acquire_host_lock
    echo "== matrix: full (protocol x scenario) conformance matrix =="
    # Every known scenario against every protocol (out-of-scope cells
    # report as skipped).  The cells fan out over one worker per core;
    # the merged JSON is byte-identical to --jobs 1, so the golden diff
    # below is exact.
    python -m repro scenarios --protocol all \
        --jobs "${REPRO_SMOKE_JOBS:-$(nproc)}" \
        --json SCENARIO_matrix.json

    python - <<'EOF'
import json

with open("SCENARIO_matrix.json") as fh:
    payload = json.load(fh)
cells = payload["cells"]
bad = [c for c in cells
       if c["status"] not in ("pass", "expected-violation", "skipped")]
assert not bad, bad
in_scope = [c for c in cells if c["status"] != "skipped"]
assert len(in_scope) >= 60, f"only {len(in_scope)} in-scope cells"
# The anarchy cells are the paper's central caveat: they must stay
# expected-violation (consistency CAN break past the anarchy boundary),
# never silently flip to pass.
anarchy = [c for c in cells if c["scenario"].startswith("anarchy-")
           and c["status"] != "skipped"]
assert anarchy and all(c["status"] == "expected-violation"
                       for c in anarchy), anarchy
print(f"full matrix ok: {len(in_scope)} in-scope cells")
EOF

    # Committed golden: any drift in any cell of the full matrix fails
    # the nightly loudly (refresh deliberately when behaviour changes on
    # purpose).
    if ! git diff --exit-code -- SCENARIO_matrix.json; then
        echo "SCENARIO_matrix.json drifted from the committed golden" >&2
        exit 1
    fi
)

STAGES=("$@")
if [ ${#STAGES[@]} -eq 0 ]; then
    STAGES=(lint tier1 perf scenarios)
fi
STAGE_TIMES=()
for stage in "${STAGES[@]}"; do
    stage_start=$SECONDS
    case "$stage" in
        lint|tier1|perf|scenarios|matrix) "stage_$stage" ;;
        *)
            echo "unknown stage '$stage' (known: lint tier1 perf" \
                 "scenarios matrix)" >&2
            exit 2
            ;;
    esac
    STAGE_TIMES+=("$stage $((SECONDS - stage_start))")
done

# Per-stage wall clock, into the Actions job summary when available (and
# onto stdout always, so local runs see it too).
print_stage_times() {
    echo "| stage | wall clock |"
    echo "| --- | --- |"
    local entry
    for entry in "${STAGE_TIMES[@]}"; do
        echo "| ${entry%% *} | ${entry#* }s |"
    done
}
echo "== stage wall-clock =="
print_stage_times
if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
    {
        echo "### ci.sh stage wall-clock"
        echo
        print_stage_times
    } >> "$GITHUB_STEP_SUMMARY"
fi
