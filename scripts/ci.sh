#!/usr/bin/env bash
# CI entry point: tier-1 tests + perf smoke + scenario smoke, on every PR.
#
#   scripts/ci.sh            # full tier-1 suite, then the smoke stages
#
# The perf harness (`repro bench`, see src/repro/harness/perf.py) compares
# the current simulator/network hot paths against the preserved seed
# implementation and refreshes BENCH_perf.json, so every PR leaves a perf
# trajectory point and any behavioral divergence from the seed fails CI.
#
# The scenario smoke (`repro scenarios`, see src/repro/scenarios/) runs a
# small slice of the conformance matrix through the CLI path -- the full
# matrix already runs under tier-1 via tests/scenarios/ -- so CLI-level
# regressions in the fault/safety/liveness plumbing fail PRs too.

set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: unit + figure-regeneration tests =="
python -m pytest -x -q

echo "== perf smoke: micro-benchmarks + BENCH_perf.json =="
python -m repro bench --events 50000 --messages 30000 \
    --broadcast-rounds 4000 --clients 8 --duration 1 --repeat 2

python - <<'EOF'
import json

with open("BENCH_perf.json") as fh:
    payload = json.load(fh)
benches = payload["benchmarks"]
assert benches["event_churn"]["results_match"]
assert benches["message_storm"]["results_match"]
assert benches["broadcast_storm"]["results_match"]
assert benches["xpaxos_closed_loop"]["deterministic"]
print("perf smoke ok: " + ", ".join(
    f"{name} {bench['speedup']:.2f}x"
    for name, bench in benches.items() if "speedup" in bench))
EOF

echo "== scenario smoke: conformance matrix slice =="
# crash-primary is the failover cell: since the baseline view-change work
# it is in scope for every protocol (PBFT, Zyzzyva and Zab included).
python -m repro scenarios --protocol all \
    --scenario fault-free \
    --scenario crash-primary \
    --scenario crash-follower \
    --scenario client-primary-partition \
    --scenario byzantine-primary-data-loss \
    --json SCENARIO_smoke.json

python - <<'EOF'
import json

with open("SCENARIO_smoke.json") as fh:
    payload = json.load(fh)
cells = payload["cells"]
bad = [c for c in cells
       if c["status"] not in ("pass", "expected-violation", "skipped")]
assert not bad, bad
in_scope = [c for c in cells if c["status"] != "skipped"]
assert len(in_scope) >= 16, f"only {len(in_scope)} in-scope cells"
failover = [c for c in cells if c["scenario"] == "crash-primary"]
assert len(failover) == 5 and all(c["status"] == "pass" for c in failover), \
    failover
print(f"scenario smoke ok: {len(in_scope)} cells pass")
EOF

# The smoke artifact is a committed golden: any cell-grade or commit-count
# drift against the checked-in SCENARIO_smoke.json fails the build loudly
# (refresh the golden deliberately when behaviour changes on purpose).
if ! git diff --exit-code -- SCENARIO_smoke.json; then
    echo "SCENARIO_smoke.json drifted from the committed golden" >&2
    exit 1
fi
