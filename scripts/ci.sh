#!/usr/bin/env bash
# CI entry point: tier-1 tests + perf smoke, run on every PR.
#
#   scripts/ci.sh            # full tier-1 suite, then the perf harness
#
# The perf harness (`repro bench`, see src/repro/harness/perf.py) compares
# the current simulator/network hot paths against the preserved seed
# implementation and refreshes BENCH_perf.json, so every PR leaves a perf
# trajectory point and any behavioral divergence from the seed fails CI.

set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: unit + figure-regeneration tests =="
python -m pytest -x -q

echo "== perf smoke: micro-benchmarks + BENCH_perf.json =="
python -m repro bench --events 50000 --messages 30000 \
    --broadcast-rounds 4000 --clients 8 --duration 1 --repeat 2

python - <<'EOF'
import json

with open("BENCH_perf.json") as fh:
    payload = json.load(fh)
benches = payload["benchmarks"]
assert benches["event_churn"]["results_match"]
assert benches["message_storm"]["results_match"]
assert benches["broadcast_storm"]["results_match"]
assert benches["xpaxos_closed_loop"]["deterministic"]
print("perf smoke ok: " + ", ".join(
    f"{name} {bench['speedup']:.2f}x"
    for name, bench in benches.items() if "speedup" in bench))
EOF
