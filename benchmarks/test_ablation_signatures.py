"""Ablation: the price of digital signatures (why Figure 8 looks the way
it does).

XFT *requires* signatures in the common case -- commit logs must be
transferable proofs during view changes (Section 4.2); MAC vectors would
let a faulty replica equivocate.  This ablation quantifies what that
necessity costs by re-running XPaxos with the signature CPU price of a MAC
(a hypothetical, protocol-unsafe configuration) and with free crypto.
"""

from repro.common.config import ProtocolName
from repro.crypto.costs import CostModel

from conftest import bench_config, one_zero, wan_runner

#: sign/verify priced like HMACs -- what CFT/BFT MAC-based protocols pay.
MAC_PRICED = CostModel(sign_us=2.0, verify_us=2.0)


def test_signature_cost_ablation(benchmark):
    def build():
        results = {}
        for label, cost_model in (("rsa1024", CostModel()),
                                  ("mac-priced", MAC_PRICED),
                                  ("free", CostModel.free())):
            runner = wan_runner(cost_model=cost_model)
            config = bench_config(ProtocolName.XPAXOS)
            results[label] = runner.run_point(config, one_zero(96))
        return results

    results = benchmark.pedantic(build, rounds=1, iterations=1)

    print("\n=== ablation: signature CPU price (XPaxos, 1/0) ===")
    print(f"{'crypto':>11} {'kops/s':>9} {'cpu %':>8}")
    for label, result in results.items():
        print(f"{label:>11} {result.throughput_kops:9.3f} "
              f"{result.cpu_percent_most_loaded:8.1f}")

    # The CPU gap is the signature premium; with WAN latency dominating,
    # throughput is essentially unaffected (the paper's observation that
    # CPU "remains very reasonable" and does not cap XPaxos in the WAN).
    rsa = results["rsa1024"]
    mac = results["mac-priced"]
    assert rsa.cpu_percent_most_loaded > 5 * mac.cpu_percent_most_loaded
    assert rsa.throughput_kops >= 0.9 * mac.throughput_kops
    # Sanity: CPU stays under half the 8 cores, as in the paper.
    assert rsa.cpu_percent_most_loaded < 400.0
