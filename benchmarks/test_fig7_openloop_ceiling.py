"""Open-loop extension of the Figure 7 sweeps: each protocol's ceiling.

Closed-loop sweeps (Figures 7a-c) cap the offered load at
``num_clients / latency`` -- with the simulated client counts that is a
few kops/s at most, far below what the leader pipeline can order.  This
benchmark drives every protocol with the open-loop cohort engine at
offered loads two orders of magnitude past the closed-loop ceiling and
asserts the defining open-loop signature: measured throughput stops
tracking offered load and *plateaus* at the protocol's actual capacity.

The five protocol runs are independent deterministic simulations, so
``REPRO_JOBS=N`` farms them to worker processes (0 = one per core);
results are merged in protocol order and identical to a serial run.
"""

import os

from repro.common.config import ProtocolName, WorkloadConfig
from repro.harness.parallel import guard_global_rng, parallel_map

from conftest import WARMUP_MS, bench_config, wan_runner

PROTOCOLS = (ProtocolName.XPAXOS, ProtocolName.PAXOS, ProtocolName.PBFT,
             ProtocolName.ZYZZYVA, ProtocolName.ZAB)

#: Worker processes for the per-protocol runs (a pytest benchmark has no
#: natural CLI flag, so the knob is an environment variable).
JOBS = int(os.environ.get("REPRO_JOBS", "1"))

#: Shorter than RUN_MS: past saturation every extra millisecond only
#: grows the backlog without moving the measured plateau.
OPEN_RUN_MS = 1_000.0

#: Channel-pool size: enough protocol clients that a depth-8 pipeline of
#: full batches (8 x 20 requests) never starves for in-flight requests.
CHANNELS = 200

#: Offered-load multipliers over the measured closed-loop ceiling.  The
#: first satisfies the >= 100x headroom claim; the second confirms that
#: throughput no longer follows offered load (the plateau).
MULTIPLIERS = (100.0, 250.0)


def _closed_ceiling(runner, config) -> float:
    """Closed-loop throughput at the sweep's top client count (kops/s)."""
    workload = WorkloadConfig(num_clients=96, request_size=1024,
                              duration_ms=OPEN_RUN_MS,
                              warmup_ms=WARMUP_MS, client_site="CA")
    return runner.run_point(config, workload).throughput_kops


def _open_points(runner, config, ceiling_kops):
    base = WorkloadConfig(num_clients=CHANNELS, request_size=1024,
                          duration_ms=OPEN_RUN_MS, warmup_ms=WARMUP_MS,
                          client_site="CA", cohorts=4)
    rates = [ceiling_kops * 1_000.0 * m for m in MULTIPLIERS]
    return runner.sweep_offered_load(config, rates, base)


@guard_global_rng
def _protocol_run(protocol):
    """Closed ceiling + open-loop points for one protocol (one worker)."""
    runner = wan_runner()
    config = bench_config(protocol, t=1)
    ceiling = _closed_ceiling(runner, config)
    return ceiling, _open_points(runner, config, ceiling)


def test_fig7_openloop_ceiling(benchmark):
    def build():
        outcomes = parallel_map(_protocol_run, PROTOCOLS, jobs=JOBS)
        out = {}
        for protocol, outcome in zip(PROTOCOLS, outcomes):
            assert outcome.ok, (protocol.value, outcome.error)
            out[protocol.value] = outcome.value
        return out

    results = benchmark.pedantic(build, rounds=1, iterations=1)

    print("\n=== Open-loop ceiling, 1/0 benchmark, t = 1 ===")
    print(f"{'protocol':>8} {'closed kops':>12} "
          f"{'offered kops':>13} {'open kops':>10} {'saturated':>10}")
    for name, (ceiling, points) in results.items():
        for point in points:
            r = point.result
            print(f"{name:>8} {ceiling:12.3f} {r.offered_load_kops:13.1f} "
                  f"{r.throughput_kops:10.3f} "
                  f"{'yes' if r.saturated else 'no':>10}")

    for name, (ceiling, points) in results.items():
        first, second = (p.result for p in points)
        # >= 100x the closed-loop ceiling actually arrived at the cluster.
        assert first.offered_load_kops >= 100.0 * ceiling * 0.9, name
        # Offered load outran service capacity: requests are queued.
        assert first.saturated and second.saturated, name
        # The plateau: 2.5x more offered load, same measured throughput.
        assert second.throughput_kops <= 1.25 * first.throughput_kops, name
        assert second.throughput_kops >= 0.75 * first.throughput_kops, name
        # The plateau sits above the closed-loop ceiling -- open-loop load
        # plus pipelining is what reveals the protocol's real capacity.
        assert first.throughput_kops >= ceiling * 0.9, name
