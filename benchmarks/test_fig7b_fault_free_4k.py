"""Figure 7b: fault-free latency vs throughput, 4/0 benchmark, t = 1.

Same protocol ordering as Figure 7a, with lower absolute throughput than
the 1/0 benchmark: 4 kB requests saturate the leader's WAN uplink sooner.
"""

from repro.common.config import ProtocolName

from conftest import (
    four_zero,
    min_latency,
    one_zero,
    peak,
    print_curves,
    run_sweep,
)

PROTOCOLS = (ProtocolName.XPAXOS, ProtocolName.PAXOS, ProtocolName.PBFT,
             ProtocolName.ZYZZYVA)


def test_fig7b(benchmark):
    def build():
        four = {p.value: run_sweep(p, four_zero, t=1) for p in PROTOCOLS}
        # One 1/0 reference sweep for the cross-benchmark assertion.
        one = run_sweep(ProtocolName.XPAXOS, one_zero, t=1)
        return four, one

    curves, xpaxos_one_zero = benchmark.pedantic(build, rounds=1,
                                                 iterations=1)
    print_curves("Figure 7b: 4/0 benchmark, t = 1", curves)

    peaks = {name: peak(points) for name, points in curves.items()}
    latencies = {name: min_latency(points)
                 for name, points in curves.items()}
    print(f"peaks (kops/s): {peaks}")

    # Same protocol ordering as the 1/0 benchmark.
    assert peaks["xpaxos"] >= 0.7 * peaks["paxos"]
    assert peaks["xpaxos"] > 1.2 * peaks["pbft"]
    assert peaks["xpaxos"] > 1.2 * peaks["zyzzyva"]
    assert latencies["xpaxos"] < latencies["pbft"]
    assert latencies["xpaxos"] < latencies["zyzzyva"]
    # 4 kB requests peak below 1 kB requests for the same protocol.
    assert peaks["xpaxos"] <= peak(xpaxos_one_zero)
