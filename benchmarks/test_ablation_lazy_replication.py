"""Ablation: lazy replication (Section 4.5.2).

The paper attributes Figure 9's fast (<10 s) view changes to lazy
replication keeping passive replicas warm.  Without it, a passive replica
that becomes active must fetch the whole prefix during the view change.
"""

from repro.common.config import ProtocolName, WorkloadConfig
from repro.faults.injector import FaultSchedule
from repro.harness.timeline import run_fault_timeline

from conftest import bench_config, wan_runner


def run_crash(lazy: bool):
    runner = wan_runner()
    config = bench_config(
        ProtocolName.XPAXOS,
        delta_ms=1_250.0,
        request_retransmit_ms=2_500.0,
        view_change_timeout_ms=10_000.0,
        use_lazy_replication=lazy,
        checkpoint_period=512,
    )
    workload = WorkloadConfig(num_clients=32, request_size=1024,
                              duration_ms=40_000.0, warmup_ms=2_000.0,
                              client_site="CA")
    # Crash the follower: the passive replica must step in.
    schedule = FaultSchedule().crash_for(15_000.0, 1, 5_000.0)
    return run_fault_timeline(runner, config, workload, schedule,
                              window_ms=1_000.0)


def test_lazy_replication_ablation(benchmark):
    def build():
        return {lazy: run_crash(lazy) for lazy in (True, False)}

    results = benchmark.pedantic(build, rounds=1, iterations=1)

    print("\n=== ablation: lazy replication during a follower crash ===")
    for lazy, result in results.items():
        print(f"lazy={str(lazy):>5}: committed={result.committed:>6} "
              f"longest gap={result.longest_gap_ms() / 1000.0:.1f}s "
              f"views={max(result.final_views.values())}")

    with_lazy = results[True]
    without_lazy = results[False]
    # Both recover (checkpoint state transfer covers the non-lazy case).
    assert with_lazy.committed > 2_000
    assert without_lazy.committed > 1_000
    # Lazy replication commits at least as much and never recovers slower.
    assert with_lazy.committed >= 0.95 * without_lazy.committed
    assert with_lazy.longest_gap_ms() <= \
        without_lazy.longest_gap_ms() + 2_000.0
    # Warm passive replica: by the end, the previously passive replica has
    # executed (nearly) the full prefix in the lazy configuration.
    assert with_lazy.longest_gap_ms() < 10_000.0
