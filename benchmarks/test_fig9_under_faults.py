"""Figure 9: XPaxos throughput under faults.

The paper's run: t = 1 over (CA, VA, JP); crash the follower VA at 180 s,
the primary CA at 300 s, the passive JP at 420 s; each recovers 20 s later;
Delta = 1.25 s.  "After each crash, the system performs a view change that
lasts less than 10 sec" thanks to lazy replication, and throughput varies
across views with the primary-follower RTT.

We run the same schedule on a compressed timeline (the 500 s run shrinks to
125 s with crashes at 45/75/105 s) -- the schedule shape, Delta, and the
view-change machinery are identical; only the steady-state plateaus are
shorter.
"""

from repro.common.config import ProtocolName, WorkloadConfig
from repro.faults.injector import FaultSchedule
from repro.harness.timeline import run_fault_timeline

from conftest import bench_config, wan_runner

DURATION_MS = 125_000.0
CRASHES = ((45_000.0, 1), (75_000.0, 0), (105_000.0, 2))  # VA, CA, JP
DOWNTIME_MS = 5_000.0


def test_fig9(benchmark):
    def build():
        runner = wan_runner()
        config = bench_config(
            ProtocolName.XPAXOS,
            delta_ms=1_250.0,                   # the paper's Delta
            request_retransmit_ms=2_500.0,
            view_change_timeout_ms=10_000.0,
        )
        workload = WorkloadConfig(num_clients=32, request_size=1024,
                                  duration_ms=DURATION_MS,
                                  warmup_ms=2_000.0, client_site="CA")
        schedule = FaultSchedule()
        for at_ms, victim in CRASHES:
            schedule.crash_for(at_ms, victim, DOWNTIME_MS)
        return run_fault_timeline(runner, config, workload, schedule,
                                  window_ms=1_000.0)

    result = benchmark.pedantic(build, rounds=1, iterations=1)

    print("\n=== Figure 9: XPaxos throughput under faults ===")
    print("time (s) -> kops/s (1 s windows, sampled every 5 s)")
    for start, kops in result.throughput_series[::5]:
        bar = "#" * int(kops * 200)
        print(f"{start / 1000.0:7.0f}s {kops:7.3f} {bar}")
    print(f"view changes completed: {result.view_changes}")
    print(f"final views: {result.final_views}")
    print(f"zero-throughput gaps (s): "
          f"{[g / 1000.0 for g in result.recovery_gaps_ms]}")

    # The run makes progress overall.
    assert result.committed > 5_000
    # Each crash of an *active* replica forces a view change; the passive
    # crash (JP, third crash) does not.  At least 2 view changes total.
    assert max(result.final_views.values()) >= 2
    # The paper's headline: every outage is shorter than 10 s.
    assert result.longest_gap_ms() < 10_000.0, result.recovery_gaps_ms
    # Throughput resumed after the last crash window.
    last_crash_end = CRASHES[-1][0] + DOWNTIME_MS
    tail = [kops for start, kops in result.throughput_series
            if start > last_crash_end]
    assert tail and max(tail) > 0.05


def test_fig9_views_have_different_throughput(benchmark):
    """'The throughput of XPaxos changes with the views ... because the
    latencies between the primary and the follower and between the primary
    and clients vary from view to view.'"""

    def build():
        runner = wan_runner()
        config = bench_config(
            ProtocolName.XPAXOS,
            delta_ms=1_250.0,
            request_retransmit_ms=2_500.0,
            view_change_timeout_ms=10_000.0,
        )
        workload = WorkloadConfig(num_clients=32, request_size=1024,
                                  duration_ms=60_000.0,
                                  warmup_ms=2_000.0, client_site="CA")
        # Crash the follower permanently at 20 s: the system settles into a
        # different view (CA, JP) whose primary-follower RTT is longer.
        schedule = FaultSchedule().crash(20_000.0, 1)
        return run_fault_timeline(runner, config, workload, schedule,
                                  window_ms=1_000.0)

    result = benchmark.pedantic(build, rounds=1, iterations=1)
    before = [kops for start, kops in result.throughput_series
              if 5_000.0 <= start < 18_000.0]
    after = [kops for start, kops in result.throughput_series
             if start >= 40_000.0]
    mean_before = sum(before) / len(before)
    mean_after = sum(after) / len(after) if after else 0.0
    print(f"\nview (CA,VA) throughput: {mean_before:.3f} kops/s; "
          f"view (CA,JP): {mean_after:.3f} kops/s")
    assert mean_after > 0.0
    # CA-JP RTT (120 ms) > CA-VA RTT (88 ms): throughput drops.
    assert mean_after < mean_before
