"""Table 8: nines of availability for CFT, BFT, XPaxos at t = 2."""

from repro.reliability.tables import (
    availability_table,
    format_availability_table,
)


def test_table8(benchmark):
    rows = benchmark.pedantic(lambda: availability_table(2), rounds=1,
                              iterations=1)
    print("\n=== Table 8: nines of availability (t = 2) ===")
    print(format_availability_table(rows))

    by_key = {(r.nines_available, r.nines_benign): r for r in rows}

    # The paper's CFT columns.
    assert [by_key[(2, nb)].cft for nb in range(3, 9)] == \
        [2, 3, 4, 4, 4, 5]
    assert [by_key[(3, nb)].cft for nb in range(4, 9)] == [3, 4, 5, 6, 7]
    # Spot cells.
    assert (by_key[(2, 3)].bft, by_key[(2, 3)].xpaxos) == (4, 5)
    assert (by_key[(6, 7)].bft, by_key[(6, 7)].xpaxos) == (16, 17)

    for row in rows:
        # Section 6.2.2: 9ofA(XPaxos_t2) = 3*9avail - 1 = 9ofA(BFT_t2) + 1.
        assert row.xpaxos == 3 * row.nines_available - 1
        assert row.xpaxos == row.bft + 1
        assert row.xpaxos >= row.cft

    # The paper's three-regime gain formula for t = 2.
    for row in rows:
        na, nb = row.nines_available, row.nines_benign
        if nb < 3 * na:
            gain = 3 * na - nb
        elif nb < 4 * na:
            gain = 1
        else:
            gain = 0
        assert row.xpaxos - row.cft == gain, row
