"""Table 7: nines of availability for CFT, BFT, XPaxos at t = 1."""

from repro.reliability.tables import (
    availability_cell,
    availability_table,
    format_availability_table,
)


def test_table7(benchmark):
    rows = benchmark.pedantic(lambda: availability_table(1), rounds=1,
                              iterations=1)
    print("\n=== Table 7: nines of availability (t = 1) ===")
    print(format_availability_table(rows))

    by_key = {(r.nines_available, r.nines_benign): r for r in rows}

    # The paper's rows, column by column.
    assert [by_key[(2, nb)].cft for nb in range(3, 9)] == \
        [2, 3, 3, 3, 3, 3]
    assert [by_key[(3, nb)].cft for nb in range(4, 9)] == [3, 4, 5, 5, 5]
    assert [by_key[(4, nb)].cft for nb in range(5, 9)] == [4, 5, 6, 7]
    assert [by_key[(5, nb)].cft for nb in range(6, 9)] == [5, 6, 7]
    assert [by_key[(6, nb)].cft for nb in range(7, 9)] == [6, 7]

    for row in rows:
        # Section 6.2.2: XPaxos and BFT tie at t = 1 with 2*9avail - 1.
        assert row.xpaxos == row.bft == 2 * row.nines_available - 1
        # XFT availability dominates CFT availability.
        assert row.xpaxos >= row.cft
        # The paper's gain formula: max(2*9avail - 9benign, 0).
        gain = max(2 * row.nines_available - row.nines_benign, 0)
        assert row.xpaxos - row.cft == gain, row
