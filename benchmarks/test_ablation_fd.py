"""Ablation: the fault-detection mechanism's cost (Section 4.4).

FD adds prepare logs to view-change messages plus one VC-CONFIRM round.
It must not measurably slow the common case, and its view-change overhead
is one extra active-to-active round trip.
"""

from repro.common.config import ProtocolName, WorkloadConfig
from repro.faults.injector import FaultSchedule
from repro.harness.timeline import run_fault_timeline

from conftest import bench_config, one_zero, wan_runner


def test_fd_common_case_overhead(benchmark):
    def build():
        results = {}
        for use_fd in (False, True):
            runner = wan_runner()
            config = bench_config(ProtocolName.XPAXOS,
                                  use_fault_detection=use_fd)
            results[use_fd] = runner.run_point(config, one_zero(64))
        return results

    results = benchmark.pedantic(build, rounds=1, iterations=1)
    print("\n=== ablation: fault detection, fault-free common case ===")
    for use_fd, result in results.items():
        print(f"FD={str(use_fd):>5}: {result.throughput_kops:.3f} kops/s, "
              f"{result.mean_latency_ms:.1f} ms")
    # FD is free in the common case (it only changes view changes).
    assert results[True].throughput_kops >= \
        0.95 * results[False].throughput_kops
    assert results[True].mean_latency_ms <= \
        1.05 * results[False].mean_latency_ms


def test_fd_view_change_overhead(benchmark):
    def build():
        results = {}
        for use_fd in (False, True):
            runner = wan_runner()
            config = bench_config(
                ProtocolName.XPAXOS,
                delta_ms=1_250.0,
                request_retransmit_ms=2_500.0,
                view_change_timeout_ms=10_000.0,
                use_fault_detection=use_fd)
            workload = WorkloadConfig(num_clients=32, request_size=1024,
                                      duration_ms=40_000.0,
                                      warmup_ms=2_000.0, client_site="CA")
            schedule = FaultSchedule().crash_for(15_000.0, 1, 5_000.0)
            results[use_fd] = run_fault_timeline(runner, config, workload,
                                                 schedule,
                                                 window_ms=1_000.0)
        return results

    results = benchmark.pedantic(build, rounds=1, iterations=1)
    print("\n=== ablation: fault detection, view-change duration ===")
    for use_fd, result in results.items():
        print(f"FD={str(use_fd):>5}: longest gap "
              f"{result.longest_gap_ms() / 1000.0:.1f}s, "
              f"committed {result.committed}")
    # The VC-CONFIRM round costs at most ~1 WAN round trip extra; both
    # configurations stay under the paper's 10 s recovery bound.
    assert results[True].longest_gap_ms() < 10_000.0
    assert results[False].longest_gap_ms() < 10_000.0
    assert results[True].longest_gap_ms() <= \
        results[False].longest_gap_ms() + 1_000.0
