"""Ablation: batch size B (the paper fixes B = 20, Section 5.1.2).

Batching amortizes the primary's per-slot signature and the per-slot WAN
message; larger batches raise peak throughput until latency suffers.
"""

from repro.common.config import ProtocolName

from conftest import bench_config, one_zero, wan_runner

BATCH_SIZES = (1, 5, 20, 80)
CLIENTS = 96

#: Deep enough that every closed-loop client can have its request in an
#: in-flight slot even at B = 1 -- the ablation isolates the batching
#: knob, so the pipeline-depth window must never be the binding limit.
PIPELINE_DEPTH = 2 * CLIENTS


def test_batching_ablation(benchmark):
    def build():
        results = {}
        for batch_size in BATCH_SIZES:
            runner = wan_runner()
            config = bench_config(ProtocolName.XPAXOS,
                                  batch_size=batch_size,
                                  pipeline_depth=PIPELINE_DEPTH)
            results[batch_size] = runner.run_point(config,
                                                   one_zero(CLIENTS))
        return results

    results = benchmark.pedantic(build, rounds=1, iterations=1)

    print("\n=== ablation: batch size (XPaxos, 1/0, 96 clients) ===")
    print(f"{'B':>4} {'kops/s':>9} {'lat ms':>9} {'cpu %':>7}")
    for batch_size, result in results.items():
        print(f"{batch_size:>4} {result.throughput_kops:9.3f} "
              f"{result.mean_latency_ms:9.1f} "
              f"{result.cpu_percent_most_loaded:7.1f}")

    # The paper batches "to improve the throughput of cryptographic
    # operations" (Section 4.5): the measurable effect on this substrate
    # (where closed-loop throughput is WAN-latency-bound, not CPU-bound)
    # is the collapse of per-op signature cost at the primary.
    cpu_per_op_1 = (results[1].cpu_percent_most_loaded
                    / max(results[1].throughput_kops, 1e-9))
    cpu_per_op_20 = (results[20].cpu_percent_most_loaded
                     / max(results[20].throughput_kops, 1e-9))
    assert cpu_per_op_20 < 0.2 * cpu_per_op_1
    # The latency cost of batching stays bounded at the paper's B = 20
    # (under one extra round-trip equivalent), and grows with B.
    assert results[20].mean_latency_ms < 2.0 * results[1].mean_latency_ms
    assert results[1].mean_latency_ms < results[20].mean_latency_ms \
        < results[80].mean_latency_ms + 50.0
    # Throughput is within the latency-bound envelope at every B.
    for result in results.values():
        assert result.throughput_kops > 0.5 * results[1].throughput_kops
