"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper.  Simulation
runs are deterministic and expensive, so each benchmark executes its run
exactly once via ``benchmark.pedantic(..., rounds=1, iterations=1)`` and
prints the regenerated rows/series next to the paper's expectations.

Calibration notes (see DESIGN.md section 7): virtual time is milliseconds;
the latency model embeds the paper's Table 3; absolute throughput numbers
are not comparable to the paper's testbed, but the *shapes* (who wins, by
what rough factor, where crossovers fall) are asserted.
"""

from __future__ import annotations

import pytest

from repro.common.config import ClusterConfig, ProtocolName, WorkloadConfig
from repro.crypto.costs import CostModel
from repro.harness.configs import paper_config
from repro.harness.runner import ExperimentRunner
from repro.net.bandwidth import BandwidthModel
from repro.net.latency import LatencyModel

#: Client counts for latency-vs-throughput sweeps.  The paper sweeps to
#: thousands of clients on a testbed; the simulation sweeps fewer points
#: with the same closed-loop semantics.
SWEEP_CLIENTS = (8, 32, 96)

#: Virtual duration of one benchmark run (ms).
RUN_MS = 4_000.0
WARMUP_MS = 500.0

#: Uplink rate (bytes per virtual ms) used by the WAN benches.  Scaled down
#: from the real instances so that leader-uplink saturation (the phenomenon
#: behind Figures 7b and 10) appears within the simulated client counts.
WAN_UPLINK = 4_000.0


def wan_runner(seed: int = 0, uplink: float = WAN_UPLINK,
               cost_model: CostModel | None = None,
               app_factory=None) -> ExperimentRunner:
    """An EC2-calibrated runner (Table 3 latencies + bandwidth + crypto)."""
    return ExperimentRunner(
        latency_factory=lambda s: LatencyModel.ec2(seed=s),
        bandwidth_factory=lambda: BandwidthModel(default_rate=uplink),
        cost_model=cost_model or CostModel(),
        app_factory=app_factory,
        seed=seed,
    )


def bench_config(protocol: ProtocolName, t: int = 1,
                 **overrides) -> ClusterConfig:
    """Paper-default deployment with benchmark-friendly retry timers."""
    defaults = dict(
        request_retransmit_ms=20_000.0,
        view_change_timeout_ms=10_000.0,
    )
    defaults.update(overrides)
    return paper_config(protocol, t=t, **defaults)


def one_zero(num_clients: int) -> WorkloadConfig:
    """The paper's 1/0 microbenchmark (1 kB requests, 0 kB replies)."""
    return WorkloadConfig(num_clients=num_clients, request_size=1024,
                          reply_size=0, duration_ms=RUN_MS,
                          warmup_ms=WARMUP_MS, client_site="CA")


def four_zero(num_clients: int) -> WorkloadConfig:
    """The paper's 4/0 microbenchmark (4 kB requests)."""
    return WorkloadConfig(num_clients=num_clients, request_size=4096,
                          reply_size=0, duration_ms=RUN_MS,
                          warmup_ms=WARMUP_MS, client_site="CA")


def run_sweep(protocol: ProtocolName, workload_factory, t: int = 1,
              seed: int = 0, uplink: float = WAN_UPLINK,
              app_factory=None):
    """Latency-vs-throughput curve for one protocol."""
    runner = wan_runner(seed=seed, uplink=uplink, app_factory=app_factory)
    config = bench_config(protocol, t=t)
    points = []
    for clients in SWEEP_CLIENTS:
        result = runner.run_point(config, workload_factory(clients))
        points.append(result)
    return points


def print_curves(title: str, curves: dict) -> None:
    """Print latency-vs-throughput curves side by side."""
    print(f"\n=== {title} ===")
    header = f"{'clients':>8}"
    for name in curves:
        header += f" | {name:>22}"
    print(header)
    print(f"{'':>8}" + " | ".join(
        [""] + [f"{'kops/s':>10} {'lat ms':>11}" for _ in curves]))
    for index, clients in enumerate(SWEEP_CLIENTS):
        row = f"{clients:>8}"
        for name, points in curves.items():
            result = points[index]
            lat = (f"{result.mean_latency_ms:11.1f}"
                   if result.mean_latency_ms is not None else "        n/a")
            row += f" | {result.throughput_kops:10.3f} {lat}"
        print(row)


def peak(points) -> float:
    """Peak mean throughput across a sweep."""
    return max(p.throughput_kops for p in points)


def min_latency(points) -> float:
    """Best (lowest) mean latency across a sweep."""
    return min(p.mean_latency_ms for p in points
               if p.mean_latency_ms is not None)
