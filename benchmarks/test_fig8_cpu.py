"""Figure 8: CPU usage of the most-loaded node (the primary) for the 1/0
and 4/0 microbenchmarks.

Expected shape (Section 5.3): XPaxos uses more CPU than the other protocols
(digital signatures vs MACs), yet never more than half of the 8 cores
(<= 400% in top units); CPU usage per op is higher for 1/0 than 4/0 at the
same byte rate (more messages per time unit); and despite the higher CPU,
XPaxos sustains higher throughput than the BFT protocols.
"""

from repro.common.config import ProtocolName

from conftest import SWEEP_CLIENTS, one_zero, four_zero, wan_runner, \
    bench_config

PROTOCOLS = (ProtocolName.XPAXOS, ProtocolName.PAXOS, ProtocolName.PBFT,
             ProtocolName.ZYZZYVA)


def run_cpu_points(workload_factory):
    runner = wan_runner()
    points = {}
    for protocol in PROTOCOLS:
        config = bench_config(protocol)
        result = runner.run_point(config,
                                  workload_factory(max(SWEEP_CLIENTS)))
        points[protocol.value] = result
    return points


def test_fig8(benchmark):
    def build():
        return {
            "1/0": run_cpu_points(one_zero),
            "4/0": run_cpu_points(four_zero),
        }

    data = benchmark.pedantic(build, rounds=1, iterations=1)

    print("\n=== Figure 8: CPU usage at peak throughput ===")
    print(f"{'bench':>6} {'protocol':>9} {'kops/s':>9} {'CPU %':>8}")
    for bench, points in data.items():
        for name, result in points.items():
            print(f"{bench:>6} {name:>9} "
                  f"{result.throughput_kops:9.3f} "
                  f"{result.cpu_percent_most_loaded:8.1f}")

    for bench, points in data.items():
        xpaxos = points["xpaxos"]
        paxos = points["paxos"]
        # Shape 1: XPaxos burns more CPU per committed op than Paxos
        # (signatures vs MACs).
        xpaxos_per_op = (xpaxos.cpu_percent_most_loaded
                         / max(xpaxos.throughput_kops, 1e-9))
        paxos_per_op = (paxos.cpu_percent_most_loaded
                        / max(paxos.throughput_kops, 1e-9))
        assert xpaxos_per_op > 2.0 * paxos_per_op, bench
        # Shape 2: never more than half the 8 cores.
        assert xpaxos.cpu_percent_most_loaded < 400.0, bench
        # Shape 3: XPaxos still beats the BFT protocols on throughput.
        assert xpaxos.throughput_kops > points["pbft"].throughput_kops
        assert xpaxos.throughput_kops > points["zyzzyva"].throughput_kops

    # Shape 4: per-op CPU is dominated by per-message crypto, so the 4/0
    # benchmark (fewer ops for the same byte volume) shows no *higher*
    # per-op signature cost than 1/0 for XPaxos.
    one = data["1/0"]["xpaxos"]
    four = data["4/0"]["xpaxos"]
    assert one.throughput_kops >= four.throughput_kops
