"""Figure 10: latency vs throughput for the ZooKeeper application (t = 1).

The coordination service (repro.zk) replaces ZooKeeper 3.4.6; each protocol
replicates it (the paper's integration "replaces the Zab protocol"), and
clients issue 1 kB writes in a closed loop from the primary's region.

Expected shape (Section 5.5): Paxos and XPaxos clearly outperform the BFT
protocols; XPaxos is close to Paxos; and -- the paper's surprise -- XPaxos
beats native ZooKeeper's Zab, because the WAN bottleneck is the leader's
uplink bandwidth and the Zab leader ships every request to 2t replicas
whereas the XPaxos primary ships to only t followers.
"""

from repro.common.config import ProtocolName, WorkloadConfig
from repro.zk.service import CoordinationService, zk_write_op

from conftest import RUN_MS, WARMUP_MS, bench_config, wan_runner

#: A leaner uplink than the microbenchmarks: Figure 10's phenomenon is the
#: saturation of the leader's uplink, so the sweep must reach it.
ZK_UPLINK = 2_000.0
ZK_CLIENTS = (16, 64, 192, 512)

PROTOCOLS = (ProtocolName.XPAXOS, ProtocolName.PAXOS, ProtocolName.PBFT,
             ProtocolName.ZYZZYVA, ProtocolName.ZAB)


def zk_workload(num_clients: int) -> WorkloadConfig:
    return WorkloadConfig(num_clients=num_clients, request_size=1024,
                          duration_ms=RUN_MS, warmup_ms=WARMUP_MS,
                          client_site="CA")


def test_fig10(benchmark):
    def build():
        curves = {}
        for protocol in PROTOCOLS:
            runner = wan_runner(uplink=ZK_UPLINK,
                                app_factory=CoordinationService)
            config = bench_config(protocol)
            points = []
            for clients in ZK_CLIENTS:
                points.append(runner.run_point(config,
                                               zk_workload(clients)))
            curves[protocol.value] = points
        return curves

    curves = benchmark.pedantic(build, rounds=1, iterations=1)

    print("\n=== Figure 10: ZooKeeper macro-benchmark (1 kB writes) ===")
    print(f"{'clients':>8}", end="")
    for name in curves:
        print(f" | {name:>19}", end="")
    print()
    for index, clients in enumerate(ZK_CLIENTS):
        print(f"{clients:>8}", end="")
        for name, points in curves.items():
            result = points[index]
            lat = (f"{result.mean_latency_ms:8.1f}"
                   if result.mean_latency_ms is not None else "     n/a")
            print(f" | {result.throughput_kops:9.3f} {lat}", end="")
        print()

    peaks = {name: max(p.throughput_kops for p in points)
             for name, points in curves.items()}
    print(f"peaks (kops/s): {peaks}")

    # Shape 1: XPaxos close to Paxos.
    assert peaks["xpaxos"] >= 0.7 * peaks["paxos"]
    # Shape 2: XPaxos and Paxos clearly outperform the BFT protocols.
    assert peaks["xpaxos"] > 1.2 * peaks["pbft"]
    assert peaks["xpaxos"] > 1.2 * peaks["zyzzyva"]
    # Shape 3 (the paper's surprise): XPaxos peaks above native Zab --
    # the Zab leader ships to 2t replicas, the XPaxos primary to t.
    assert peaks["xpaxos"] > 1.15 * peaks["zab"]


def test_fig10_leader_bandwidth_explanation(benchmark):
    """Quantify the mechanism behind shape 3: bytes pushed through the
    leader's uplink per committed request."""

    def build():
        stats = {}
        for protocol in (ProtocolName.XPAXOS, ProtocolName.ZAB):
            from repro.net.bandwidth import BandwidthModel

            bandwidth = BandwidthModel(default_rate=ZK_UPLINK)
            runner = wan_runner(uplink=ZK_UPLINK,
                                app_factory=CoordinationService)
            runner.bandwidth_factory = lambda b=bandwidth: b
            config = bench_config(protocol)
            result = runner.run_point(config, zk_workload(64))
            stats[protocol.value] = (bandwidth.bytes_sent("r0"),
                                     result.committed)
        return stats

    stats = benchmark.pedantic(build, rounds=1, iterations=1)
    per_op = {name: sent / max(committed, 1)
              for name, (sent, committed) in stats.items()}
    print(f"\nleader uplink bytes per committed op: {per_op}")
    assert per_op["zab"] > 1.5 * per_op["xpaxos"]
