"""Ablation: sensitivity to the synchrony bound Delta (Section 5.1.1).

Delta trades recovery speed against false suspicion: a small Delta times
out the 2-Delta view-change collection phase faster but risks declaring
network faults on mere tail latency; a large Delta is conservative.  The
paper picks Delta = 1.25 s from the 99.99th RTT percentile.
"""

from repro.common.config import ProtocolName, WorkloadConfig
from repro.faults.injector import FaultSchedule
from repro.harness.timeline import run_fault_timeline

from conftest import bench_config, wan_runner

DELTAS_MS = (150.0, 1_250.0, 5_000.0)


def run_with_delta(delta_ms: float):
    runner = wan_runner()
    config = bench_config(
        ProtocolName.XPAXOS,
        delta_ms=delta_ms,
        request_retransmit_ms=max(2 * delta_ms, 1_000.0),
        view_change_timeout_ms=max(8 * delta_ms, 4_000.0),
    )
    workload = WorkloadConfig(num_clients=32, request_size=1024,
                              duration_ms=40_000.0, warmup_ms=2_000.0,
                              client_site="CA")
    schedule = FaultSchedule().crash_for(15_000.0, 1, 5_000.0)
    return run_fault_timeline(runner, config, workload, schedule,
                              window_ms=1_000.0)


def test_delta_ablation(benchmark):
    def build():
        return {delta: run_with_delta(delta) for delta in DELTAS_MS}

    results = benchmark.pedantic(build, rounds=1, iterations=1)

    print("\n=== ablation: Delta sensitivity (follower crash at 15 s) ===")
    for delta, result in results.items():
        print(f"Delta={delta / 1000.0:6.2f}s: committed={result.committed:>6} "
              f"longest gap={result.longest_gap_ms() / 1000.0:5.1f}s "
              f"view changes={max(result.view_changes.values())}")

    # Every Delta recovers.
    for result in results.values():
        assert result.committed > 2_000
    # The paper's Delta keeps recovery under 10 s.
    assert results[1_250.0].longest_gap_ms() < 10_000.0
    # A larger Delta cannot recover faster than the paper's choice
    # (the 2-Delta collection phase lower-bounds the view change).
    assert results[5_000.0].longest_gap_ms() >= \
        results[1_250.0].longest_gap_ms() - 1_000.0
