"""Perf micro-benchmark suite (`repro bench`), exercised at CI scale.

Each benchmark runs the same workload against the preserved seed
implementation and the current hot paths (see ``repro.harness.perf``).
Correctness equivalences (identical delivered/committed counts, identical
determinism) are asserted strictly; wall-clock speedups are asserted with a
wide margin below the typical measured ratios (~3x event churn, ~1.8x
message storm, ~2x broadcast) so a loaded CI host does not flake.

Run ``python -m repro bench`` for the full-size suite and the
``BENCH_perf.json`` perf-trajectory artifact.
"""

import pytest

from repro.harness.perf import (
    bench_authenticated_broadcast,
    bench_broadcast_storm,
    bench_digest_cache,
    bench_event_churn,
    bench_heap_churn_1m,
    bench_message_storm,
    bench_same_tick_drain,
    bench_xpaxos_closed_loop,
    format_suite,
    run_suite,
    unregistered_benchmarks,
)


def test_event_churn_speedup(benchmark):
    result = benchmark.pedantic(
        lambda: bench_event_churn(50_000, repeat=2),
        rounds=1, iterations=1)
    assert result["results_match"]
    # Typical ratio ~4x; the floor only catches a true regression where
    # the current loop is no faster than the seed loop.
    assert result["speedup"] > 1.5


def test_message_storm_speedup(benchmark):
    result = benchmark.pedantic(
        lambda: bench_message_storm(30_000, repeat=2),
        rounds=1, iterations=1)
    # Same RNG draw order: the optimized fabric delivers the exact same
    # messages as the seed fabric.
    assert result["results_match"]
    # Typical ratio ~1.8x; loose floor to stay robust on loaded CI hosts.
    assert result["speedup"] > 1.05


def test_broadcast_storm_speedup(benchmark):
    result = benchmark.pedantic(
        lambda: bench_broadcast_storm(4_000, repeat=2),
        rounds=1, iterations=1)
    assert result["results_match"]
    # Typical ratio ~2x; loose floor to stay robust on loaded CI hosts.
    assert result["speedup"] > 1.05


def test_digest_cache_speedup(benchmark):
    result = benchmark.pedantic(
        lambda: bench_digest_cache(count=600, repeat=2),
        rounds=1, iterations=1)
    # Byte-identical digest streams: the cache may only change when
    # hashing happens, never what is hashed.
    assert result["results_match"]
    # Typical ratio ~8x (1 compute + 8 hits vs 9 computes); loose floor.
    assert result["speedup"] > 2.0


def test_authenticated_broadcast_speedup(benchmark):
    result = benchmark.pedantic(
        lambda: bench_authenticated_broadcast(1_500, repeat=2),
        rounds=1, iterations=1)
    # Every delivery's MAC verified on both fabrics, same counts: the
    # delivery-time MAC vector is observationally identical to the
    # payload-embedded encoding.
    assert result["results_match"]
    assert result["result"]["verified"] == result["result"]["delivered"]
    # Typical ratio ~1.5x (one payload digest per fan-out instead of
    # eight, plus the multicast path); loose floor for loaded CI hosts.
    assert result["speedup"] > 1.05


def test_heap_churn_speedup(benchmark):
    result = benchmark.pedantic(
        lambda: bench_heap_churn_1m(backlog=100_000, churn=10_000,
                                    repeat=2),
        rounds=1, iterations=1)
    # Executed/pending counts must agree exactly: the adaptive pool and
    # compaction policy change allocation, never the schedule.
    assert result["results_match"]
    assert result["speedup"] > 1.05


def test_same_tick_drain_speedup(benchmark):
    result = benchmark.pedantic(
        lambda: bench_same_tick_drain(ticks=300, chain=50, backlog=50_000,
                                      repeat=2),
        rounds=1, iterations=1)
    # The FIFO fast lane must fire the same callbacks in the same order
    # as heap-only draining.
    assert result["results_match"]
    assert result["speedup"] > 1.05


def test_closed_loop_xpaxos_deterministic(benchmark):
    result = benchmark.pedantic(
        lambda: bench_xpaxos_closed_loop(num_clients=8,
                                         duration_ms=1_000.0),
        rounds=1, iterations=1)
    assert result["deterministic"]
    assert result["committed"] > 0


def test_suite_payload_shape():
    payload = run_suite(events=2_000, messages=1_000, broadcast_rounds=100,
                        clients=2, duration_ms=400.0, repeat=1,
                        heap_backlog=20_000, heap_churn=2_000,
                        same_tick_ticks=50)
    assert set(payload["benchmarks"]) == {
        "event_churn", "heap_churn_1m", "same_tick_drain",
        "message_storm", "broadcast_storm",
        "authenticated_broadcast", "digest_cache", "xpaxos_closed_loop",
        "pipelined_throughput", "cohort_driver"}
    assert payload["params"]["only"] is None
    for key in ("heap_backlog", "heap_churn", "same_tick_ticks"):
        assert key in payload["params"]
    # Host facts for gate-trip triage ride every payload (docs/ci.md).
    assert "nproc" in payload["host"]
    assert "loadavg" in payload["host"]
    assert "cpu_model" in payload["host"]
    text = format_suite(payload)
    assert "event_churn" in text and "speedup" in text


def test_suite_only_subset():
    payload = run_suite(events=2_000, messages=1_000, broadcast_rounds=100,
                        clients=2, duration_ms=400.0, repeat=1,
                        heap_backlog=20_000, heap_churn=2_000,
                        same_tick_ticks=50,
                        only=["message_storm", "event_churn"])
    # Registry order is preserved regardless of the order given.
    assert list(payload["benchmarks"]) == ["event_churn", "message_storm"]
    assert payload["params"]["only"] == ["event_churn", "message_storm"]


def test_suite_only_unknown_name():
    with pytest.raises(ValueError, match="unknown benchmark"):
        run_suite(events=100, messages=100, broadcast_rounds=10,
                  clients=2, duration_ms=100.0, repeat=1,
                  only=["not_a_benchmark"])


def test_every_bench_function_registered():
    # The lint stage runs the same check; keeping it in the suite makes
    # the failure local to the PR that adds a stray bench_* function.
    assert unregistered_benchmarks() == []
