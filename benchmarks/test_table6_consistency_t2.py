"""Table 6: nines of consistency for CFT, XPaxos, BFT at t = 2."""

from repro.reliability.tables import (
    consistency_table,
    format_consistency_table,
)


def test_table6(benchmark):
    rows = benchmark.pedantic(lambda: consistency_table(2), rounds=1,
                              iterations=1)
    print("\n=== Table 6: nines of consistency (t = 2) ===")
    print(format_consistency_table(rows))

    by_key = {(r.nines_benign, r.nines_correct, r.nines_synchrony): r
              for r in rows}

    # Spot values from the paper's Table 6.
    assert (by_key[(3, 2, 2)].cft, by_key[(3, 2, 2)].xpaxos,
            by_key[(3, 2, 2)].bft) == (2, 4, 7)
    assert by_key[(4, 3, 3)].xpaxos == 7
    assert by_key[(4, 3, 3)].bft == 10
    assert by_key[(5, 4, 4)].xpaxos == 10
    assert by_key[(5, 4, 4)].bft == 13

    # Structural invariants.
    for row in rows:
        assert row.xpaxos >= row.cft

    # t = 2 amplifies the gain over t = 1: compare the same grid points.
    from repro.reliability.tables import consistency_cell

    for (nb, nc, ns) in ((4, 3, 3), (5, 4, 4), (6, 5, 5)):
        t1 = consistency_cell(1, nb, nc, ns)
        t2 = by_key[(nb, nc, ns)]
        assert t2.xpaxos - t2.cft > t1.xpaxos - t1.cft
