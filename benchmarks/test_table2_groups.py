"""Table 2: synchronous group combinations for t = 1, regenerated from the
view-to-group mapping."""

from repro.protocols.xpaxos.groups import SynchronousGroups


def test_table2(benchmark):
    """Regenerate Table 2 and assert the paper's rotation exactly."""

    def build():
        groups = SynchronousGroups(n=3, t=1)
        return [
            dict(view=view,
                 primary=groups.primary(view),
                 followers=groups.followers(view),
                 passive=groups.passive(view))
            for view in range(6)
        ]

    rows = benchmark.pedantic(build, rounds=1, iterations=1)

    print("\n=== Table 2: synchronous groups (t = 1) ===")
    print(f"{'view':>5} {'primary':>8} {'follower':>9} {'passive':>8}")
    for row in rows:
        print(f"{row['view']:>5} s{row['primary']:<7} "
              f"s{row['followers'][0]:<8} s{row['passive'][0]:<7}")

    # The paper's Table 2: (primary, follower, passive) per view.
    expected = [(0, 1, 2), (0, 2, 1), (1, 2, 0)]
    for view, (primary, follower, passive) in enumerate(expected):
        assert rows[view]["primary"] == primary
        assert rows[view]["followers"] == (follower,)
        assert rows[view]["passive"] == (passive,)
    # And the rotation repeats with period C(3, 2) = 3.
    for view in range(3):
        assert rows[view]["primary"] == rows[view + 3]["primary"]


def test_group_rotation_scales(benchmark):
    """Fault scalability of the rotation: all C(2t+1, t+1) groups appear."""

    def build():
        out = {}
        for t in (1, 2, 3, 4):
            groups = SynchronousGroups(n=2 * t + 1, t=t)
            seen = {groups.group(v) for v in range(groups.group_count)}
            out[t] = (groups.group_count, len(seen))
        return out

    counts = benchmark.pedantic(build, rounds=1, iterations=1)
    print("\n=== synchronous-group rotation coverage ===")
    for t, (total, seen) in counts.items():
        print(f"t={t}: {seen}/{total} distinct groups within one cycle")
        assert seen == total
