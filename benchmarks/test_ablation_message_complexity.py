"""Ablation: per-operation message complexity of each protocol.

Section 4.1 claims XPaxos's common case has "roughly speaking, the message
pattern and complexity of communication among replicas of state-of-the-art
CFT protocols".  We count actual messages per committed operation with the
tracer and compare: XPaxos must sit with Paxos/Zab, well below PBFT's
all-to-all and Zyzzyva's all-replica fan-out.
"""

from repro.common.config import ProtocolName, WorkloadConfig
from repro.harness.tracing import MessageTracer

from conftest import bench_config, wan_runner

#: Message kinds that constitute each protocol's replica-to-replica
#: ordering traffic (replies/requests excluded: identical everywhere).
ORDERING_KINDS = {
    "xpaxos": {"Prepare", "CommitVote", "FastPrepare", "FastCommit"},
    "paxos": {"Accept", "Accepted"},
    "pbft": {"PrePrepare", "CommitMsg"},
    "zyzzyva": {"OrderReq"},
    "zab": {"Proposal", "Ack", "CommitZab"},
}


def run_traced(protocol: ProtocolName):
    runner = wan_runner()
    config = bench_config(protocol)
    workload = WorkloadConfig(num_clients=32, request_size=1024,
                              duration_ms=3_000.0, warmup_ms=0.0,
                              client_site="CA")
    runtime = runner.build(config, workload)
    tracer = MessageTracer.attach(runtime.network)
    from repro.workloads.clients import ClosedLoopDriver

    driver = ClosedLoopDriver(runtime, workload)
    driver.run()
    kinds = ORDERING_KINDS[protocol.value]
    ordering = sum(1 for e in tracer.events if e.kind in kinds)
    batches = max(1, max(r.commit_log.end for r in runtime.replicas))
    return {
        "ops": driver.throughput.total,
        "ordering_messages": ordering,
        "batches": batches,
        "per_batch": ordering / batches,
    }


def test_message_complexity(benchmark):
    def build():
        return {p.value: run_traced(p) for p in ProtocolName}

    stats = benchmark.pedantic(build, rounds=1, iterations=1)

    print("\n=== ordering messages per batch (t = 1) ===")
    print(f"{'protocol':>9} {'ops':>7} {'msgs':>7} {'batches':>8} "
          f"{'msgs/batch':>11}")
    for name, row in stats.items():
        print(f"{name:>9} {row['ops']:>7} {row['ordering_messages']:>7} "
              f"{row['batches']:>8} {row['per_batch']:>11.2f}")

    # XPaxos t=1 fast path: 2 messages per batch (FastPrepare+FastCommit),
    # the same as Paxos's Accept+Accepted... plus Paxos's Learn is lazy.
    assert stats["xpaxos"]["per_batch"] <= 2.5
    assert abs(stats["xpaxos"]["per_batch"]
               - stats["paxos"]["per_batch"]) < 1.0
    # PBFT's two phases over 2t+1 replicas cost strictly more.
    assert stats["pbft"]["per_batch"] > 2.0 * stats["xpaxos"]["per_batch"]
    # Zab: proposal to 2t + 2t acks + 2t commits = ~6 per batch at t=1.
    assert stats["zab"]["per_batch"] > stats["xpaxos"]["per_batch"]
