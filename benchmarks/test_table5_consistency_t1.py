"""Table 5: nines of consistency for CFT, XPaxos, BFT at t = 1."""

from repro.reliability.tables import (
    consistency_cell,
    consistency_table,
    format_consistency_table,
)


def test_table5(benchmark):
    rows = benchmark.pedantic(lambda: consistency_table(1), rounds=1,
                              iterations=1)
    print("\n=== Table 5: nines of consistency (t = 1) ===")
    print(format_consistency_table(rows))

    by_key = {(r.nines_benign, r.nines_correct, r.nines_synchrony): r
              for r in rows}

    # Spot values straight from the paper's Table 5.
    assert (by_key[(3, 2, 2)].cft, by_key[(3, 2, 2)].xpaxos,
            by_key[(3, 2, 2)].bft) == (2, 3, 5)
    assert by_key[(4, 2, 2)].xpaxos == 4
    assert by_key[(4, 3, 3)].xpaxos == 5
    assert by_key[(5, 4, 4)].xpaxos == 7
    assert by_key[(6, 5, 5)].xpaxos == 9
    assert by_key[(8, 7, 6)].xpaxos == 13
    assert by_key[(8, 7, 6)].bft == 15

    # Structural invariants across the full grid.
    for row in rows:
        assert row.cft == row.nines_benign - 1       # the rule of thumb
        assert row.xpaxos >= row.cft                  # XFT dominates CFT
        assert row.xpaxos <= row.bft                  # in nines, at t=1

    # The paper's closed-form relation for the XPaxos-over-CFT gain:
    # 9correct - 1 when 9benign > 9sync and 9sync == 9correct, else
    # min(9sync, 9correct).
    for row in rows:
        if (row.nines_benign > row.nines_synchrony
                and row.nines_synchrony == row.nines_correct):
            expected_gain = row.nines_correct - 1
        else:
            expected_gain = min(row.nines_synchrony, row.nines_correct)
        assert row.xpaxos - row.cft == expected_gain, row
