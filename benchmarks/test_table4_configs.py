"""Table 4: replica configurations across EC2 regions per protocol."""

from repro.common.config import ProtocolName
from repro.harness.configs import common_case_sites, replica_placement_table


def test_table4(benchmark):
    """Regenerate the t = 1 placement and assert the paper's layout."""

    def build():
        return {
            t: replica_placement_table(t) for t in (1, 2)
        }

    tables = benchmark.pedantic(build, rounds=1, iterations=1)

    print("\n=== Table 4: replica configurations (t = 1) ===")
    print(f"{'protocol':>9} | sites (common case first, passive shaded)")
    for protocol, sites in tables[1].items():
        active = len(common_case_sites(ProtocolName(protocol), 1))
        marked = [site if index < active else f"[{site}]"
                  for index, site in enumerate(sites)]
        print(f"{protocol:>9} | " + "  ".join(marked))

    t1 = tables[1]
    # The paper: every primary in US West (CA); clients colocated there.
    for protocol, sites in t1.items():
        assert sites[0] == "CA"
    # XPaxos and Paxos: follower VA, passive JP (2t+1 = 3 replicas).
    assert tuple(t1["xpaxos"]) == ("CA", "VA", "JP")
    assert tuple(t1["paxos"]) == ("CA", "VA", "JP")
    # PBFT/Zyzzyva need 3t+1 = 4 replicas; the extra one is in EU.
    assert tuple(t1["pbft"]) == ("CA", "VA", "JP", "EU")
    assert tuple(t1["zyzzyva"]) == ("CA", "VA", "JP", "EU")
    # Common-case involvement per Section 5.1.2 / Figure 6.
    assert common_case_sites(ProtocolName.XPAXOS, 1) == ("CA", "VA")
    assert common_case_sites(ProtocolName.PAXOS, 1) == ("CA", "VA")
    assert common_case_sites(ProtocolName.PBFT, 1) == ("CA", "VA", "JP")
    assert len(common_case_sites(ProtocolName.ZYZZYVA, 1)) == 4

    # t = 2 (Section 5.2): XPaxos/Paxos in 5 DCs, BFT protocols in 7.
    t2 = tables[2]
    assert len(t2["xpaxos"]) == 5
    assert len(t2["pbft"]) == 7
    assert len(t2["zyzzyva"]) == 7
