"""Figure 7c: fault-free latency vs throughput, 1/0 benchmark, t = 2.

Expected shape (Section 5.2): XPaxos again clearly outperforms PBFT and
Zyzzyva and stays close to Paxos; moreover, unlike the BFT protocols,
XPaxos and Paxos "only suffer a moderate performance decrease with respect
to the t = 1 case".
"""

from repro.common.config import ProtocolName

from conftest import min_latency, one_zero, peak, print_curves, run_sweep

PROTOCOLS = (ProtocolName.XPAXOS, ProtocolName.PAXOS, ProtocolName.PBFT,
             ProtocolName.ZYZZYVA)


def test_fig7c(benchmark):
    def build():
        t2 = {p.value: run_sweep(p, one_zero, t=2) for p in PROTOCOLS}
        t1_reference = {
            p.value: run_sweep(p, one_zero, t=1)
            for p in (ProtocolName.XPAXOS, ProtocolName.ZYZZYVA)
        }
        return t2, t1_reference

    curves, reference = benchmark.pedantic(build, rounds=1, iterations=1)
    print_curves("Figure 7c: 1/0 benchmark, t = 2", curves)

    peaks = {name: peak(points) for name, points in curves.items()}
    latencies = {name: min_latency(points)
                 for name, points in curves.items()}
    print(f"peaks (kops/s): {peaks}")

    # Protocol ordering as in Figure 7a.
    assert peaks["xpaxos"] >= 0.6 * peaks["paxos"]
    assert peaks["xpaxos"] > peaks["pbft"]
    assert peaks["xpaxos"] > peaks["zyzzyva"]
    assert latencies["xpaxos"] < latencies["pbft"]
    assert latencies["xpaxos"] < latencies["zyzzyva"]

    # Fault scalability: "Paxos and XPaxos only suffer a moderate
    # performance decrease with respect to the t = 1 case."
    xpaxos_ratio = peaks["xpaxos"] / peak(reference["xpaxos"])
    zyzzyva_ratio = peaks["zyzzyva"] / peak(reference["zyzzyva"])
    print(f"t2/t1 peak ratio: xpaxos {xpaxos_ratio:.2f}, "
          f"zyzzyva {zyzzyva_ratio:.2f}")
    assert xpaxos_ratio > 0.5
