"""Figure 7a: fault-free latency vs throughput, 1/0 benchmark, t = 1.

Expected shape (Section 5.2): XPaxos performs significantly better than
PBFT and Zyzzyva and very close to Paxos, because XPaxos and Paxos both
implement a round trip across two replicas while the BFT patterns span
more and farther replicas.
"""

from repro.common.config import ProtocolName

from conftest import (
    min_latency,
    one_zero,
    peak,
    print_curves,
    run_sweep,
)

PROTOCOLS = (ProtocolName.XPAXOS, ProtocolName.PAXOS, ProtocolName.PBFT,
             ProtocolName.ZYZZYVA)


def test_fig7a(benchmark):
    def build():
        return {p.value: run_sweep(p, one_zero, t=1) for p in PROTOCOLS}

    curves = benchmark.pedantic(build, rounds=1, iterations=1)
    print_curves("Figure 7a: 1/0 benchmark, t = 1", curves)

    peaks = {name: peak(points) for name, points in curves.items()}
    latencies = {name: min_latency(points)
                 for name, points in curves.items()}
    print(f"peaks (kops/s): {peaks}")
    print(f"best latencies (ms): {latencies}")

    # Shape 1: XPaxos close to Paxos (same common-case span).
    assert peaks["xpaxos"] >= 0.7 * peaks["paxos"]
    assert latencies["xpaxos"] <= 1.4 * latencies["paxos"]
    # Shape 2: XPaxos clearly beats both BFT protocols on throughput.
    assert peaks["xpaxos"] > 1.2 * peaks["pbft"]
    assert peaks["xpaxos"] > 1.2 * peaks["zyzzyva"]
    # Shape 3: XPaxos has lower latency than both BFT protocols.
    assert latencies["xpaxos"] < latencies["pbft"]
    assert latencies["xpaxos"] < latencies["zyzzyva"]
