"""Table 3: round-trip latency of TCP ping across EC2 datacenters.

The paper measured three months of hping3 across six regions.  We regenerate
a synthetic trace from the calibrated latency model and check that the
sampled average tracks the measured average and that the sampled tail stays
within the measured envelope (the model is fit to median + 99.99%)."""

import math

from repro.net.latency import EC2_TABLE3, LatencyModel

PAIRS = sorted({tuple(sorted(pair)) for pair in EC2_TABLE3})
SAMPLES = 4_000


def test_table3(benchmark):
    """Regenerate the RTT matrix from synthetic ping traces."""

    def build():
        model = LatencyModel.ec2(seed=123)
        rows = {}
        for a, b in PAIRS:
            trace = sorted(model.rtt_trace(a, b, SAMPLES))
            avg = sum(trace) / len(trace)
            p9999 = trace[min(len(trace) - 1,
                              math.ceil(0.9999 * len(trace)) - 1)]
            rows[(a, b)] = (avg, p9999, trace[-1])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)

    print("\n=== Table 3: RTT across EC2 datacenters "
          "(measured -> regenerated) ===")
    print(f"{'link':>8} | {'avg meas':>9} {'avg sim':>9} | "
          f"{'p99.99 meas':>11} {'p99.99 sim':>11}")
    for (a, b), (avg, p9999, maximum) in sorted(rows.items()):
        stats = EC2_TABLE3[(a, b)]
        print(f"{a + '-' + b:>8} | {stats.avg_ms:9.0f} {avg:9.1f} | "
              f"{stats.p9999_ms:11.0f} {p9999:11.1f}")

    for (a, b), (avg, p9999, maximum) in rows.items():
        stats = EC2_TABLE3[(a, b)]
        # The sampled mean of a log-normal exceeds its median; it must stay
        # in the same ballpark as the measured average (shape, not value).
        assert 0.5 * stats.avg_ms <= avg <= 5.0 * stats.avg_ms, (a, b)
        # The tail must be heavy (well above the average) yet bounded by
        # the measured maximum.
        assert p9999 > 1.5 * stats.avg_ms, (a, b)
        assert maximum <= stats.max_ms, (a, b)


def test_delta_choice(benchmark):
    """Section 5.1.1: 'the round-trip latency between any two datacenters
    was less than 2.5 sec 99.99% of the time', hence Delta = 1.25 s."""

    def build():
        model = LatencyModel.ec2(seed=7)
        fractions = {}
        for a, b in PAIRS:
            trace = model.rtt_trace(a, b, SAMPLES)
            fractions[(a, b)] = (sum(1 for rtt in trace if rtt < 2_500.0)
                                 / len(trace))
        return fractions

    fractions = benchmark.pedantic(build, rounds=1, iterations=1)
    print("\n=== fraction of RTT samples under 2 * Delta = 2.5 s ===")
    for (a, b), fraction in sorted(fractions.items()):
        print(f"{a}-{b}: {fraction:.5f}")
        assert fraction >= 0.999, (a, b, fraction)
