"""Table 1: the maximum numbers of each type of fault tolerated by
representative SMR protocols, regenerated analytically."""

from repro.reliability.models import anarchy, fault_tolerance_table


def _render(rows):
    lines = [f"{'model':<12} {'property':<28} {'non-crash':>9} "
             f"{'crash':>6} {'partitioned':>11} {'combined':>8}"]
    for row in rows:
        lines.append(
            f"{row.model:<12} {row.property:<28} {row.non_crash:>9} "
            f"{row.crash:>6} {row.partitioned:>11} "
            f"{'yes' if row.combined else '':>8}")
    return "\n".join(lines)


def test_table1(benchmark):
    """Regenerate Table 1 for n = 3, 5, 7 and assert the paper's entries."""

    def build():
        return {n: fault_tolerance_table(n) for n in (3, 5, 7)}

    tables = benchmark.pedantic(build, rounds=1, iterations=1)
    for n, rows in tables.items():
        print(f"\n=== Table 1 (n = {n}) ===")
        print(_render(rows))

    rows5 = {(r.model, r.property): r for r in tables[5]}
    # Async CFT: consistency tolerates 0 non-crash, n crash, n-1 partitions.
    cft = rows5[("async CFT", "consistency")]
    assert (cft.non_crash, cft.crash, cft.partitioned) == (0, 5, 4)
    # Async BFT consistency: floor((n-1)/3) non-crash faults.
    bft = rows5[("async BFT", "consistency")]
    assert bft.non_crash == 1
    # Sync BFT: n-1 non-crash faults but zero partitioned replicas.
    sync = rows5[("sync BFT", "consistency")]
    assert (sync.non_crash, sync.partitioned) == (4, 0)
    # XFT consistency mode 1 equals CFT's row; mode 2 is the combined
    # majority threshold.
    xft1 = rows5[("XFT", "consistency (no non-crash)")]
    assert (xft1.non_crash, xft1.crash, xft1.partitioned) == (0, 5, 4)
    xft2 = rows5[("XFT", "consistency (with non-crash)")]
    assert xft2.combined and xft2.non_crash == 2
    # XFT availability: the combined majority threshold.
    xfta = rows5[("XFT", "availability")]
    assert xfta.combined and xfta.non_crash == 2


def test_anarchy_boundary(benchmark):
    """The anarchy predicate (Definition 2) that underpins Table 1's XFT
    rows: exhaustively check the boundary for t = 1..3."""

    def sweep():
        results = {}
        for t in (1, 2, 3):
            for tnc in range(0, 4):
                for tc in range(0, 4):
                    for tp in range(0, 4):
                        results[(t, tnc, tc, tp)] = anarchy(t, tnc, tc, tp)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for (t, tnc, tc, tp), value in results.items():
        expected = tnc > 0 and (tnc + tc + tp) > t
        assert value == expected
