"""The ZooKeeper data tree: hierarchical znodes with versions.

Implements the subset of ZooKeeper 3.4 semantics exercised by the paper's
macro-benchmark (1 kB ``setData``/``create`` writes) plus the operations a
coordination-service user expects: ``create`` (persistent, ephemeral and
sequential flavours), ``get``/``set`` with version checks, ``delete``,
``exists``, ``get_children``.  All operations are deterministic, which is
what lets the tree sit below any of the replication protocols.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class ZkError(Exception):
    """ZooKeeper-style error, carrying a code string."""

    def __init__(self, code: str, path: str = "") -> None:
        super().__init__(f"{code}: {path}" if path else code)
        self.code = code
        self.path = path


@dataclass
class Znode:
    """One node of the tree."""

    path: str
    data: bytes
    version: int = 0
    cversion: int = 0          # child-list version
    ephemeral_owner: int = 0   # session id, 0 for persistent nodes
    sequential_counter: int = 0
    children: List[str] = field(default_factory=list)

    @property
    def is_ephemeral(self) -> bool:
        """Nodes bound to a session disappear when it expires."""
        return self.ephemeral_owner != 0


def _parent_path(path: str) -> str:
    if path == "/":
        raise ZkError("NoNode", "/..")
    parent = path.rsplit("/", 1)[0]
    return parent or "/"


def _validate_path(path: str) -> None:
    if not path.startswith("/"):
        raise ZkError("BadArguments", path)
    if path != "/" and path.endswith("/"):
        raise ZkError("BadArguments", path)
    if "//" in path:
        raise ZkError("BadArguments", path)


class DataTree:
    """The deterministic znode store."""

    def __init__(self) -> None:
        root = Znode(path="/", data=b"")
        self._nodes: Dict[str, Znode] = {"/": root}
        self._ephemerals: Dict[int, List[str]] = {}

    # ------------------------------------------------------------------
    def create(self, path: str, data: bytes, ephemeral_owner: int = 0,
               sequential: bool = False) -> str:
        """Create a znode; returns the actual path (sequential nodes get a
        zero-padded counter suffix, as in ZooKeeper)."""
        _validate_path(path)
        parent_path = _parent_path(path)
        parent = self._nodes.get(parent_path)
        if parent is None:
            raise ZkError("NoNode", parent_path)
        if parent.is_ephemeral:
            raise ZkError("NoChildrenForEphemerals", parent_path)
        actual = path
        if sequential:
            actual = f"{path}{parent.sequential_counter:010d}"
            parent.sequential_counter += 1
        if actual in self._nodes:
            raise ZkError("NodeExists", actual)
        node = Znode(path=actual, data=bytes(data),
                     ephemeral_owner=ephemeral_owner)
        self._nodes[actual] = node
        parent.children.append(actual.rsplit("/", 1)[1])
        parent.cversion += 1
        if ephemeral_owner:
            self._ephemerals.setdefault(ephemeral_owner, []).append(actual)
        return actual

    def get(self, path: str) -> Tuple[bytes, int]:
        """Return ``(data, version)``."""
        node = self._require(path)
        return node.data, node.version

    def set(self, path: str, data: bytes, version: int = -1) -> int:
        """Overwrite data; ``version = -1`` skips the optimistic check.
        Returns the new version."""
        node = self._require(path)
        if version != -1 and node.version != version:
            raise ZkError("BadVersion", path)
        node.data = bytes(data)
        node.version += 1
        return node.version

    def delete(self, path: str, version: int = -1) -> None:
        """Remove a childless znode."""
        if path == "/":
            raise ZkError("BadArguments", path)
        node = self._require(path)
        if node.children:
            raise ZkError("NotEmpty", path)
        if version != -1 and node.version != version:
            raise ZkError("BadVersion", path)
        del self._nodes[path]
        parent = self._nodes[_parent_path(path)]
        parent.children.remove(path.rsplit("/", 1)[1])
        parent.cversion += 1
        if node.ephemeral_owner:
            owned = self._ephemerals.get(node.ephemeral_owner, [])
            if path in owned:
                owned.remove(path)

    def exists(self, path: str) -> bool:
        """Does ``path`` name a znode?"""
        _validate_path(path)
        return path in self._nodes

    def get_children(self, path: str) -> List[str]:
        """Sorted child names of a znode."""
        return sorted(self._require(path).children)

    def expire_session(self, session_id: int) -> List[str]:
        """Delete all ephemerals of a session; returns the removed paths."""
        removed = []
        for path in list(self._ephemerals.get(session_id, [])):
            if path in self._nodes and not self._nodes[path].children:
                self.delete(path)
                removed.append(path)
        self._ephemerals.pop(session_id, None)
        return removed

    # ------------------------------------------------------------------
    def _require(self, path: str) -> Znode:
        _validate_path(path)
        node = self._nodes.get(path)
        if node is None:
            raise ZkError("NoNode", path)
        return node

    def digest(self) -> bytes:
        """Deterministic digest of the whole tree."""
        h = hashlib.sha256()
        for path in sorted(self._nodes):
            node = self._nodes[path]
            h.update(path.encode())
            h.update(node.data)
            h.update(str((node.version, node.cversion,
                          node.ephemeral_owner,
                          node.sequential_counter)).encode())
        return h.digest()

    def snapshot(self) -> dict:
        """Copyable representation for checkpoints."""
        return {
            path: (node.data, node.version, node.cversion,
                   node.ephemeral_owner, node.sequential_counter,
                   list(node.children))
            for path, node in self._nodes.items()
        }

    def restore(self, snapshot: dict) -> None:
        """Rebuild the tree from :meth:`snapshot` output."""
        self._nodes = {}
        self._ephemerals = {}
        for path, fields_ in snapshot.items():
            data, version, cversion, owner, counter, children = fields_
            node = Znode(path=path, data=bytes(data), version=version,
                         cversion=cversion, ephemeral_owner=owner,
                         sequential_counter=counter,
                         children=list(children))
            self._nodes[path] = node
            if owner:
                self._ephemerals.setdefault(owner, []).append(path)

    def __len__(self) -> int:
        return len(self._nodes)
