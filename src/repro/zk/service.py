"""The coordination service as a replicated state machine.

Wraps :class:`DataTree` in the :class:`StateMachine` interface so any of the
five protocols can replicate it -- which is exactly the paper's ZooKeeper
integration ("the integration of the various protocols inside ZooKeeper was
carried out by replacing the Zab protocol", Section 5.5).

Operations are tuples ``(verb, *args)``; errors are returned as
``("error", code)`` values rather than raised, because a deterministic state
machine must reply identically on every replica.
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.smr.app import StateMachine
from repro.zk.datatree import DataTree, ZkError


def zk_write_op(client_id: int, seq: int,
                payload_size: int = 1024) -> tuple:
    """The macro-benchmark operation: a 1 kB ``set`` on a per-client znode
    (created on first use).  Matches "each client invokes 1 kB write
    operations in a closed loop" (Section 5.5).

    The payload is represented by its size, not real bytes, so the digest
    stays cheap while the wire-size accounting remains exact.
    """
    return ("bench-write", f"/bench/c{client_id}", seq, payload_size)


class CoordinationService(StateMachine):
    """Replicated ZooKeeper-like service."""

    def __init__(self) -> None:
        self.tree = DataTree()
        self.tree.create("/bench", b"")

    # ------------------------------------------------------------------
    def execute(self, operation: Any) -> Any:
        if not isinstance(operation, tuple) or not operation:
            return ("error", "BadArguments")
        verb = operation[0]
        try:
            return self._dispatch(verb, operation)
        except ZkError as err:
            return ("error", err.code)

    def _dispatch(self, verb: str, operation: tuple) -> Any:
        if verb == "create":
            _, path, data, *rest = operation
            ephemeral_owner = rest[0] if rest else 0
            sequential = rest[1] if len(rest) > 1 else False
            return ("ok", self.tree.create(path, data, ephemeral_owner,
                                           sequential))
        if verb == "get":
            _, path = operation
            data, version = self.tree.get(path)
            return ("ok", data, version)
        if verb == "set":
            _, path, data, *rest = operation
            version = rest[0] if rest else -1
            return ("ok", self.tree.set(path, data, version))
        if verb == "delete":
            _, path, *rest = operation
            self.tree.delete(path, rest[0] if rest else -1)
            return ("ok",)
        if verb == "exists":
            _, path = operation
            return ("ok", self.tree.exists(path))
        if verb == "children":
            _, path = operation
            return ("ok", tuple(self.tree.get_children(path)))
        if verb == "expire":
            _, session_id = operation
            return ("ok", tuple(self.tree.expire_session(session_id)))
        if verb == "bench-write":
            _, path, seq, size = operation
            if not self.tree.exists(path):
                self.tree.create(path, b"")
            # Store the logical write (seq, size): deterministic and cheap.
            version = self.tree.set(path, f"{seq}:{size}".encode())
            return ("ok", version)
        return ("error", "BadArguments")

    # ------------------------------------------------------------------
    def state_digest(self) -> bytes:
        return self.tree.digest()

    def snapshot(self) -> Any:
        return self.tree.snapshot()

    def restore(self, snapshot: Any) -> None:
        self.tree.restore(snapshot)
