"""A ZooKeeper-like coordination service replicated via any protocol."""

from repro.zk.datatree import DataTree, Znode, ZkError
from repro.zk.service import CoordinationService, zk_write_op

__all__ = ["DataTree", "Znode", "ZkError", "CoordinationService",
           "zk_write_op"]
