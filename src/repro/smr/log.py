"""Prepare logs and commit logs (the paper's ``PrepareLog`` / ``CommitLog``).

These structures are the heart of XPaxos's consistency argument: commit logs
carry the signed proofs that travel in view-change messages, and the
selection rule "highest view number wins per sequence number" (Section 4.3.3)
operates on them.  The baselines reuse the same containers with their own
proof types.

A log is a sparse map ``seqno -> entry`` with a low-water mark advanced by
checkpointing (discarding proofs below a stable checkpoint, Section 4.5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generic, Iterator, Optional, Tuple, TypeVar

from repro.crypto.primitives import Signature
from repro.smr.messages import Batch


@dataclass(frozen=True)
class PrepareEntry:
    """One slot of a prepare log: the batch plus the primary's signed
    prepare (or, for t=1, the primary's signed commit) message."""

    seqno: int
    view: int
    batch: Batch
    primary_sig: Signature

    def __repr__(self) -> str:
        return f"PrepareEntry(sn{self.seqno} v{self.view})"


@dataclass(frozen=True)
class CommitEntry:
    """One slot of a commit log: the batch plus the full proof.

    ``proof`` holds the signed commit messages -- for XPaxos, the primary's
    prepare signature plus the ``t`` follower commit signatures (t >= 2), or
    the ``(m0, m1)`` pair for t = 1.  The tuple is opaque to the container
    but is what fault detection verifies.
    """

    seqno: int
    view: int
    batch: Batch
    proof: Tuple[Signature, ...]

    def __repr__(self) -> str:
        return f"CommitEntry(sn{self.seqno} v{self.view})"


E = TypeVar("E")


class _SparseLog(Generic[E]):
    """Sparse ordered log with checkpoint truncation."""

    def __init__(self) -> None:
        self._entries: Dict[int, E] = {}
        self._low_water = 0  # entries <= low_water have been discarded

    def __contains__(self, seqno: int) -> bool:
        return seqno in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, seqno: int) -> Optional[E]:
        """Entry at ``seqno`` or None."""
        return self._entries.get(seqno)

    def put(self, seqno: int, entry: E) -> None:
        """Store ``entry`` at ``seqno`` (overwrites, e.g. after view change)."""
        if seqno <= self._low_water:
            return  # below a stable checkpoint; proof no longer needed
        self._entries[seqno] = entry

    def drop(self, seqno: int) -> None:
        """Remove one entry (fault injection: data-loss faults)."""
        self._entries.pop(seqno, None)

    def truncate_to(self, seqno: int) -> int:
        """Discard all entries at or below ``seqno`` (checkpoint).

        Returns the number of discarded entries.
        """
        stale = [sn for sn in self._entries if sn <= seqno]
        for sn in stale:
            del self._entries[sn]
        self._low_water = max(self._low_water, seqno)
        return len(stale)

    @property
    def low_water(self) -> int:
        """Highest checkpointed sequence number."""
        return self._low_water

    @property
    def end(self) -> int:
        """Highest occupied sequence number (the paper's ``End(log)``),
        or the low-water mark when empty."""
        return max(self._entries, default=self._low_water)

    def items(self) -> Iterator[Tuple[int, E]]:
        """Iterate ``(seqno, entry)`` in sequence order."""
        for sn in sorted(self._entries):
            yield sn, self._entries[sn]

    def copy(self) -> "_SparseLog[E]":
        """Shallow copy (entries are immutable dataclasses)."""
        clone = type(self)()
        clone._entries = dict(self._entries)
        clone._low_water = self._low_water
        return clone


class PrepareLog(_SparseLog[PrepareEntry]):
    """The paper's ``PrepareLog_sj``."""


class CommitLog(_SparseLog[CommitEntry]):
    """The paper's ``CommitLog_sj``."""

    def highest_view_entry(self, seqno: int,
                           other: Optional[CommitEntry]) -> Optional[CommitEntry]:
        """Pick the entry with the higher view between ours and ``other``
        (the Section 4.3.3 selection rule)."""
        mine = self.get(seqno)
        if mine is None:
            return other
        if other is None or mine.view >= other.view:
            return mine
        return other
