"""Replicated applications (deterministic state machines).

The SMR problem (Section 2) orders opaque client operations; the
applications here give those operations meaning:

* :class:`NullService` -- the paper's microbenchmark service: execution is a
  no-op and the reply has a configurable size (the "1/0" and "4/0"
  benchmarks replicate a null service).
* :class:`KVStore` -- a deterministic key-value store used by the examples
  and the safety checker (divergent states are easy to detect by digest).

Every state machine must be deterministic: the same sequence of operations
from the same initial state yields the same sequence of replies and the same
final state digest.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from typing import Any, Dict, Optional, Tuple


class StateMachine(ABC):
    """Interface every replicated application implements."""

    @abstractmethod
    def execute(self, operation: Any) -> Any:
        """Apply ``operation`` and return its reply. Must be deterministic."""

    @abstractmethod
    def state_digest(self) -> bytes:
        """Digest of the full application state (checkpointing, divergence
        detection)."""

    @abstractmethod
    def snapshot(self) -> Any:
        """Serializable copy of the state (checkpoint payload)."""

    @abstractmethod
    def restore(self, snapshot: Any) -> None:
        """Replace the state with ``snapshot`` (state transfer)."""


class NullService(StateMachine):
    """The microbenchmark application: no execution work, sized replies.

    Section 5.1.3: "each server replicates a null service (this means that
    there is no execution of requests)".  The state digest counts executed
    operations so that order divergence is still observable in tests.
    """

    def __init__(self, reply_size: int = 0) -> None:
        if reply_size < 0:
            raise ValueError("reply_size must be >= 0")
        self.reply_size = reply_size
        self._executed = 0
        self._order_hash = hashlib.sha256()

    def execute(self, operation: Any) -> Any:
        self._executed += 1
        self._order_hash.update(repr(operation).encode())
        return b"\x00" * self.reply_size

    def state_digest(self) -> bytes:
        h = self._order_hash.copy()
        h.update(str(self._executed).encode())
        return h.digest()

    def snapshot(self) -> Any:
        return (self._executed, self._order_hash.hexdigest())

    def restore(self, snapshot: Any) -> None:
        executed, order_hex = snapshot
        self._executed = executed
        # The running hash cannot be resumed from hex; fold the checkpoint
        # digest in as the new seed, preserving divergence detection.
        self._order_hash = hashlib.sha256(order_hex.encode())

    @property
    def executed_count(self) -> int:
        """Number of operations executed so far."""
        return self._executed


class KVStore(StateMachine):
    """A deterministic key-value store.

    Operations are tuples:

    * ``("put", key, value)`` -> previous value or None
    * ``("get", key)`` -> value or None
    * ``("delete", key)`` -> deleted value or None
    * ``("cas", key, expected, new)`` -> bool success
    """

    def __init__(self) -> None:
        self._data: Dict[str, Any] = {}
        self._version = 0

    def execute(self, operation: Any) -> Any:
        if not isinstance(operation, tuple) or not operation:
            raise ValueError(f"malformed KV operation: {operation!r}")
        op = operation[0]
        if op == "put":
            _, key, value = operation
            previous = self._data.get(key)
            self._data[key] = value
            self._version += 1
            return previous
        if op == "get":
            _, key = operation
            return self._data.get(key)
        if op == "delete":
            _, key = operation
            self._version += 1
            return self._data.pop(key, None)
        if op == "cas":
            _, key, expected, new = operation
            if self._data.get(key) == expected:
                self._data[key] = new
                self._version += 1
                return True
            return False
        raise ValueError(f"unknown KV operation: {op!r}")

    def state_digest(self) -> bytes:
        h = hashlib.sha256()
        for key in sorted(self._data):
            h.update(repr(key).encode())
            h.update(repr(self._data[key]).encode())
        h.update(str(self._version).encode())
        return h.digest()

    def snapshot(self) -> Any:
        return (dict(self._data), self._version)

    def restore(self, snapshot: Any) -> None:
        data, version = snapshot
        self._data = dict(data)
        self._version = version

    def get(self, key: str) -> Optional[Any]:
        """Local read helper for tests (bypasses replication)."""
        return self._data.get(key)

    def __len__(self) -> int:
        return len(self._data)
