"""Client-facing message types shared by every protocol.

A :class:`Request` is the paper's ``<REPLICATE, op, ts_c, c>_{sigma_c}``:
client-signed, carrying an operation and the client's monotonically
increasing timestamp.  A :class:`Reply` carries the (digest of the)
application response; its authentication differs per protocol (MACs in
XPaxos replies, for instance), so the envelope here only fixes the fields
every protocol needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.crypto.primitives import (
    Digest,
    Signature,
    cache_on_instance,
    digest_of,
)


@dataclass(frozen=True)
class Request:
    """A signed client request (the paper's ``req``)."""

    op: Any
    timestamp: int
    client: int
    size_bytes: int = 0
    signature: Optional[Signature] = None

    @property
    def rid(self) -> Tuple[int, int]:
        """Canonical request identifier ``(client, timestamp)``."""
        return (self.client, self.timestamp)

    def body(self) -> Tuple[Any, int, int]:
        """The signed portion (everything but the signature itself)."""
        return (self.op, self.timestamp, self.client)

    def __repr__(self) -> str:
        return f"Request(c{self.client}#{self.timestamp})"


@dataclass(frozen=True)
class Reply:
    """A reply delivered to the client by one replica."""

    replica: int
    view: int
    seqno: int
    timestamp: int
    result: Any
    result_digest: Optional[Digest] = None
    size_bytes: int = 0

    def matches(self, other: "Reply") -> bool:
        """Do two replies agree (same slot, same result)?

        The client commits on ``t+1`` (or protocol-specific quorum) matching
        replies; matching compares the logical content, not the sender.
        """
        return (
            self.view == other.view
            and self.seqno == other.seqno
            and self.timestamp == other.timestamp
            and self.result == other.result
        )

    def __repr__(self) -> str:
        return f"Reply(r{self.replica} v{self.view} sn{self.seqno})"


@dataclass(frozen=True)
class Batch:
    """An ordered group of requests occupying one sequence number.

    All evaluated protocols batch with ``B = 20`` (Section 5.1.2); a batch is
    treated as a unit by the ordering layer and unpacked at execution.
    """

    requests: Tuple[Request, ...]

    def __post_init__(self) -> None:
        if not self.requests:
            raise ValueError("a batch must contain at least one request")

    @property
    def size_bytes(self) -> int:
        """Wire size: sum of request payloads (headers are negligible)."""
        return sum(r.size_bytes for r in self.requests)

    def bodies_digest(self) -> Digest:
        """Digest over the signed request bodies, cached per instance.

        Byte-identical to ``digest_of(tuple(r.body() for r in batch))``.
        The batch is frozen, and in-process delivery shares one Batch
        object across every replica, so the body-tuple hash is computed
        once per batch instead of once per (replica, certificate,
        history-extension).  Callers still charge digest CPU per
        derivation -- the cache models memoized code, not free hashing.
        """
        cached = getattr(self, "_bodies_digest", None)
        if cached is None:
            cached = digest_of(tuple(r.body() for r in self.requests))
            cache_on_instance(self, "_bodies_digest", cached)
        return cached

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    def __repr__(self) -> str:
        return f"Batch[{len(self.requests)}]"
