"""Higher-level replicated services built on the StateMachine interface.

These are the kinds of applications the paper motivates XFT for
(coordination primitives that must not corrupt state under non-crash
faults):

* :class:`LockService` -- advisory locks with lease-style ownership and
  deterministic FIFO hand-off.
* :class:`FifoQueue` -- a replicated multi-producer/multi-consumer queue.
* :class:`CounterService` -- named counters with conditional updates.

All operations are tuples, all errors are returned as values (a
deterministic state machine must reply identically on every replica).
"""

from __future__ import annotations

import hashlib
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.smr.app import StateMachine


class LockService(StateMachine):
    """Advisory locks with FIFO waiters.

    Operations:

    * ``("acquire", lock, owner)`` -> ``("ok", "granted")`` or
      ``("ok", "queued")``
    * ``("release", lock, owner)`` -> ``("ok", new_owner_or_none)`` or
      ``("error", "NotOwner")``
    * ``("holder", lock)`` -> ``("ok", owner_or_none)``
    * ``("waiters", lock)`` -> ``("ok", (owner, ...))``
    """

    def __init__(self) -> None:
        self._holders: Dict[str, int] = {}
        self._waiters: Dict[str, Deque[int]] = {}

    def execute(self, operation: Any) -> Any:
        if not isinstance(operation, tuple) or not operation:
            return ("error", "BadArguments")
        verb = operation[0]
        if verb == "acquire":
            _, lock, owner = operation
            holder = self._holders.get(lock)
            if holder is None:
                self._holders[lock] = owner
                return ("ok", "granted")
            if holder == owner:
                return ("ok", "granted")  # re-entrant
            queue = self._waiters.setdefault(lock, deque())
            if owner not in queue:
                queue.append(owner)
            return ("ok", "queued")
        if verb == "release":
            _, lock, owner = operation
            if self._holders.get(lock) != owner:
                return ("error", "NotOwner")
            queue = self._waiters.get(lock)
            if queue:
                next_owner = queue.popleft()
                self._holders[lock] = next_owner
                return ("ok", next_owner)
            del self._holders[lock]
            return ("ok", None)
        if verb == "holder":
            _, lock = operation
            return ("ok", self._holders.get(lock))
        if verb == "waiters":
            _, lock = operation
            return ("ok", tuple(self._waiters.get(lock, ())))
        return ("error", "BadArguments")

    def state_digest(self) -> bytes:
        h = hashlib.sha256()
        for lock in sorted(self._holders):
            h.update(lock.encode())
            h.update(str(self._holders[lock]).encode())
            h.update(str(tuple(self._waiters.get(lock, ()))).encode())
        return h.digest()

    def snapshot(self) -> Any:
        return ({k: v for k, v in self._holders.items()},
                {k: list(q) for k, q in self._waiters.items()})

    def restore(self, snapshot: Any) -> None:
        holders, waiters = snapshot
        self._holders = dict(holders)
        self._waiters = {k: deque(q) for k, q in waiters.items()}


class FifoQueue(StateMachine):
    """A replicated multi-producer/multi-consumer FIFO queue.

    Operations:

    * ``("enqueue", queue, item)`` -> ``("ok", depth)``
    * ``("dequeue", queue)`` -> ``("ok", item_or_none)``
    * ``("peek", queue)`` -> ``("ok", item_or_none)``
    * ``("depth", queue)`` -> ``("ok", n)``
    """

    def __init__(self) -> None:
        self._queues: Dict[str, Deque[Any]] = {}

    def execute(self, operation: Any) -> Any:
        if not isinstance(operation, tuple) or not operation:
            return ("error", "BadArguments")
        verb = operation[0]
        if verb == "enqueue":
            _, name, item = operation
            queue = self._queues.setdefault(name, deque())
            queue.append(item)
            return ("ok", len(queue))
        if verb == "dequeue":
            _, name = operation
            queue = self._queues.get(name)
            if not queue:
                return ("ok", None)
            return ("ok", queue.popleft())
        if verb == "peek":
            _, name = operation
            queue = self._queues.get(name)
            return ("ok", queue[0] if queue else None)
        if verb == "depth":
            _, name = operation
            return ("ok", len(self._queues.get(name, ())))
        return ("error", "BadArguments")

    def state_digest(self) -> bytes:
        h = hashlib.sha256()
        for name in sorted(self._queues):
            h.update(name.encode())
            h.update(repr(list(self._queues[name])).encode())
        return h.digest()

    def snapshot(self) -> Any:
        return {name: list(items) for name, items in self._queues.items()}

    def restore(self, snapshot: Any) -> None:
        self._queues = {name: deque(items)
                        for name, items in snapshot.items()}


class CounterService(StateMachine):
    """Named counters with conditional updates.

    Operations:

    * ``("incr", name, delta)`` -> ``("ok", new_value)``
    * ``("get", name)`` -> ``("ok", value)``
    * ``("cas", name, expected, new)`` -> ``("ok", bool)``
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}

    def execute(self, operation: Any) -> Any:
        if not isinstance(operation, tuple) or not operation:
            return ("error", "BadArguments")
        verb = operation[0]
        if verb == "incr":
            _, name, delta = operation
            value = self._counters.get(name, 0) + delta
            self._counters[name] = value
            return ("ok", value)
        if verb == "get":
            _, name = operation
            return ("ok", self._counters.get(name, 0))
        if verb == "cas":
            _, name, expected, new = operation
            if self._counters.get(name, 0) == expected:
                self._counters[name] = new
                return ("ok", True)
            return ("ok", False)
        return ("error", "BadArguments")

    def state_digest(self) -> bytes:
        h = hashlib.sha256()
        for name in sorted(self._counters):
            h.update(name.encode())
            h.update(str(self._counters[name]).encode())
        return h.digest()

    def snapshot(self) -> Any:
        return dict(self._counters)

    def restore(self, snapshot: Any) -> None:
        self._counters = dict(snapshot)
