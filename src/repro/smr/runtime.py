"""Shared runtime for replicas and clients of every protocol.

:class:`ReplicaBase` and :class:`SmrClientBase` wrap a :class:`Process` with
a network endpoint, a keystore facade, and a CPU meter.  Protocol modules
subclass these and implement ``on_message``.

:class:`ClusterRuntime` wires a full experiment together: simulator,
network, keystore, replicas, clients -- and exposes the fault-injection and
safety-checking hooks the harness and tests use.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.common.config import ClusterConfig
from repro.common.errors import ConfigurationError
from repro.crypto.costs import CostModel, CpuMeter
from repro.crypto.primitives import (
    KeyStore,
    client_principal,
    replica_principal,
)
from repro.net.network import Endpoint, Network
from repro.sim.core import Simulator
from repro.sim.process import Process
from repro.smr.app import StateMachine


class NodeBase(Process):
    """Common machinery of any network-attached node."""

    def __init__(self, sim: Simulator, network: Network, name: str,
                 site: str, keystore: KeyStore,
                 cost_model: Optional[CostModel] = None) -> None:
        super().__init__(sim, name)
        self.network = network
        self.site = site
        self.keystore = keystore
        self.cpu = CpuMeter(cost_model or CostModel.free())
        network.attach(Endpoint(name, site, self._on_deliver,
                                lambda: not self.crashed))
        #: Messages received, for debugging and protocol statistics.
        self.messages_received = 0

    # ------------------------------------------------------------------
    def _on_deliver(self, src: str, payload: Any) -> None:
        if self.crashed:
            return
        self.messages_received += 1
        self.on_message(src, payload)

    def on_message(self, src: str, payload: Any) -> None:
        """Handle one delivered message. Subclasses implement."""
        raise NotImplementedError

    def send(self, dst: str, payload: Any, size_bytes: int = 0) -> None:
        """Send a message through the network."""
        self.network.send(self.name, dst, payload, size_bytes=size_bytes)

    def multicast(self, dsts: Sequence[str], payload: Any,
                  size_bytes: int = 0) -> None:
        """Send the same payload to each destination in order.

        Equivalent to sending sequentially, but the network resolves the
        sender-side bookkeeping once for the whole broadcast.
        """
        self.network.multicast(self.name, dsts, payload,
                               size_bytes=size_bytes)


class ReplicaBase(NodeBase):
    """Base class for protocol replicas.

    A replica owns a state machine instance, a signing principal, and
    standard counters.  Subclasses implement the protocol proper.
    """

    def __init__(self, replica_id: int, config: ClusterConfig,
                 sim: Simulator, network: Network, keystore: KeyStore,
                 app_factory: Callable[[], StateMachine],
                 site: str, cost_model: Optional[CostModel] = None) -> None:
        super().__init__(sim, network,
                         name=f"r{replica_id}", site=site,
                         keystore=keystore, cost_model=cost_model)
        self.replica_id = replica_id
        self.config = config
        self.app = app_factory()
        self._app_factory = app_factory
        self.principal = replica_principal(replica_id)
        #: Execution order observed by this replica, recorded for the safety
        #: checker: list of (seqno, request id) pairs.
        self.execution_trace: List[tuple] = []
        #: Count of committed requests (not batches).
        self.committed_requests = 0

    # -- crypto convenience, charging CPU --------------------------------
    def sign(self, payload: Any):
        """Sign as this replica, charging signature CPU cost."""
        self.cpu.charge_sign()
        return self.keystore.sign(self.principal, payload)

    def verify(self, signature, payload: Any) -> bool:
        """Verify a signature, charging CPU cost."""
        self.cpu.charge_verify()
        return self.keystore.verify(signature, payload)

    def mac_for(self, receiver: str, payload: Any, size_bytes: int = 0):
        """MAC a payload for ``receiver``, charging CPU cost."""
        self.cpu.charge_mac(size_bytes)
        return self.keystore.mac(self.principal, receiver, payload)

    # -- lifecycle --------------------------------------------------------
    def recover(self) -> None:
        """Recover with a fresh volatile state.

        The paper's replicas recover from their *durable* logs; our protocol
        subclasses override to decide what survives a crash.  The base class
        restarts the application from scratch (state transfer re-fills it).
        """
        super().recover()
        self.app = self._app_factory()

    # -- protocol hooks -----------------------------------------------
    def replica_name(self, replica_id: int) -> str:
        """Network name of a peer replica."""
        return f"r{replica_id}"

    def all_replica_names(self) -> List[str]:
        """Network names of the whole cluster, including self."""
        assert self.config.n is not None
        return [f"r{i}" for i in range(self.config.n)]

    def other_replica_names(self) -> List[str]:
        """Network names of all peers."""
        return [n for n in self.all_replica_names() if n != self.name]


class SmrClientBase(NodeBase):
    """Base class for protocol clients.

    Provides signed request construction and per-request latency recording;
    the closed-loop driving logic lives in :mod:`repro.workloads.clients`.
    """

    def __init__(self, client_id: int, config: ClusterConfig,
                 sim: Simulator, network: Network, keystore: KeyStore,
                 site: str, cost_model: Optional[CostModel] = None) -> None:
        super().__init__(sim, network,
                         name=f"c{client_id}", site=site,
                         keystore=keystore, cost_model=cost_model)
        self.client_id = client_id
        self.config = config
        self.principal = client_principal(client_id)
        self.timestamp = 0
        #: Completed operations: list of (send time, commit time, rid).
        self.completions: List[tuple] = []
        #: Callback invoked on each commit: ``on_commit(rid, latency_ms)``.
        self.on_commit: Optional[Callable[[tuple, float], None]] = None

    def sign(self, payload: Any):
        """Sign as this client, charging CPU."""
        self.cpu.charge_sign()
        return self.keystore.sign(self.principal, payload)

    def next_timestamp(self) -> int:
        """Monotonically increasing per-client timestamp ``ts_c``."""
        self.timestamp += 1
        return self.timestamp

    def record_completion(self, rid: tuple, sent_at: float) -> None:
        """Record a committed request and fire the harness callback."""
        latency = self.sim.now - sent_at
        self.completions.append((sent_at, self.sim.now, rid))
        if self.on_commit is not None:
            self.on_commit(rid, latency)


class ClusterRuntime:
    """Owns all moving parts of one simulated deployment.

    Protocol factories build replicas/clients into this container; the
    harness and the fault injector operate on it.
    """

    def __init__(self, config: ClusterConfig, sim: Simulator,
                 network: Network, keystore: KeyStore) -> None:
        self.config = config
        self.sim = sim
        self.network = network
        self.keystore = keystore
        self.replicas: List[ReplicaBase] = []
        self.clients: List[SmrClientBase] = []

    def add_replica(self, replica: ReplicaBase) -> None:
        """Register a replica (must be added in id order)."""
        if replica.replica_id != len(self.replicas):
            raise ConfigurationError(
                f"replicas must be added in order; expected id "
                f"{len(self.replicas)}, got {replica.replica_id}"
            )
        self.replicas.append(replica)

    def add_client(self, client: SmrClientBase) -> None:
        """Register a client."""
        self.clients.append(client)

    def replica(self, replica_id: int) -> ReplicaBase:
        """Replica by id."""
        return self.replicas[replica_id]

    def correct_replicas(self) -> List[ReplicaBase]:
        """All replicas currently up (the fault injector marks crashes)."""
        return [r for r in self.replicas if not r.crashed]

    def run(self, until: float) -> None:
        """Advance the simulation."""
        self.sim.run(until=until)
