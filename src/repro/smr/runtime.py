"""Shared runtime for replicas and clients of every protocol.

:class:`ReplicaBase` and :class:`SmrClientBase` wrap a :class:`Process` with
a network endpoint, a keystore facade, and a CPU meter.  Protocol modules
subclass these and implement ``on_message``.

:class:`ClusterRuntime` wires a full experiment together: simulator,
network, keystore, replicas, clients -- and exposes the fault-injection and
safety-checking hooks the harness and tests use.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.common.config import ClusterConfig
from repro.common.errors import ConfigurationError
from repro.crypto.authenticators import authenticator_for
from repro.crypto.costs import CostModel, CpuMeter
from repro.crypto.primitives import (
    KeyStore,
    client_principal,
    replica_principal,
)
from repro.net.network import Endpoint, Network
from repro.sim.core import Simulator
from repro.sim.process import Process
from repro.smr.app import StateMachine


class NodeBase(Process):
    """Common machinery of any network-attached node."""

    def __init__(self, sim: Simulator, network: Network, name: str,
                 site: str, keystore: KeyStore,
                 cost_model: Optional[CostModel] = None) -> None:
        super().__init__(sim, name)
        self.network = network
        self.site = site
        self.keystore = keystore
        self.cpu = CpuMeter(cost_model or CostModel.free())
        network.attach(Endpoint(name, site, self._on_deliver,
                                lambda: not self.crashed,
                                deliver_auth=self._on_deliver_auth))
        #: Messages received, for debugging and protocol statistics.
        self.messages_received = 0
        #: Deliveries dropped because their channel authenticator failed.
        self.auth_failures = 0

    # ------------------------------------------------------------------
    def _on_deliver(self, src: str, payload: Any) -> None:
        if self.crashed:
            return
        self.messages_received += 1
        self.on_message(src, payload)

    def _on_deliver_auth(self, src: str, body: Any, auth: Any,
                         size_bytes: int) -> None:
        """Authenticated delivery: verify the channel authenticator the
        transport stamped for us, then dispatch the bare body.

        A failed check drops the message before the protocol handler sees
        it -- the transport-level equivalent of the per-handler MAC checks
        the payloads used to carry.
        """
        if self.crashed:
            return
        self.messages_received += 1
        policy = authenticator_for(type(body))
        if policy is not None and policy.verify_on_delivery:
            network = self.network
            network.stats.auth_verified += 1
            # The transport publishes the digest it computed from this
            # very body object; a forged injection bypassing the
            # transport sees None and pays the full re-hash.
            if not policy.verify(self.keystore, self.cpu, src, self.name,
                                 body, auth, size_bytes=size_bytes,
                                 body_digest=network.delivery_digest):
                self.auth_failures += 1
                return
        self.on_message(src, body)

    def on_message(self, src: str, payload: Any) -> None:
        """Handle one delivered message. Subclasses implement."""
        raise NotImplementedError

    def send(self, dst: str, payload: Any, size_bytes: int = 0) -> None:
        """Send a message through the network."""
        self.network.send(self.name, dst, payload, size_bytes=size_bytes)

    def multicast(self, dsts: Sequence[str], payload: Any,
                  size_bytes: int = 0) -> None:
        """Send the same payload to each destination in order.

        Equivalent to sending sequentially, but the network resolves the
        sender-side bookkeeping once for the whole broadcast.
        """
        self.network.multicast(self.name, dsts, payload,
                               size_bytes=size_bytes)

    def _policy_for(self, payload: Any):
        policy = authenticator_for(type(payload))
        if policy is None:
            raise ConfigurationError(
                f"{type(payload).__name__} has no authenticator policy; "
                f"register it in its protocol's messages module")
        return policy

    def send_authenticated(self, dst: str, payload: Any,
                           size_bytes: int = 0) -> None:
        """Send one message under its class's authenticator policy.

        The policy (registered in ``repro.crypto.authenticators``) decides
        what travels on the channel: a per-receiver MAC, a signature, a
        modelled-cost-only MAC, or nothing.  Sender-side CPU is charged
        here; the receiver's runtime verifies before dispatch.
        """
        policy = self._policy_for(payload)
        policy.charge_send(self.cpu, 1, size_bytes)
        self.network.send_authenticated(
            self.name, dst, payload, size_bytes=size_bytes,
            authenticator=policy, keystore=self.keystore)

    def multicast_authenticated(self, dsts: Sequence[str], payload: Any,
                                size_bytes: int = 0) -> None:
        """Fan a message out with per-receiver authenticators stamped at
        delivery fan-out time (see :meth:`Network.multicast_authenticated`).

        This is what lets MAC-vector fan-outs ride the multicast fast
        path: the payload is identical for every receiver, only the
        transport-level authenticator differs.
        """
        if not dsts:
            return
        policy = self._policy_for(payload)
        policy.charge_send(self.cpu, len(dsts), size_bytes)
        self.network.multicast_authenticated(
            self.name, dsts, payload, size_bytes=size_bytes,
            authenticator=policy, keystore=self.keystore)


class ReplicaBase(NodeBase):
    """Base class for protocol replicas.

    A replica owns a state machine instance, a signing principal, and
    standard counters.  Subclasses implement the protocol proper.
    """

    def __init__(self, replica_id: int, config: ClusterConfig,
                 sim: Simulator, network: Network, keystore: KeyStore,
                 app_factory: Callable[[], StateMachine],
                 site: str, cost_model: Optional[CostModel] = None) -> None:
        super().__init__(sim, network,
                         name=f"r{replica_id}", site=site,
                         keystore=keystore, cost_model=cost_model)
        self.replica_id = replica_id
        self.config = config
        self.app = app_factory()
        self._app_factory = app_factory
        self.principal = replica_principal(replica_id)
        #: Execution order observed by this replica, recorded for the safety
        #: checker: list of (seqno, request id) pairs.
        self.execution_trace: List[tuple] = []
        #: Count of committed requests (not batches).
        self.committed_requests = 0

    # -- fan-out helper ---------------------------------------------------
    def _fanout_with_self(self, names: Sequence[str], payload: Any,
                          size_bytes: int,
                          self_handler: Callable[[], None]) -> None:
        """Authenticated fan-out that keeps this replica's own processing
        at its position in ``names``, so the per-destination latency draw
        order matches a sequential send loop with inline self-delivery.

        The one shared implementation of the split pattern every protocol
        uses (votes, campaigns, view-change fan-outs): changing how the
        self position is located here changes it for all of them, instead
        of silently desynchronizing one protocol's draw order.
        """
        if self.name not in names:
            self.multicast_authenticated(names, payload,
                                         size_bytes=size_bytes)
            return
        me = names.index(self.name)
        before, after = names[:me], names[me + 1:]
        policy = self._policy_for(payload)
        policy.charge_send(self.cpu, len(before) + len(after), size_bytes)
        # One shared authenticator context (typically the payload digest)
        # across both halves of the split: still one hash per fan-out.
        context = policy.begin(self.keystore, self.name, payload)
        network = self.network
        if before:
            network.multicast_authenticated(
                self.name, before, payload, size_bytes=size_bytes,
                authenticator=policy, keystore=self.keystore,
                context=context)
        self_handler()
        if after:
            network.multicast_authenticated(
                self.name, after, payload, size_bytes=size_bytes,
                authenticator=policy, keystore=self.keystore,
                context=context)

    # -- crypto convenience, charging CPU --------------------------------
    def sign(self, payload: Any):
        """Sign as this replica, charging signature CPU cost."""
        self.cpu.charge_sign()
        return self.keystore.sign(self.principal, payload)

    def verify(self, signature, payload: Any) -> bool:
        """Verify a signature, charging CPU cost."""
        self.cpu.charge_verify()
        return self.keystore.verify(signature, payload)

    def mac_for(self, receiver: str, payload: Any, size_bytes: int = 0):
        """MAC a payload for ``receiver``, charging CPU cost."""
        self.cpu.charge_mac(size_bytes)
        return self.keystore.mac(self.principal, receiver, payload)

    # -- lifecycle --------------------------------------------------------
    def recover(self) -> None:
        """Recover with a fresh volatile state.

        The paper's replicas recover from their *durable* logs; our protocol
        subclasses override to decide what survives a crash.  The base class
        restarts the application from scratch (state transfer re-fills it).
        """
        super().recover()
        self.app = self._app_factory()

    # -- protocol hooks -----------------------------------------------
    def replica_name(self, replica_id: int) -> str:
        """Network name of a peer replica."""
        return f"r{replica_id}"

    def all_replica_names(self) -> List[str]:
        """Network names of the whole cluster, including self."""
        assert self.config.n is not None
        return [f"r{i}" for i in range(self.config.n)]

    def other_replica_names(self) -> List[str]:
        """Network names of all peers."""
        return [n for n in self.all_replica_names() if n != self.name]


class SmrClientBase(NodeBase):
    """Base class for protocol clients.

    Provides signed request construction and per-request latency recording;
    the closed-loop driving logic lives in :mod:`repro.workloads.clients`.
    """

    def __init__(self, client_id: int, config: ClusterConfig,
                 sim: Simulator, network: Network, keystore: KeyStore,
                 site: str, cost_model: Optional[CostModel] = None) -> None:
        super().__init__(sim, network,
                         name=f"c{client_id}", site=site,
                         keystore=keystore, cost_model=cost_model)
        self.client_id = client_id
        self.config = config
        self.principal = client_principal(client_id)
        self.timestamp = 0
        #: Completed operations: list of (send time, commit time, rid).
        self.completions: List[tuple] = []
        #: Callback invoked on each commit: ``on_commit(rid, latency_ms)``.
        self.on_commit: Optional[Callable[[tuple, float], None]] = None

    def sign(self, payload: Any):
        """Sign as this client, charging CPU."""
        self.cpu.charge_sign()
        return self.keystore.sign(self.principal, payload)

    def next_timestamp(self) -> int:
        """Monotonically increasing per-client timestamp ``ts_c``."""
        self.timestamp += 1
        return self.timestamp

    def record_completion(self, rid: tuple, sent_at: float) -> None:
        """Record a committed request and fire the harness callback."""
        latency = self.sim.now - sent_at
        self.completions.append((sent_at, self.sim.now, rid))
        if self.on_commit is not None:
            self.on_commit(rid, latency)


class ClusterRuntime:
    """Owns all moving parts of one simulated deployment.

    Protocol factories build replicas/clients into this container; the
    harness and the fault injector operate on it.
    """

    def __init__(self, config: ClusterConfig, sim: Simulator,
                 network: Network, keystore: KeyStore) -> None:
        self.config = config
        self.sim = sim
        self.network = network
        self.keystore = keystore
        self.replicas: List[ReplicaBase] = []
        self.clients: List[SmrClientBase] = []

    def add_replica(self, replica: ReplicaBase) -> None:
        """Register a replica (must be added in id order)."""
        if replica.replica_id != len(self.replicas):
            raise ConfigurationError(
                f"replicas must be added in order; expected id "
                f"{len(self.replicas)}, got {replica.replica_id}"
            )
        self.replicas.append(replica)

    def add_client(self, client: SmrClientBase) -> None:
        """Register a client."""
        self.clients.append(client)

    def replica(self, replica_id: int) -> ReplicaBase:
        """Replica by id."""
        return self.replicas[replica_id]

    def correct_replicas(self) -> List[ReplicaBase]:
        """All replicas currently up (the fault injector marks crashes)."""
        return [r for r in self.replicas if not r.crashed]

    def run(self, until: float) -> None:
        """Advance the simulation."""
        self.sim.run(until=until)
