"""State-machine replication runtime shared by every protocol."""

from repro.smr.app import KVStore, NullService, StateMachine
from repro.smr.log import CommitEntry, CommitLog, PrepareEntry, PrepareLog
from repro.smr.messages import Reply, Request
from repro.smr.runtime import ClusterRuntime, ReplicaBase, SmrClientBase

__all__ = [
    "StateMachine",
    "NullService",
    "KVStore",
    "Request",
    "Reply",
    "PrepareEntry",
    "CommitEntry",
    "PrepareLog",
    "CommitLog",
    "ReplicaBase",
    "SmrClientBase",
    "ClusterRuntime",
]
