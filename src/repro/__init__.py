"""Reproduction of "XFT: Practical Fault Tolerance Beyond Crashes" (OSDI 2016).

This package provides:

* :mod:`repro.sim` -- a deterministic discrete-event simulator (the substrate
  replacing the paper's EC2 testbed wall clock).
* :mod:`repro.net` -- a WAN network model calibrated to the paper's Table 3
  EC2 round-trip latency matrix, with partition and asynchrony injection.
* :mod:`repro.crypto` -- simulated digital signatures / MACs with a CPU cost
  model calibrated to RSA1024 / HMAC-SHA1 (used for the Figure 8 CPU study).
* :mod:`repro.smr` -- the state-machine-replication runtime (replicas,
  clients, applications such as a null service and a key-value store).
* :mod:`repro.protocols` -- XPaxos (the paper's contribution) plus the
  baselines it is evaluated against: WAN-optimized Paxos, speculative PBFT,
  Zyzzyva, and Zab.
* :mod:`repro.faults` -- fault injection (crashes, data loss, equivocation,
  network partitions) used for the under-faults experiment (Figure 9) and the
  safety/fault-detection test suites.
* :mod:`repro.scenarios` -- declarative fault scenarios (schedule +
  workload + invariants) and the built-in conformance library run by the
  ``repro scenarios`` matrix.
* :mod:`repro.reliability` -- the closed-form reliability analysis of
  Section 6 (nines of consistency / availability; Tables 1 and 5-8).
* :mod:`repro.zk` -- a ZooKeeper-like coordination service used by the
  macro-benchmark (Figure 10).
* :mod:`repro.workloads` and :mod:`repro.harness` -- benchmark workload
  generators and the experiment runner that regenerates every table and
  figure of the paper's evaluation.
"""

from repro.common.config import ClusterConfig, ProtocolName, WorkloadConfig
from repro.scenarios.scenario import Scenario
from repro.sim.core import Simulator
from repro.net.latency import LatencyModel
from repro.net.network import Network
from repro.reliability.models import (
    nines_of,
    p_bft_available,
    p_bft_consistent,
    p_cft_available,
    p_cft_consistent,
    p_xft_available,
    p_xft_consistent,
)

__version__ = "1.0.0"

__all__ = [
    "ClusterConfig",
    "ProtocolName",
    "WorkloadConfig",
    "Scenario",
    "Simulator",
    "Network",
    "LatencyModel",
    "nines_of",
    "p_cft_consistent",
    "p_cft_available",
    "p_bft_consistent",
    "p_bft_available",
    "p_xft_consistent",
    "p_xft_available",
    "__version__",
]
