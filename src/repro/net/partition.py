"""Network partitions and the paper's Definition 1 of partitioned replicas.

A partition is modelled as a set of blocked node pairs: while a pair is
blocked, messages between them are silently dropped (the simulator's
equivalent of "cannot be delivered and processed within delay Delta").

:func:`partitioned_replicas` implements Definition 1: a replica is
partitioned iff it is not in the largest subset of replicas in which every
pair communicates timely.  Ties pick one largest subset arbitrarily (but
deterministically), exactly as the paper allows.
"""

from __future__ import annotations

import itertools
from typing import AbstractSet, Dict, FrozenSet, Iterable, List, Set, Tuple


def _pair(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)


class PartitionController:
    """Mutable record of which node pairs are currently blocked.

    Nodes are identified by their network names (e.g. ``"r0"``, ``"c3"``).
    Supports symmetric pairwise blocking, full isolation of one node, and
    splitting the cluster into named groups.
    """

    def __init__(self) -> None:
        self._blocked: Set[Tuple[str, str]] = set()

    def blocked(self, a: str, b: str) -> bool:
        """True if messages between ``a`` and ``b`` are currently dropped."""
        return _pair(a, b) in self._blocked

    def block_pair(self, a: str, b: str) -> None:
        """Sever the bidirectional link between ``a`` and ``b``."""
        if a == b:
            raise ValueError("cannot partition a node from itself")
        self._blocked.add(_pair(a, b))

    def unblock_pair(self, a: str, b: str) -> None:
        """Heal the link. Idempotent."""
        self._blocked.discard(_pair(a, b))

    def isolate(self, node: str, others: Iterable[str]) -> None:
        """Cut ``node`` off from every node in ``others``."""
        for other in others:
            if other != node:
                self.block_pair(node, other)

    def heal_node(self, node: str) -> None:
        """Remove every blocked pair that involves ``node``."""
        self._blocked = {p for p in self._blocked if node not in p}

    def split(self, group_a: Iterable[str], group_b: Iterable[str]) -> None:
        """Partition two disjoint groups from each other."""
        ga, gb = list(group_a), list(group_b)
        overlap = set(ga) & set(gb)
        if overlap:
            raise ValueError(f"groups overlap: {overlap}")
        for a in ga:
            for b in gb:
                self.block_pair(a, b)

    def heal_all(self) -> None:
        """Remove every partition."""
        self._blocked.clear()

    @property
    def blocked_pairs(self) -> FrozenSet[Tuple[str, str]]:
        """Snapshot of currently blocked pairs."""
        return frozenset(self._blocked)


def partitioned_replicas(
    replicas: Iterable[str],
    timely: "callable",
) -> FrozenSet[str]:
    """Compute the set of partitioned replicas per Definition 1.

    Args:
        replicas: names of all replicas.
        timely: predicate ``timely(a, b) -> bool`` -- can ``a`` and ``b``
            exchange a message within Delta right now.

    Returns:
        The replicas *not* in the largest clique of pairwise-timely
        replicas.  With multiple maximum cliques, the lexicographically
        smallest is chosen so the result is deterministic (the paper says
        "only one of them is recognized as the largest subset").
    """
    nodes: List[str] = sorted(replicas)
    n = len(nodes)
    best: Tuple[str, ...] = ()
    # n is small (the paper evaluates n in {3, 5, 7}); exhaustive search over
    # subsets, largest first, is exact and fast enough.
    for size in range(n, 0, -1):
        if size <= len(best):
            break
        for combo in itertools.combinations(nodes, size):
            if all(timely(a, b)
                   for a, b in itertools.combinations(combo, 2)):
                best = combo
                break
        if best and len(best) == size:
            break
    return frozenset(nodes) - frozenset(best)
