"""Per-link bandwidth model (serialization delay + queueing).

The paper repeatedly notes that in the WAN "the network is the bottleneck,
with high link latency and relatively low, heterogeneous link bandwidth"
(Section 4.1), and the ZooKeeper macro-benchmark's explanation hinges on the
*uplink of the leader* being the bottleneck (Section 5.5: Zab's leader sends
to 2t replicas, XPaxos's to t followers, hence XPaxos peaks higher).

We model each node's WAN uplink as a FIFO serializer with finite rate: a
message of ``size`` bytes occupies the uplink for ``size / rate`` virtual
milliseconds and queues behind previously sent messages.  Intra-site traffic
is not charged.
"""

from __future__ import annotations

from typing import Dict

#: Default WAN uplink of one mid-range EC2 VM, bytes per virtual millisecond.
#: 40 MB/s ~= 320 Mbit/s, representative of the paper's instance class.
DEFAULT_UPLINK_BYTES_PER_MS = 40_000.0


class _Uplink:
    __slots__ = ("rate", "free_at", "bytes_sent")

    def __init__(self, rate: float) -> None:
        self.rate = rate
        self.free_at = 0.0
        self.bytes_sent = 0


class BandwidthModel:
    """Tracks uplink occupancy per named node.

    ``serialize(node, size, now)`` returns the virtual time at which the last
    byte of the message leaves the node, advancing the node's queue.
    """

    def __init__(self,
                 default_rate: float = DEFAULT_UPLINK_BYTES_PER_MS) -> None:
        if default_rate <= 0:
            raise ValueError("uplink rate must be positive")
        self._default_rate = default_rate
        self._uplinks: Dict[str, _Uplink] = {}

    def set_rate(self, node: str, rate: float) -> None:
        """Override the uplink rate of one node (heterogeneous links)."""
        if rate <= 0:
            raise ValueError("uplink rate must be positive")
        self._uplink(node).rate = rate

    def _uplink(self, node: str) -> _Uplink:
        link = self._uplinks.get(node)
        if link is None:
            link = _Uplink(rate=self._default_rate)
            self._uplinks[node] = link
        return link

    def serialize(self, node: str, size_bytes: int, now: float) -> float:
        """Queue a ``size_bytes`` message on ``node``'s uplink at ``now``.

        Returns:
            Departure time of the message's last byte (>= now).
        """
        if size_bytes < 0:
            raise ValueError("size must be >= 0")
        link = self._uplinks.get(node)
        if link is None:
            link = _Uplink(rate=self._default_rate)
            self._uplinks[node] = link
        free_at = link.free_at
        start = now if now > free_at else free_at
        departure = start + size_bytes / link.rate
        link.free_at = departure
        link.bytes_sent += size_bytes
        return departure

    def bytes_sent(self, node: str) -> int:
        """Total bytes this node has pushed onto its uplink."""
        return self._uplink(node).bytes_sent

    def backlog_ms(self, node: str, now: float) -> float:
        """How far in the future the node's uplink is booked."""
        return max(0.0, self._uplink(node).free_at - now)

    def reset(self) -> None:
        """Clear all queues and counters, returning the model to its
        just-built state (for reuse across back-to-back runs).

        Both the byte counters *and* the booked uplink time are cleared:
        leaving ``free_at`` in the future would make the next run's traffic
        queue behind the previous run's backlog.  Note this is *not* called
        at the warmup boundary of a single run -- there the backlog is real
        steady-state behavior and clearing it would falsify the model; the
        harness excludes warmup in its recorders instead.
        """
        for link in self._uplinks.values():
            link.bytes_sent = 0
            link.free_at = 0.0
