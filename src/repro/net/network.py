"""Message delivery: endpoints, sends, latency + bandwidth + partitions.

The :class:`Network` connects named :class:`Endpoint` objects (replicas and
clients).  A send samples a one-way delay from the latency model, adds the
sender's uplink serialization delay for inter-site traffic, and schedules
delivery unless the pair is partitioned or either end is crashed at delivery
time.  Channels are reliable point-to-point (Section 2) -- no duplication,
no corruption -- but unordered, like independent TCP connections racing.

An optional FIFO mode delivers messages between each ordered pair in send
order, which some baseline protocols (Zab) assume.

Hot path: :meth:`Network.send` is executed once per protocol message, which
makes it (with the event loop) the throughput ceiling of every experiment.
It therefore avoids per-message closures, :class:`EventHandle` creation and
the :class:`Event` object itself (deliveries are never cancelled, so they
ride :meth:`Simulator.post` as bare heap tuples with the target passed as
args), touches FIFO bookkeeping only when FIFO is on, and looks
each endpoint up exactly once.  :meth:`multicast` amortizes the sender-side
checks across an n-way broadcast while remaining observationally identical
to n sequential sends (same stats, same RNG draw order, same delivery
order).

Coalesced delivery
------------------

A fan-out whose receivers share an arrival instant (same-site peers behind
the constant intra-site delay, or inter-site receivers sharing a
correlated latency draw) schedules **one** event per distinct arrival tick
instead of one per receiver; the batch callback walks its receivers in
destination order.  This is observationally identical to per-receiver
entries: within one fan-out no other event can acquire a sequence number
between two batch members (the fan-out loop schedules nothing else), and
batch members fire back-to-back in destination order exactly as their
per-receiver entries would have.  Crash checks still happen per receiver
at delivery time, *inside* the drain.  On the authenticated path the
per-receiver MAC vector is stamped inside the drain too, so a receiver
that crashed mid-flight never costs a MAC.  ``Network(coalesce=False)``
restores per-receiver scheduling for the equivalence tests.

Authenticated deliveries also publish the fan-out's body digest through
:attr:`Network.delivery_digest` for the duration of the delivery callback.
The digest was computed by the transport from the very body object being
delivered, so the receiving runtime may hand it to
``Authenticator.verify(..., body_digest=...)`` and skip re-hashing the
payload -- a forged injection that bypasses the transport sees ``None``
and pays the full check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.net.bandwidth import BandwidthModel
from repro.net.latency import LatencyModel
from repro.net.partition import PartitionController
from repro.sim.core import Simulator


class Endpoint:
    """A network-attached node: has a name, a site, and an inbox callback.

    ``deliver_auth`` is the authenticated-delivery callback
    ``(src, body, auth, size_bytes)``; endpoints that do not provide one
    receive the bare body through ``deliver`` (the authenticator is
    dropped, as for a node that does not check its channels).
    """

    __slots__ = ("name", "site", "deliver", "is_up", "deliver_auth")

    def __init__(self, name: str, site: str,
                 deliver: Callable[[str, Any], None],
                 is_up: Callable[[], bool],
                 deliver_auth: Optional[
                     Callable[[str, Any, Any, int], None]] = None) -> None:
        self.name = name
        self.site = site
        self.deliver = deliver
        self.is_up = is_up
        self.deliver_auth = deliver_auth


#: Sentinel: no precomputed authenticator context was supplied.
_NO_CONTEXT = object()


@dataclass(slots=True)
class NetworkStats:
    """Counters exposed for tests, the harness and ``repro profile``.

    Slotted: the counters are bumped up to three times per message, so
    attribute access here is hot-path cost."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped_partition: int = 0
    messages_dropped_crash: int = 0
    bytes_sent: int = 0
    #: Shared delivery events scheduled by the coalesced fan-out path.
    coalesced_ticks: int = 0
    #: Receivers whose delivery rode a shared (coalesced) event.
    coalesced_deliveries: int = 0
    #: Per-receiver authenticators stamped by the transport.
    auth_stamped: int = 0
    #: Deliveries whose authenticator the receiving runtime verified
    #: (incremented by the runtime; failures are per-node counters).
    auth_verified: int = 0


class Network:
    """The message fabric shared by one experiment.

    Args:
        sim: the discrete-event simulator driving delivery.
        latency: one-way delay model between sites.
        bandwidth: optional uplink model; None disables serialization delay
            (unit tests).
        fifo: deliver per ordered pair in send order.
        coalesce: schedule one delivery event per distinct fan-out arrival
            tick (see module notes).  ``False`` restores per-receiver
            scheduling -- observably identical, kept for the equivalence
            tests.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: LatencyModel,
        bandwidth: Optional[BandwidthModel] = None,
        fifo: bool = False,
        coalesce: bool = True,
    ) -> None:
        self.sim = sim
        self.latency = latency
        self.bandwidth = bandwidth
        self.partitions = PartitionController()
        self.fifo = fifo
        self.coalesce = coalesce
        self.stats = NetworkStats()
        self._endpoints: Dict[str, Endpoint] = {}
        self._last_delivery: Dict[tuple, float] = {}
        # Pre-bound hot-path callables.  send() runs once per protocol
        # message; loading ``sim.post`` or ``self._deliver`` there would
        # build a fresh bound-method object per call, so both are bound
        # once here (instance attributes shadow the class methods).
        self._post = sim.post
        self._deliver = self._deliver
        self._deliver_batch = self._deliver_batch
        self._deliver_auth = self._deliver_auth
        #: Body digest of the authenticated delivery currently in flight
        #: (set around the ``deliver_auth`` callback, ``None`` otherwise).
        #: The receiver runtime passes it to ``Authenticator.verify`` as
        #: the trusted transport-computed digest of the delivered body.
        self.delivery_digest: Any = None
        #: Optional hook called as ``on_send(src, dst, payload) -> bool``;
        #: returning False drops the message.  Used by adversarial tests to
        #: delay or censor traffic.
        self.send_filter: Optional[Callable[[str, str, Any], bool]] = None

    # ------------------------------------------------------------------
    def attach(self, endpoint: Endpoint) -> None:
        """Register an endpoint. Names must be unique."""
        if endpoint.name in self._endpoints:
            raise ConfigurationError(f"duplicate endpoint {endpoint.name}")
        self._endpoints[endpoint.name] = endpoint

    def endpoint(self, name: str) -> Endpoint:
        """Look up an endpoint by name."""
        try:
            return self._endpoints[name]
        except KeyError:
            raise ConfigurationError(f"unknown endpoint {name}")

    @property
    def names(self) -> Iterable[str]:
        """All registered endpoint names."""
        return self._endpoints.keys()

    # ------------------------------------------------------------------
    def _deliver(self, target: Endpoint, src: str, payload: Any) -> None:
        """Delivery-time half of a send (scheduled, crash check included)."""
        if not target.is_up():
            self.stats.messages_dropped_crash += 1
            return
        self.stats.messages_delivered += 1
        target.deliver(src, payload)

    def _deliver_batch(self, targets: Sequence[Endpoint], src: str,
                       payload: Any) -> None:
        """Coalesced delivery: one event, several same-tick receivers.

        Receivers are walked in destination order; crash checks happen
        here, per receiver, exactly as they would in per-receiver events.
        """
        stats = self.stats
        for target in targets:
            if not target.is_up():
                stats.messages_dropped_crash += 1
                continue
            stats.messages_delivered += 1
            target.deliver(src, payload)

    def _schedule_deliveries(self, deliveries: List[tuple], src: str,
                             payload: Any) -> None:
        """Second half of a fan-out: one event per distinct arrival tick.

        ``deliveries`` is the fan-out's ``(arrival, target)`` list in
        destination order (latency/bandwidth already drawn, drops already
        filtered).  Grouping preserves delivery order: distinct arrivals
        never tie, and within one arrival the batch fires in destination
        order -- the same order per-receiver entries would have, since no
        other event can be scheduled between two members of one fan-out.
        """
        post = self._post
        deliver = self._deliver
        if not self.coalesce or len(deliveries) < 2:
            for arrival, target in deliveries:
                post(arrival, deliver, (target, src, payload))
            return
        groups: Dict[float, Any] = {}
        for arrival, target in deliveries:
            prev = groups.get(arrival)
            if prev is None:
                groups[arrival] = target
            elif type(prev) is list:
                prev.append(target)
            else:
                groups[arrival] = [prev, target]
        if len(groups) == len(deliveries):
            for arrival, target in deliveries:
                post(arrival, deliver, (target, src, payload))
            return
        stats = self.stats
        deliver_batch = self._deliver_batch
        for arrival, entry in groups.items():
            if type(entry) is list:
                stats.coalesced_ticks += 1
                stats.coalesced_deliveries += len(entry)
                post(arrival, deliver_batch, (tuple(entry), src, payload))
            else:
                post(arrival, deliver, (entry, src, payload))

    def send(self, src: str, dst: str, payload: Any,
             size_bytes: int = 0) -> None:
        """Send ``payload`` from ``src`` to ``dst``.

        The partition check happens at *send* time (a blocked pair drops the
        message), and crash checks happen at *delivery* time (a message to a
        node that crashed mid-flight is lost).  Loopback sends are delivered
        with intra-site latency so a node's self-messages still go through
        the event queue (keeps handler re-entrancy simple).
        """
        endpoints = self._endpoints
        try:
            source = endpoints[src]
            target = endpoints[dst]
        except KeyError:
            raise ConfigurationError(
                f"unknown endpoint {src if src not in endpoints else dst}")
        stats = self.stats
        stats.messages_sent += 1
        stats.bytes_sent += size_bytes

        if not source.is_up():
            # A crashed node cannot send; callers normally guard, but the
            # fault injector can race a crash with an in-progress handler.
            stats.messages_dropped_crash += 1
            return
        partitions = self.partitions
        if partitions._blocked and partitions.blocked(src, dst):
            stats.messages_dropped_partition += 1
            return
        if self.send_filter is not None and not self.send_filter(
                src, dst, payload):
            stats.messages_dropped_partition += 1
            return

        sim = self.sim
        depart = sim._now  # property bypass: once per protocol message
        if (self.bandwidth is not None and size_bytes > 0
                and source.site != target.site):
            depart = self.bandwidth.serialize(src, size_bytes, depart)
        arrival = depart + self.latency.sample_one_way(
            source.site, target.site, depart)

        if self.fifo:
            key = (src, dst)
            last = self._last_delivery.get(key, 0.0)
            if last > arrival:
                arrival = last
            self._last_delivery[key] = arrival

        self._post(arrival, self._deliver, (target, src, payload))

    def multicast(self, src: str, dsts: Sequence[str], payload: Any,
                  size_bytes: int = 0) -> None:
        """Send the same payload to each destination, in order.

        Observationally identical to ``for dst in dsts: send(...)`` -- same
        stats, same per-destination uplink serialization and latency draws
        (in the same RNG order), same FIFO interaction -- but the sender
        side (endpoint lookup, liveness check, filter probe, bandwidth and
        latency model dereferences) is resolved once instead of n times,
        and receivers sharing an arrival tick share one delivery event.
        """
        endpoints = self._endpoints
        source = endpoints.get(src)
        if source is None:
            raise ConfigurationError(f"unknown endpoint {src}")
        stats = self.stats
        up = source.is_up()

        sim = self.sim
        blocked_pairs = self.partitions._blocked
        blocked = self.partitions.blocked
        send_filter = self.send_filter
        bandwidth = self.bandwidth
        sample = self.latency.sample_one_way
        fifo = self.fifo
        src_site = source.site
        charge_uplink = bandwidth is not None and size_bytes > 0
        now = sim._now  # property bypass: once per fan-out

        deliveries: List[tuple] = []
        append = deliveries.append
        # Send-side counters are per-destination-unconditional, so the
        # whole fan-out is accounted in two adds instead of 2n.
        n_dsts = len(dsts)
        stats.messages_sent += n_dsts
        stats.bytes_sent += size_bytes * n_dsts
        for dst in dsts:
            target = endpoints.get(dst)
            if target is None:
                raise ConfigurationError(f"unknown endpoint {dst}")
            if not up:
                stats.messages_dropped_crash += 1
                continue
            if blocked_pairs and blocked(src, dst):
                stats.messages_dropped_partition += 1
                continue
            if send_filter is not None and not send_filter(
                    src, dst, payload):
                stats.messages_dropped_partition += 1
                continue
            depart = now
            if charge_uplink and src_site != target.site:
                depart = bandwidth.serialize(src, size_bytes, now)
            arrival = depart + sample(src_site, target.site, now=depart)
            if fifo:
                key = (src, dst)
                last = self._last_delivery.get(key, 0.0)
                if last > arrival:
                    arrival = last
                self._last_delivery[key] = arrival
            append((arrival, target))
        if deliveries:
            self._schedule_deliveries(deliveries, src, payload)

    def broadcast(self, src: str, dsts: Iterable[str], payload: Any,
                  size_bytes: int = 0) -> None:
        """Send the same payload to every destination (skipping ``src``
        duplicates is the caller's choice -- the paper's protocols sometimes
        self-deliver)."""
        dsts = dsts if isinstance(dsts, (list, tuple)) else list(dsts)
        self.multicast(src, dsts, payload, size_bytes=size_bytes)

    # ------------------------------------------------------------------
    # Authenticated delivery (per-receiver MACs stamped at fan-out time)
    # ------------------------------------------------------------------
    def _deliver_auth(self, target: Endpoint, src: str, body: Any,
                      auth: Any, size_bytes: int,
                      digest: Any = None) -> None:
        """Delivery-time half of an authenticated send."""
        if not target.is_up():
            self.stats.messages_dropped_crash += 1
            return
        self.stats.messages_delivered += 1
        deliver_auth = target.deliver_auth
        if deliver_auth is not None:
            self.delivery_digest = digest
            try:
                deliver_auth(src, body, auth, size_bytes)
            finally:
                self.delivery_digest = None
        else:
            target.deliver(src, body)

    def _deliver_auth_batch(self, targets: Sequence[Endpoint],
                            shared: tuple) -> None:
        """Coalesced authenticated delivery: the per-receiver MAC vector
        is stamped here, inside the drain, so a receiver that crashed
        mid-flight never costs a stamp.  Stamps are pure functions of
        ``(keystore, src, receiver, context)``, so drain-time stamping is
        byte-identical to fan-out-time stamping."""
        src, body, context, digest, wire_bytes, authenticator, keystore = \
            shared
        stats = self.stats
        stamp = authenticator.stamp
        # One digest set/reset brackets the whole drain instead of one
        # pair per receiver; deliveries are synchronous, so no other
        # delivery can interleave and observe the wrong digest.
        self.delivery_digest = digest
        try:
            for target in targets:
                if not target.is_up():
                    stats.messages_dropped_crash += 1
                    continue
                stats.messages_delivered += 1
                auth = stamp(keystore, src, target.name, context)
                stats.auth_stamped += 1
                deliver_auth = target.deliver_auth
                if deliver_auth is not None:
                    deliver_auth(src, body, auth, wire_bytes)
                else:
                    target.deliver(src, body)
        finally:
            self.delivery_digest = None

    def send_authenticated(self, src: str, dst: str, payload: Any,
                           size_bytes: int = 0, *,
                           authenticator, keystore) -> None:
        """Point-to-point flavour of :meth:`multicast_authenticated`.

        Mirrors :meth:`send` (this path carries every protocol's
        request/reply traffic, so it stays as lean as the plain send hot
        path) with the authenticator stamped before scheduling.
        """
        endpoints = self._endpoints
        try:
            source = endpoints[src]
            target = endpoints[dst]
        except KeyError:
            raise ConfigurationError(
                f"unknown endpoint {src if src not in endpoints else dst}")
        stats = self.stats
        wire_bytes = size_bytes + authenticator.auth_bytes
        stats.messages_sent += 1
        stats.bytes_sent += wire_bytes

        if not source.is_up():
            stats.messages_dropped_crash += 1
            return
        partitions = self.partitions
        if partitions._blocked and partitions.blocked(src, dst):
            stats.messages_dropped_partition += 1
            return
        if self.send_filter is not None and not self.send_filter(
                src, dst, payload):
            stats.messages_dropped_partition += 1
            return

        sim = self.sim
        depart = sim._now  # property bypass: once per protocol message
        if (self.bandwidth is not None and wire_bytes > 0
                and source.site != target.site):
            depart = self.bandwidth.serialize(src, wire_bytes, depart)
        arrival = depart + self.latency.sample_one_way(
            source.site, target.site, depart)

        if self.fifo:
            key = (src, dst)
            last = self._last_delivery.get(key, 0.0)
            if last > arrival:
                arrival = last
            self._last_delivery[key] = arrival

        context = authenticator.begin(keystore, src, payload)
        auth = authenticator.stamp(keystore, src, dst, context)
        stats.auth_stamped += 1
        self._post(arrival, self._deliver_auth,
                     (target, src, payload, auth, wire_bytes,
                      authenticator.context_digest(context)))

    def multicast_authenticated(self, src: str, dsts: Sequence[str],
                                payload: Any, size_bytes: int = 0, *,
                                authenticator, keystore,
                                context: Any = _NO_CONTEXT) -> None:
        """Fan ``payload`` out with a per-receiver authenticator.

        The per-receiver MAC (or shared signature) is computed at
        delivery time, not embedded in the payload by the protocol layer:
        the payload stays identical across receivers (so the fan-out
        shares one pass over the sender-side bookkeeping, like
        :meth:`multicast`), the policy's shared context -- typically the
        payload digest -- is computed once, and each receiver is charged
        ``size_bytes + authenticator.auth_bytes``, the authenticator
        bytes that receiver actually sees on the wire.  Receivers sharing
        an arrival tick share one delivery event and are stamped inside
        its drain.

        Latency/bandwidth draws happen in destination order, exactly as
        in :meth:`multicast`.
        """
        endpoints = self._endpoints
        source = endpoints.get(src)
        if source is None:
            raise ConfigurationError(f"unknown endpoint {src}")
        stats = self.stats
        up = source.is_up()

        sim = self.sim
        blocked_pairs = self.partitions._blocked
        blocked = self.partitions.blocked
        send_filter = self.send_filter
        bandwidth = self.bandwidth
        sample = self.latency.sample_one_way
        fifo = self.fifo
        src_site = source.site
        wire_bytes = size_bytes + authenticator.auth_bytes
        charge_uplink = bandwidth is not None and wire_bytes > 0
        now = sim._now  # property bypass: once per fan-out
        # A split fan-out (self-processing mid-list) passes the shared
        # context in so the payload digest stays one-per-fan-out.
        if context is _NO_CONTEXT:
            context = authenticator.begin(keystore, src, payload) \
                if up else None

        deliveries: List[tuple] = []
        append = deliveries.append
        # Send-side counters are per-destination-unconditional, so the
        # whole fan-out is accounted in two adds instead of 2n.
        n_dsts = len(dsts)
        stats.messages_sent += n_dsts
        stats.bytes_sent += wire_bytes * n_dsts
        for dst in dsts:
            target = endpoints.get(dst)
            if target is None:
                raise ConfigurationError(f"unknown endpoint {dst}")
            if not up:
                stats.messages_dropped_crash += 1
                continue
            if blocked_pairs and blocked(src, dst):
                stats.messages_dropped_partition += 1
                continue
            if send_filter is not None and not send_filter(
                    src, dst, payload):
                stats.messages_dropped_partition += 1
                continue
            depart = now
            if charge_uplink and src_site != target.site:
                depart = bandwidth.serialize(src, wire_bytes, now)
            arrival = depart + sample(src_site, target.site, now=depart)
            if fifo:
                key = (src, dst)
                last = self._last_delivery.get(key, 0.0)
                if last > arrival:
                    arrival = last
                self._last_delivery[key] = arrival
            append((arrival, target))
        if not deliveries:
            return

        digest = authenticator.context_digest(context)
        post = sim.post
        stamp = authenticator.stamp
        deliver = self._deliver_auth
        if not self.coalesce or len(deliveries) < 2:
            stats.auth_stamped += len(deliveries)
            for arrival, target in deliveries:
                auth = stamp(keystore, src, target.name, context)
                post(arrival, deliver,
                         (target, src, payload, auth, wire_bytes, digest))
            return
        groups: Dict[float, Any] = {}
        for arrival, target in deliveries:
            prev = groups.get(arrival)
            if prev is None:
                groups[arrival] = target
            elif type(prev) is list:
                prev.append(target)
            else:
                groups[arrival] = [prev, target]
        if len(groups) == len(deliveries):
            stats.auth_stamped += len(deliveries)
            for arrival, target in deliveries:
                auth = stamp(keystore, src, target.name, context)
                post(arrival, deliver,
                         (target, src, payload, auth, wire_bytes, digest))
            return
        shared = (src, payload, context, digest, wire_bytes,
                  authenticator, keystore)
        deliver_batch = self._deliver_auth_batch
        for arrival, entry in groups.items():
            if type(entry) is list:
                stats.coalesced_ticks += 1
                stats.coalesced_deliveries += len(entry)
                post(arrival, deliver_batch, (tuple(entry), shared))
            else:
                auth = stamp(keystore, src, entry.name, context)
                stats.auth_stamped += 1
                post(arrival, deliver,
                         (entry, src, payload, auth, wire_bytes, digest))

    # ------------------------------------------------------------------
    def timely(self, a: str, b: str, delta_ms: float) -> bool:
        """Can ``a`` and ``b`` currently exchange a message within Delta?

        Used by the safety checker's anarchy predicate: a pair is timely if
        it is not partitioned and the *mean* one-way delay is within Delta.
        """
        if self.partitions.blocked(a, b):
            return False
        ea, eb = self.endpoint(a), self.endpoint(b)
        if not (ea.is_up() and eb.is_up()):
            return False
        return self.latency.mean_one_way(ea.site, eb.site) <= delta_ms
