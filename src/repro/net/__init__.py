"""WAN network model: latency matrix, bandwidth, partitions, delivery."""

from repro.net.latency import LatencyModel, LinkStats
from repro.net.bandwidth import BandwidthModel
from repro.net.network import Endpoint, Network
from repro.net.partition import PartitionController, partitioned_replicas

__all__ = [
    "LatencyModel",
    "LinkStats",
    "BandwidthModel",
    "Network",
    "Endpoint",
    "PartitionController",
    "partitioned_replicas",
]
