"""Geo-replicated latency model calibrated to the paper's Table 3.

Table 3 of the paper reports TCP-ping round-trip latencies between six
Amazon EC2 datacenters collected over three months, as
``average / 99.99% / 99.999% / maximum`` in milliseconds.  We embed those
numbers and sample *one-way* delays from a log-normal distribution whose
median is half the measured average RTT and whose tail is fit to the
99.99th percentile.  This preserves exactly the property the paper's
evaluation relies on: the relative cost of each protocol message pattern
over the measured WAN.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.rng import stream

#: Standard-normal quantile of 99.99% -- used to fit the log-normal tail.
_Z_9999 = 3.719


@dataclass(frozen=True, slots=True)
class LinkStats:
    """Round-trip statistics of one datacenter pair (Table 3 row format)."""

    avg_ms: float
    p9999_ms: float
    p99999_ms: float
    max_ms: float

    def __post_init__(self) -> None:
        if not (0 < self.avg_ms <= self.p9999_ms <= self.p99999_ms
                <= self.max_ms):
            raise ConfigurationError(
                f"link stats must satisfy 0 < avg <= p9999 <= p99999 <= max,"
                f" got {self}"
            )


def _sym(d: Dict[Tuple[str, str], LinkStats]) -> Dict[Tuple[str, str],
                                                       LinkStats]:
    """Mirror a half-matrix into a full symmetric one."""
    out = dict(d)
    for (a, b), stats in d.items():
        out[(b, a)] = stats
    return out


#: Table 3 of the paper: RTT of TCP ping across EC2 datacenters over three
#: months, ``average / 99.99% / 99.999% / maximum`` (ms).  Datacenter codes:
#: VA = US East (Virginia), CA = US West 1 (California), EU = Europe
#: (Ireland), JP = Tokyo, AU = Sydney, BR = Sao Paulo.
EC2_TABLE3: Mapping[Tuple[str, str], LinkStats] = _sym({
    ("VA", "CA"): LinkStats(88, 1097, 82190, 166390),
    ("VA", "EU"): LinkStats(92, 1112, 85649, 169749),
    ("VA", "JP"): LinkStats(179, 1226, 81177, 165277),
    ("VA", "AU"): LinkStats(268, 1372, 95074, 179174),
    ("VA", "BR"): LinkStats(146, 1214, 85434, 169534),
    ("CA", "EU"): LinkStats(174, 1184, 1974, 15467),
    ("CA", "JP"): LinkStats(120, 1133, 1180, 6210),
    ("CA", "AU"): LinkStats(186, 1209, 6354, 51646),
    ("CA", "BR"): LinkStats(207, 1252, 90980, 169080),
    ("EU", "JP"): LinkStats(287, 1310, 1397, 4798),
    ("EU", "AU"): LinkStats(342, 1375, 3154, 11052),
    ("EU", "BR"): LinkStats(233, 1257, 1382, 9188),
    ("JP", "AU"): LinkStats(137, 1149, 1414, 5228),
    ("JP", "BR"): LinkStats(394, 2496, 11399, 94775),
    ("AU", "BR"): LinkStats(392, 1496, 2134, 10983),
})

#: The t=2 experiment (Section 5.2) additionally uses Oregon (OR) and
#: Singapore (SG); the paper does not tabulate their links, so we use
#: representative public EC2 inter-region RTTs with tails scaled like the
#: measured CA rows.
_EXTra = {
    ("OR", "CA"): LinkStats(22, 310, 1200, 9000),
    ("OR", "VA"): LinkStats(75, 950, 9000, 90000),
    ("OR", "EU"): LinkStats(160, 1150, 2100, 16000),
    ("OR", "JP"): LinkStats(100, 1050, 1300, 7000),
    ("OR", "AU"): LinkStats(175, 1200, 5800, 48000),
    ("OR", "BR"): LinkStats(195, 1240, 80000, 160000),
    ("OR", "SG"): LinkStats(165, 1180, 2500, 20000),
    ("SG", "CA"): LinkStats(175, 1200, 2300, 18000),
    ("SG", "VA"): LinkStats(230, 1300, 8300, 90000),
    ("SG", "EU"): LinkStats(240, 1290, 2900, 15000),
    ("SG", "JP"): LinkStats(73, 920, 1200, 6100),
    ("SG", "AU"): LinkStats(93, 1010, 1900, 9800),
    ("SG", "BR"): LinkStats(330, 1700, 9500, 80000),
}
EC2_SITES: Tuple[str, ...] = ("VA", "CA", "EU", "JP", "AU", "BR", "OR", "SG")

_FULL_TABLE: Dict[Tuple[str, str], LinkStats] = dict(EC2_TABLE3)
_FULL_TABLE.update(_sym(_EXTra))


class LatencyModel:
    """Samples one-way message delays between named sites.

    Two modes:

    * :meth:`ec2` -- the paper's geo-replicated environment, six-to-eight
      datacenters with Table 3 statistics.
    * :meth:`uniform` -- a flat LAN-like model for unit tests.

    Intra-site delay defaults to 0.3 ms (same-datacenter hop).
    """

    def __init__(
        self,
        links: Mapping[Tuple[str, str], LinkStats],
        seed: int = 0,
        intra_site_ms: float = 0.3,
        deterministic: bool = False,
        correlation_window_ms: float = 250.0,
    ) -> None:
        self._links = dict(links)
        self._rng = stream(seed, "latency")
        self.intra_site_ms = intra_site_ms
        self.deterministic = deterministic
        #: Real WAN latency is burst-correlated: congestion slows a link
        #: for a stretch, not one packet.  When a caller supplies the
        #: current virtual time, all samples of one directed link within a
        #: window share a single deviation draw; the marginal distribution
        #: (and thus the Table 3 regeneration) is unchanged.
        self.correlation_window_ms = correlation_window_ms
        #: Cached *sample* per (directed link, window).  Within one window
        #: the deviation draw is shared, and the fit is fixed per link, so
        #: the finished sample is as shareable as the raw deviation --
        #: caching it keeps ``exp`` off the per-message path.
        self._window_draws: Dict[Tuple[str, str, int], float] = {}
        #: Lazily cached log-normal fit per directed link:
        #: ``(median, mu, sigma, half_max)``.  The fit is a pure function
        #: of the immutable LinkStats, so caching it cannot change a
        #: sample -- it only removes two ``log`` calls per draw from the
        #: send hot path.
        self._fit: Dict[Tuple[str, str], Tuple[float, float, float,
                                               float]] = {}

    # -- constructors ----------------------------------------------------
    @classmethod
    def ec2(cls, seed: int = 0, deterministic: bool = False) -> "LatencyModel":
        """The paper's EC2 WAN (Table 3 plus the t=2 extension sites)."""
        return cls(_FULL_TABLE, seed=seed, deterministic=deterministic)

    @classmethod
    def uniform(cls, sites: Iterable[str], one_way_ms: float = 1.0,
                seed: int = 0, jitter: float = 0.0) -> "LatencyModel":
        """Flat model: every pair has the same RTT ``2 * one_way_ms``.

        ``jitter`` widens the 99.99% tail multiplicatively (0 = none).
        """
        site_list = list(sites)
        rtt = 2.0 * one_way_ms
        tail = rtt * (1.0 + jitter)
        links = {}
        for i, a in enumerate(site_list):
            for b in site_list[i + 1:]:
                links[(a, b)] = LinkStats(rtt, tail, tail, tail)
                links[(b, a)] = LinkStats(rtt, tail, tail, tail)
        return cls(links, seed=seed, deterministic=(jitter == 0.0))

    # -- queries ----------------------------------------------------------
    def stats(self, a: str, b: str) -> Optional[LinkStats]:
        """Raw Table 3 statistics of the pair, or None if same site."""
        if a == b:
            return None
        try:
            return self._links[(a, b)]
        except KeyError:
            raise ConfigurationError(f"no latency data for link {a}-{b}")

    def mean_one_way(self, a: str, b: str) -> float:
        """Average one-way delay (half the measured average RTT)."""
        if a == b:
            return self.intra_site_ms
        return self.stats(a, b).avg_ms / 2.0

    def sample_one_way(self, a: str, b: str,
                       now: Optional[float] = None) -> float:
        """Draw one one-way delay for a message from site ``a`` to ``b``.

        Log-normal with median = avg RTT / 2 and 99.99th percentile matched
        to Table 3 (both halved for one-way).  With ``deterministic=True``
        the median is returned, which unit tests use for exact assertions.
        With ``now`` supplied, the deviation draw is shared by all samples
        of this directed link within ``correlation_window_ms``.
        """
        if a == b:
            return self.intra_site_ms
        fit = self._fit.get((a, b))
        if fit is None:
            st = self.stats(a, b)
            median = st.avg_ms / 2.0
            p9999 = st.p9999_ms / 2.0
            mu = math.log(median)
            sigma = (math.log(p9999) - mu) / _Z_9999
            fit = (median, mu, sigma, st.max_ms / 2.0)
            self._fit[(a, b)] = fit
        if self.deterministic:
            return fit[0]
        window_ms = self.correlation_window_ms
        if now is not None and window_ms > 0:
            # Correlated mode: one deviation draw -- and therefore one
            # finished sample -- per (directed link, window).
            key = (a, b, int(now // window_ms))
            draws = self._window_draws
            sample = draws.get(key)
            if sample is not None:
                return sample
            if len(draws) > 65_536:
                draws.clear()
            z = self._rng.gauss(0.0, 1.0)
            sample = math.exp(fit[1] + fit[2] * z)
            # Cap at the observed maximum: Table 3's max column bounds
            # reality.
            half_max = fit[3]
            if sample >= half_max:
                sample = half_max
            draws[key] = sample
            return sample
        z = self._rng.gauss(0.0, 1.0)
        sample = math.exp(fit[1] + fit[2] * z)
        half_max = fit[3]
        return sample if sample < half_max else half_max

    def rtt_trace(self, a: str, b: str, n: int) -> "list[float]":
        """Generate ``n`` synthetic RTT samples for the Table 3 regeneration
        benchmark (two independent one-way draws per ping)."""
        return [self.sample_one_way(a, b) + self.sample_one_way(b, a)
                for _ in range(n)]
