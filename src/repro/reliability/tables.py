"""Generators for the paper's reliability tables (Appendix D, Tables 5-8).

Each function sweeps the grid of "nines" the paper uses and returns rows of
computed nines of consistency / availability for CFT, XPaxos and BFT.  The
benchmark targets print them in the paper's layout and the test suite
asserts the paper's published values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.reliability.models import (
    epsilon_from_nines,
    nines_of_failure,
    q_bft_available,
    q_bft_consistent,
    q_cft_available,
    q_cft_consistent,
    q_xft_available,
    q_xft_consistent,
)


@dataclass(frozen=True)
class ConsistencyRow:
    """One cell group of Table 5/6: nines of consistency at a grid point."""

    t: int
    nines_benign: int
    nines_correct: int
    nines_synchrony: int
    cft: int
    xpaxos: int
    bft: int


@dataclass(frozen=True)
class AvailabilityRow:
    """One cell group of Table 7/8: nines of availability at a grid point."""

    t: int
    nines_available: int
    nines_benign: int
    cft: int
    xpaxos: int
    bft: int


def consistency_cell(t: int, nines_benign: int, nines_correct: int,
                     nines_synchrony: int) -> ConsistencyRow:
    """Compute one grid point of the consistency comparison.

    Works on exact epsilons (``10^-nines``) and failure probabilities so
    the 15+-nine cells of Tables 5-6 come out exactly.
    """
    eps_benign = epsilon_from_nines(nines_benign)
    eps_correct = epsilon_from_nines(nines_correct)
    eps_synchrony = epsilon_from_nines(nines_synchrony)
    n_cft = 2 * t + 1
    return ConsistencyRow(
        t=t,
        nines_benign=nines_benign,
        nines_correct=nines_correct,
        nines_synchrony=nines_synchrony,
        cft=int(nines_of_failure(q_cft_consistent(eps_benign, n_cft))),
        xpaxos=int(nines_of_failure(
            q_xft_consistent(eps_benign, eps_correct, eps_synchrony, t))),
        bft=int(nines_of_failure(q_bft_consistent(eps_benign, t))),
    )


def consistency_table(
    t: int,
    nines_benign_range: Iterable[int] = range(3, 9),
    nines_synchrony_range: Optional[Iterable[int]] = None,
    nines_correct_range: Optional[Iterable[int]] = None,
) -> List[ConsistencyRow]:
    """Regenerate Table 5 (``t = 1``) or Table 6 (``t = 2``).

    The paper's grid: ``3 <= 9benign <= 8``, ``2 <= 9synchrony <= 6`` and
    ``2 <= 9correct < 9benign``.
    """
    rows = []
    for nb in nines_benign_range:
        corrects = (nines_correct_range if nines_correct_range is not None
                    else range(2, nb))
        for nc in corrects:
            syncs = (nines_synchrony_range
                     if nines_synchrony_range is not None
                     else range(2, 7))
            for ns in syncs:
                rows.append(consistency_cell(t, nb, nc, ns))
    return rows


def availability_cell(t: int, nines_available: int,
                      nines_benign: int) -> AvailabilityRow:
    """Compute one grid point of the availability comparison."""
    eps_available = epsilon_from_nines(nines_available)
    eps_benign = epsilon_from_nines(nines_benign)
    return AvailabilityRow(
        t=t,
        nines_available=nines_available,
        nines_benign=nines_benign,
        cft=int(nines_of_failure(
            q_cft_available(eps_available, eps_benign, t))),
        xpaxos=int(nines_of_failure(q_xft_available(eps_available, t))),
        bft=int(nines_of_failure(q_bft_available(eps_available, t))),
    )


def availability_table(
    t: int,
    nines_available_range: Iterable[int] = range(2, 7),
    max_nines_benign: int = 8,
) -> List[AvailabilityRow]:
    """Regenerate Table 7 (``t = 1``) or Table 8 (``t = 2``).

    The paper's grid: ``2 <= 9available <= 6`` and
    ``9available < 9benign <= 8``.
    """
    rows = []
    for na in nines_available_range:
        for nb in range(na + 1, max_nines_benign + 1):
            rows.append(availability_cell(t, na, nb))
    return rows


def format_consistency_table(rows: List[ConsistencyRow]) -> str:
    """Render rows in the paper's Table 5/6 style (plain text)."""
    header = (f"{'9benign':>8} {'9correct':>9} {'9sync':>6} "
              f"{'CFT':>4} {'XPaxos':>7} {'BFT':>4}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.nines_benign:>8} {row.nines_correct:>9} "
            f"{row.nines_synchrony:>6} {row.cft:>4} {row.xpaxos:>7} "
            f"{row.bft:>4}")
    return "\n".join(lines)


def format_availability_table(rows: List[AvailabilityRow]) -> str:
    """Render rows in the paper's Table 7/8 style (plain text)."""
    header = (f"{'9avail':>7} {'9benign':>8} "
              f"{'CFT':>4} {'BFT':>4} {'XPaxos':>7}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.nines_available:>7} {row.nines_benign:>8} "
            f"{row.cft:>4} {row.bft:>4} {row.xpaxos:>7}")
    return "\n".join(lines)
