"""Section 6 reliability analysis: nines of consistency and availability."""

from repro.reliability.models import (
    FaultToleranceRow,
    fault_tolerance_table,
    nines_of,
    p_bft_available,
    p_bft_consistent,
    p_cft_available,
    p_cft_consistent,
    p_sync_bft_consistent,
    p_xft_available,
    p_xft_consistent,
    probability_from_nines,
)
from repro.reliability.tables import (
    consistency_table,
    availability_table,
)

__all__ = [
    "nines_of",
    "probability_from_nines",
    "p_cft_consistent",
    "p_cft_available",
    "p_bft_consistent",
    "p_bft_available",
    "p_sync_bft_consistent",
    "p_xft_consistent",
    "p_xft_available",
    "FaultToleranceRow",
    "fault_tolerance_table",
    "consistency_table",
    "availability_table",
]
