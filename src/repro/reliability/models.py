"""Closed-form reliability of CFT, BFT and XFT state-machine replication.

This module implements Section 6 of the paper exactly.  The fault states of
machines are i.i.d.:

* ``p_benign``  -- machine is correct or crash-faulty;
* ``p_correct`` -- machine is correct (``p_correct <= p_benign``);
* ``p_crash = p_benign - p_correct``; ``p_noncrash = 1 - p_benign``;
* ``p_synchrony`` -- machine is not partitioned (independent of the above);
* ``p_available = p_correct * p_synchrony``.

Numerical design
----------------

The paper reports results as *nines*, i.e. ``floor(-log10(1 - p))``, and
its tables reach 15+ nines -- far beyond what ``1 - p`` can resolve in
double precision once ``p`` has been accumulated as a sum close to 1.  We
therefore compute *failure probabilities* (``q = 1 - p``) directly as sums
of small positive terms (functions ``q_*``), which never cancel; the
``p_*`` functions and the nines helpers are wrappers.  The ``q_*``
functions take epsilon inputs (``eps_x = 1 - p_x``) so that a grid point
like "8 nines of benignity" enters the computation as exactly ``1e-8``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.common.errors import ConfigurationError

#: Guard added before flooring a nines value: the epsilon inputs carry
#: ~1e-8 relative error after a ``1 - p`` round trip, which perturbs the
#: log10 by well under this margin.
_NINES_GUARD = 1e-6


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")


def _check_epsilon(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")


def nines_of(p: float) -> float:
    """The paper's ``9of(p) = floor(-log10(1 - p))``; e.g. 9of(0.999) = 3.

    Prefer :func:`nines_of_failure` when the failure probability is
    available directly -- it avoids the ``1 - p`` cancellation.
    """
    _check_probability("p", p)
    return nines_of_failure(1.0 - p)


def nines_of_failure(q: float) -> float:
    """Nines from a failure probability: ``floor(-log10(q))``."""
    _check_probability("q", q)
    if q == 0.0:
        return math.inf
    return float(math.floor(-math.log10(q) + _NINES_GUARD))


def probability_from_nines(nines: int) -> float:
    """Inverse convenience: ``k`` nines -> ``1 - 10^-k``."""
    if nines < 0:
        raise ConfigurationError("nines must be >= 0")
    return 1.0 - 10.0 ** (-nines)


def epsilon_from_nines(nines: int) -> float:
    """``k`` nines -> failure probability ``10^-k`` (exact)."""
    if nines < 0:
        raise ConfigurationError("nines must be >= 0")
    return 10.0 ** (-nines)


def _binom(n: int, k: int) -> int:
    return math.comb(n, k)


# ---------------------------------------------------------------------------
# Consistency -- failure forms
# ---------------------------------------------------------------------------


def q_cft_consistent(eps_benign: float, n: int) -> float:
    """``1 - p_benign^n`` without cancellation (Section 6.1)."""
    _check_epsilon("eps_benign", eps_benign)
    if n < 1:
        raise ConfigurationError("n must be >= 1")
    if eps_benign == 1.0:
        return 1.0
    return -math.expm1(n * math.log1p(-eps_benign))


def q_bft_consistent(eps_benign: float, t: int) -> float:
    """Asynchronous BFT (n = 3t+1) fails iff more than ``t`` machines are
    non-crash-faulty: a tail sum of small terms (Section 6.1.2)."""
    _check_epsilon("eps_benign", eps_benign)
    if t < 0:
        raise ConfigurationError("t must be >= 0")
    n = 3 * t + 1
    p_benign = 1.0 - eps_benign
    return math.fsum(
        _binom(n, i) * eps_benign ** i * p_benign ** (n - i)
        for i in range(t + 1, n + 1)
    )


def q_xft_consistent(eps_benign: float, eps_correct: float,
                     eps_synchrony: float, t: int) -> float:
    """XPaxos (n = 2t+1) fails iff at least one machine is non-crash-faulty
    AND the total of non-crash (i), crash (j) and partitioned-correct (k)
    machines exceeds ``t`` (the complement of Section 6.1.1's closed form,
    summed directly)."""
    _check_epsilon("eps_benign", eps_benign)
    _check_epsilon("eps_correct", eps_correct)
    _check_epsilon("eps_synchrony", eps_synchrony)
    if eps_correct < eps_benign - 1e-15:
        raise ConfigurationError(
            "eps_correct must be >= eps_benign (correct implies benign)")
    if t < 1:
        raise ConfigurationError("t must be >= 1")
    n = 2 * t + 1
    p_noncrash = eps_benign
    p_crash = eps_correct - eps_benign
    p_correct = 1.0 - eps_correct
    p_sync = 1.0 - eps_synchrony

    terms = []
    for i in range(1, n + 1):           # non-crash-faulty machines
        weight_i = _binom(n, i) * p_noncrash ** i
        for j in range(0, n - i + 1):   # crash-faulty machines
            weight_j = _binom(n - i, j) * p_crash ** j
            remaining = n - i - j       # correct machines
            weight_c = p_correct ** remaining
            for k in range(0, remaining + 1):  # partitioned correct
                if i + j + k <= t:
                    continue            # consistent: not a failure term
                weight_k = (_binom(remaining, k)
                            * p_sync ** (remaining - k)
                            * eps_synchrony ** k)
                terms.append(weight_i * weight_j * weight_c * weight_k)
    return min(math.fsum(terms), 1.0)


# ---------------------------------------------------------------------------
# Availability -- failure forms
# ---------------------------------------------------------------------------


def q_xft_available(eps_available: float, t: int) -> float:
    """XPaxos unavailable iff at most ``t`` of ``2t+1`` machines are
    available (Section 6.2)."""
    _check_epsilon("eps_available", eps_available)
    if t < 1:
        raise ConfigurationError("t must be >= 1")
    n = 2 * t + 1
    p_available = 1.0 - eps_available
    return math.fsum(
        _binom(n, i) * p_available ** i * eps_available ** (n - i)
        for i in range(0, t + 1)
    )


def q_cft_available(eps_available: float, eps_benign: float,
                    t: int) -> float:
    """CFT (Paxos) unavailable unless a majority is available AND every
    other machine is benign (Section 6.2.1).

    Each machine is in one of three states: available (``p_av``), benign
    but not available (``p_benign - p_av``), or non-benign (``eps_b``).
    The failure terms are all multinomial cells except
    (available >= majority, non-benign == 0).
    """
    _check_epsilon("eps_available", eps_available)
    _check_epsilon("eps_benign", eps_benign)
    if eps_available < eps_benign - 1e-15:
        raise ConfigurationError(
            "eps_available must be >= eps_benign (available implies benign)")
    if t < 1:
        raise ConfigurationError("t must be >= 1")
    n = 2 * t + 1
    majority = n - (n - 1) // 2
    p_av = 1.0 - eps_available
    p_benign_not_av = eps_available - eps_benign
    p_non_benign = eps_benign

    terms = []
    for a in range(0, n + 1):
        for b in range(0, n - a + 1):
            c = n - a - b
            if a >= majority and c == 0:
                continue  # the protocol is available here
            coefficient = math.factorial(n) // (
                math.factorial(a) * math.factorial(b) * math.factorial(c))
            terms.append(coefficient * p_av ** a
                         * p_benign_not_av ** b * p_non_benign ** c)
    return min(math.fsum(terms), 1.0)


def q_bft_available(eps_available: float, t: int) -> float:
    """Asynchronous BFT (n = 3t+1) unavailable iff fewer than ``2t+1``
    machines are available (Section 6.2.2)."""
    _check_epsilon("eps_available", eps_available)
    if t < 0:
        raise ConfigurationError("t must be >= 0")
    n = 3 * t + 1
    threshold = n - (n - 1) // 3
    p_available = 1.0 - eps_available
    return math.fsum(
        _binom(n, i) * p_available ** i * eps_available ** (n - i)
        for i in range(0, threshold)
    )


# ---------------------------------------------------------------------------
# Probability wrappers (the paper's published formulas verbatim)
# ---------------------------------------------------------------------------


def p_cft_consistent(p_benign: float, n: int) -> float:
    """``P[CFT is consistent] = p_benign^n`` (Section 6.1)."""
    _check_probability("p_benign", p_benign)
    if n < 1:
        raise ConfigurationError("n must be >= 1")
    return p_benign ** n


def p_bft_consistent(p_benign: float, t: int) -> float:
    """Asynchronous BFT with ``n = 3t + 1``: consistent iff at most ``t``
    non-crash faults (Section 6.1.2)."""
    _check_probability("p_benign", p_benign)
    return 1.0 - q_bft_consistent(1.0 - p_benign, t)


def p_sync_bft_consistent(p_benign: float, p_synchrony: float,
                          n: int) -> float:
    """Authenticated synchronous BFT: tolerates up to ``n - 1`` non-crash
    faults but *zero* partitioned replicas (Table 1)."""
    _check_probability("p_benign", p_benign)
    _check_probability("p_synchrony", p_synchrony)
    return p_synchrony ** n


def p_xft_consistent(p_benign: float, p_correct: float,
                     p_synchrony: float, t: int) -> float:
    """XPaxos with ``n = 2t + 1``: Section 6.1.1's closed form."""
    _check_probability("p_benign", p_benign)
    _check_probability("p_correct", p_correct)
    _check_probability("p_synchrony", p_synchrony)
    if p_correct > p_benign + 1e-12:
        raise ConfigurationError("p_correct cannot exceed p_benign")
    return 1.0 - q_xft_consistent(1.0 - p_benign, 1.0 - p_correct,
                                  1.0 - p_synchrony, t)


def p_xft_available(p_available: float, t: int) -> float:
    """XPaxos is available when at least ``t + 1`` of ``2t + 1`` machines
    are available (correct and synchronous), regardless of the rest
    (Section 6.2)."""
    _check_probability("p_available", p_available)
    return 1.0 - q_xft_available(1.0 - p_available, t)


def p_cft_available(p_available: float, p_benign: float, t: int) -> float:
    """CFT (Paxos) is available when a majority is available *and* the
    remaining machines are benign (Section 6.2.1)."""
    _check_probability("p_available", p_available)
    _check_probability("p_benign", p_benign)
    if p_available > p_benign + 1e-12:
        raise ConfigurationError(
            "p_available cannot exceed p_benign (available implies correct)")
    return 1.0 - q_cft_available(1.0 - p_available, 1.0 - p_benign, t)


def p_bft_available(p_available: float, t: int) -> float:
    """Asynchronous BFT with ``n = 3t + 1`` is available when at least
    ``2t + 1`` machines are available (Section 6.2.2)."""
    _check_probability("p_available", p_available)
    return 1.0 - q_bft_available(1.0 - p_available, t)


# ---------------------------------------------------------------------------
# Table 1 -- the fault-tolerance matrix
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultToleranceRow:
    """One row of Table 1: the maximum number of each type of fault a
    protocol class tolerates while preserving the named property.

    ``combined`` marks thresholds that apply to the *sum* of fault types.
    """

    model: str
    property: str
    non_crash: int
    crash: int
    partitioned: int
    combined: bool = False


def fault_tolerance_table(n: int) -> List[FaultToleranceRow]:
    """Regenerate Table 1 for an ``n``-replica deployment.

    Entries are integers (maximum counts) exactly as printed in the paper,
    with the convention that combined rows state the threshold on the sum.
    """
    if n < 3:
        raise ConfigurationError("Table 1 needs n >= 3")
    t_cft = (n - 1) // 2
    t_bft = (n - 1) // 3
    return [
        FaultToleranceRow("async CFT", "consistency", 0, n, n - 1),
        FaultToleranceRow("async CFT", "availability", 0, t_cft, t_cft,
                          combined=True),
        FaultToleranceRow("async BFT", "consistency", t_bft, n, n - 1),
        FaultToleranceRow("async BFT", "availability", t_bft, t_bft, t_bft,
                          combined=True),
        FaultToleranceRow("sync BFT", "consistency", n - 1, n, 0),
        FaultToleranceRow("sync BFT", "availability", n - 1, n - 1, 0,
                          combined=True),
        FaultToleranceRow("XFT", "consistency (no non-crash)", 0, n, n - 1),
        FaultToleranceRow("XFT", "consistency (with non-crash)",
                          t_cft, t_cft, t_cft, combined=True),
        FaultToleranceRow("XFT", "availability", t_cft, t_cft, t_cft,
                          combined=True),
    ]


def anarchy(t: int, tnc: int, tc: int, tp: int) -> bool:
    """Definition 2: anarchy iff ``tnc > 0`` and ``tnc + tc + tp > t``."""
    if min(tnc, tc, tp) < 0:
        raise ConfigurationError("fault counts must be >= 0")
    return tnc > 0 and (tnc + tc + tp) > t
