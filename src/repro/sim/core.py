"""The event loop at the heart of every experiment.

Design notes
------------

* **Virtual time** is a ``float`` number of milliseconds starting at 0.
* **Determinism**: events that fire at the same instant are delivered in
  insertion order (a monotonically increasing tiebreaker is part of the heap
  key), so a run is a pure function of (code, seed).
* **Cancellation** is lazy: cancelling marks the event and the entry is
  skipped when popped, which keeps cancellation O(1) -- important because
  protocols cancel retransmission timers on virtually every reply.  When
  cancelled entries outnumber live ones the heap is compacted in one pass
  (the same strategy asyncio uses), so a cancel-heavy run never drags a
  long tail of dead timers through every push and pop.
* **Allocation discipline**: the heap stores uniform 5-slot ``[time,
  sequence, event_or_None, callback, args]`` list entries (C-speed
  element-wise comparisons that never get past the unique ``sequence``),
  :class:`Event` has ``__slots__``, and executed or compacted events are
  recycled through a free pool.  The entry lists themselves are recycled
  through an arena freelist: a popped entry is returned to the arena
  *before* its callback runs (its slots are overwritten on reuse and
  cleared at run exit), so at steady state the hot loop
  schedules and fires events with **zero** per-event allocation -- the
  entry a delivery vacates is immediately reused by the deliveries it
  causes, which also keeps the GC generation-0 counter flat (GC tracking
  of per-message heap tuples used to be the floor under the delivery
  path, ~2.5x the schedule() cost with GC on).  Both the event pool and
  the arena share a cap that scales with the peak number of pending
  events (bounded by :data:`_POOL_CAP_MAX`), so a run holding 10⁶ events
  in flight recycles at the same rate as a small one instead of
  thrashing the allocator.  Callers that never cancel can use
  :meth:`Simulator.schedule` to skip the :class:`EventHandle`, or
  :meth:`Simulator.post` (message delivery) to skip the :class:`Event`
  object entirely -- a light posting is a bare ``[time, sequence, None,
  callback, args]`` entry.
* **Same-tick fast lane**: events scheduled at exactly ``now`` --
  ``call_soon`` kicks, zero-latency deliveries, parked-flush pumps -- go
  to a plain FIFO instead of the heap and are drained without a
  ``heappush``/``heappop`` per event.  Ordering is unchanged: every heap
  entry was pushed with a strictly earlier ``now`` (scheduling in the
  past raises, and ``time == now`` routes to the FIFO), so at any instant
  all heap entries due at ``now`` carry *smaller* sequence numbers than
  every FIFO entry, and the drain takes the heap first while its head is
  due.  ``Simulator(batch_drain=False)`` disables the lane; the
  equivalence tests in ``tests/sim/test_core.py`` drive both modes
  through identical schedules.

:meth:`Simulator.stats` exposes the hot-loop counters (heap ops, fast-lane
traffic, pool hit-rate, compactions) for ``repro profile`` and
``repro bench --profile``; see ``docs/profiling.md``.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.common.errors import SimulationError

Callback = Callable[..., None]

#: Recycled-event pool floor; the effective cap scales with the peak
#: number of pending events up to :data:`_POOL_CAP_MAX` (a pool never
#: holds more events than were simultaneously live, so it cannot raise
#: peak memory -- it only delays the GC).
_POOL_CAP = 8192

#: Hard bound on the recycled-event pool.
_POOL_CAP_MAX = 1 << 20

#: Compact the heap when more than this many entries are cancelled *and*
#: they outnumber the live entries (both conditions, like asyncio).
_COMPACT_MIN_CANCELLED = 64

#: Hot-loop aliases: skip the module-attribute (and __init__ frame) per
#: scheduled event.
_heappush = heapq.heappush


class Event:
    """A scheduled callback, ordered in the heap by ``(time, sequence)``.

    ``sequence`` doubles as a generation tag: it is reset to ``-1`` when the
    event fires and reassigned when the object is recycled for a new
    scheduling, which lets stale :class:`EventHandle` objects detect that
    "their" event is gone in O(1).
    """

    __slots__ = ("time", "sequence", "callback", "args", "cancelled", "label")

    def __init__(self, time: float = 0.0, sequence: int = -1,
                 callback: Optional[Callback] = None,
                 args: Tuple[Any, ...] = (), label: str = "") -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.label = label


_new_event = Event.__new__


class EventHandle:
    """Caller-facing handle allowing an event to be cancelled.

    The handle pins the ``(event, sequence)`` pair observed at scheduling
    time; once the event has fired (or its object has been recycled) the
    handle becomes inert: ``active`` is False and ``cancel()`` is a no-op.
    """

    __slots__ = ("_sim", "_event", "_sequence")

    def __init__(self, sim: "Simulator", event: Event, sequence: int):
        self._sim = sim
        self._event = event
        self._sequence = sequence

    @property
    def time(self) -> float:
        """Virtual time at which the event will fire (meaningful only
        while ``active``)."""
        return self._event.time

    @property
    def active(self) -> bool:
        """True while the event is scheduled and not yet fired/cancelled."""
        event = self._event
        return event.sequence == self._sequence and not event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing. Idempotent."""
        self._sim._cancel_event(self._event, self._sequence)


class Simulator:
    """A deterministic discrete-event scheduler.

    Typical usage::

        sim = Simulator()
        sim.call_at(10.0, lambda: print("fires at t=10ms"))
        sim.run(until=100.0)

    The simulator never advances past an event without executing it, and it
    raises :class:`SimulationError` on attempts to schedule in the past.

    Args:
        batch_drain: route events scheduled at exactly ``now`` through the
            same-tick FIFO lane (see the module design notes).  ``False``
            forces every event through the heap -- observably identical,
            kept for the equivalence tests.
    """

    def __init__(self, batch_drain: bool = True) -> None:
        self._now: float = 0.0
        # Heap entries are uniform 5-slot lists:
        #   [time, sequence, event_or_None, callback, args]
        # Event entries leave slots 3/4 as None; light postings leave
        # slot 2 as None.  Uniformity matters: heapq compares entries
        # element-wise, and mixing tuples with lists would raise.
        self._queue: List[List[Any]] = []
        self._fifo: Deque[Event] = deque()
        self._batch_drain = batch_drain
        self._sequence: int = 0
        self._executed: int = 0
        self._live: int = 0
        self._peak_live: int = 0
        self._cancelled_queued: int = 0
        self._pool: List[Event] = []
        self._pool_cap: int = _POOL_CAP
        self._pool_hits: int = 0
        # Arena freelist of vacated heap-entry lists (recycled by the
        # drain, drained by schedule()/post(); shares the adaptive pool
        # cap).
        # Misses (cold allocations) are counted instead of hits: every
        # heap push is either a hit or a miss, so hits are derived.
        self._arena: List[List[Any]] = []
        self._arena_misses: int = 0
        self._fast_lane: int = 0
        self._compactions: int = 0
        self._compaction_dropped: int = 0
        self._running = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of live (not cancelled, not fired) events still queued.

        Maintained as an O(1) counter; the heap may additionally hold
        cancelled entries awaiting lazy removal.
        """
        return self._live

    @property
    def executed(self) -> int:
        """Total events executed so far (statistics/debugging)."""
        return self._executed

    def stats(self) -> Dict[str, Any]:
        """Hot-loop subsystem counters (see ``docs/profiling.md``).

        All counters are maintained for free or nearly so: heap pops and
        total cancellations are derived from conservation identities
        (``scheduled = executed + pending + cancelled``; every entry
        leaves the heap by pop or by compaction) rather than counted in
        the hot loop.
        """
        scheduled = self._sequence
        fast = self._fast_lane
        heap_pushes = scheduled - fast
        heap_pops = heap_pushes - len(self._queue) - self._compaction_dropped
        # Every heap push either reuses an arena entry or allocates one,
        # so hits fall out of the miss count kept off the hot path.
        arena_hits = heap_pushes - self._arena_misses
        return {
            "now_ms": self._now,
            "scheduled": scheduled,
            "executed": self._executed,
            "pending": self._live,
            "cancelled": scheduled - self._executed - self._live,
            "heap_pushes": heap_pushes,
            "heap_pops": heap_pops,
            "fast_lane": fast,
            "fast_lane_fraction": fast / scheduled if scheduled else 0.0,
            "compactions": self._compactions,
            "compaction_dropped": self._compaction_dropped,
            "peak_pending": self._peak_live,
            "pool_cap": self._pool_cap,
            "pool_size": len(self._pool),
            "pool_hits": self._pool_hits,
            "pool_hit_rate": self._pool_hits / scheduled if scheduled
            else 0.0,
            "arena_cap": self._pool_cap,
            "arena_size": len(self._arena),
            "arena_hits": arena_hits,
            "arena_hit_rate": (arena_hits / heap_pushes
                               if heap_pushes else 0.0),
        }

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, time: float, callback: Callback,
                 args: Tuple[Any, ...] = (), label: str = "") -> Event:
        """Hot-path scheduling: no :class:`EventHandle` is created.

        Use when the caller will never cancel (message deliveries, one-shot
        kicks).  ``args`` are passed to ``callback`` at fire time, which
        lets callers avoid building a closure per event.

        Returns:
            The raw :class:`Event` (with its current ``sequence`` as the
            generation tag) -- :class:`repro.sim.process.Timer` uses the
            pair to cancel without a handle.

        Raises:
            SimulationError: if ``time`` is in the past.
        """
        now = self._now
        if time < now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is t={self._now})"
            )
        sequence = self._sequence
        self._sequence = sequence + 1
        pool = self._pool
        if pool:
            self._pool_hits += 1
            event = pool.pop()
        else:
            # Bare allocation: __new__ skips the __init__ frame, the six
            # stores below are shared with the pool-hit branch.
            event = _new_event(Event)
        event.time = time
        event.sequence = sequence
        event.callback = callback
        event.args = args
        event.cancelled = False
        event.label = label
        if time == now and self._batch_drain:
            self._fifo.append(event)
            self._fast_lane += 1
        else:
            # An event entry only stores slots 0..2: slots 3/4 may hold
            # stale refs from a recycled light posting, but they are
            # never read while slot 2 is non-None, and run()'s exit pass
            # clears whatever the arena retains.
            arena = self._arena
            if arena:
                entry = arena.pop()
                entry[0] = time
                entry[1] = sequence
                entry[2] = event
            else:
                self._arena_misses += 1
                entry = [time, sequence, event, None, None]
            _heappush(self._queue, entry)
        live = self._live + 1
        self._live = live
        if live > self._peak_live:
            self._peak_live = live
            if live > self._pool_cap:
                self._pool_cap = (live if live < _POOL_CAP_MAX
                                  else _POOL_CAP_MAX)
        return event

    def post(self, time: float, callback: Callback,
             args: Tuple[Any, ...] = ()) -> None:
        """Fire-and-forget scheduling: no :class:`Event`, no handle.

        The heap entry is a bare ``[time, sequence, None, callback,
        args]`` list drawn from the arena freelist -- at steady state
        zero tracked allocations per posting, and no cancelled-check on
        the drain.  This is the message-delivery path: the network posts
        every delivery (they are never cancelled), which makes this the
        most frequently executed scheduling call in the repository.

        Same-tick postings fall back to :meth:`schedule` so the FIFO
        fast lane keeps carrying homogeneous :class:`Event` objects.

        Raises:
            SimulationError: if ``time`` is in the past.
        """
        now = self._now
        if time <= now:
            if time < now:
                raise SimulationError(
                    f"cannot schedule at t={time} (now is t={now})"
                )
            self.schedule(time, callback, args)
            return
        sequence = self._sequence
        self._sequence = sequence + 1
        arena = self._arena
        if arena:
            entry = arena.pop()
            entry[0] = time
            entry[1] = sequence
            entry[3] = callback
            entry[4] = args
        else:
            self._arena_misses += 1
            entry = [time, sequence, None, callback, args]
        _heappush(self._queue, entry)
        live = self._live + 1
        self._live = live
        if live > self._peak_live:
            self._peak_live = live
            if live > self._pool_cap:
                self._pool_cap = (live if live < _POOL_CAP_MAX
                                  else _POOL_CAP_MAX)

    def call_at(self, time: float, callback: Callback,
                label: str = "", args: Tuple[Any, ...] = ()) -> EventHandle:
        """Schedule ``callback`` to run at absolute virtual ``time``.

        Raises:
            SimulationError: if ``time`` is in the past.
        """
        event = self.schedule(time, callback, args, label)
        return EventHandle(self, event, event.sequence)

    def call_after(self, delay: float, callback: Callback,
                   label: str = "", args: Tuple[Any, ...] = ()) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` ms from now.

        Raises:
            SimulationError: if ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self._now + delay, callback, label=label,
                            args=args)

    def call_soon(self, callback: Callback, label: str = "",
                  args: Tuple[Any, ...] = ()) -> EventHandle:
        """Schedule ``callback`` at the current instant (after queued peers)."""
        return self.call_at(self._now, callback, label=label, args=args)

    def call_every(self, period_ms: float, callback: Callback,
                   until_ms: float, label: str = "") -> None:
        """Run ``callback`` now and every ``period_ms`` until ``until_ms``
        (inclusive).

        Each firing schedules only the next one, so arming a long horizon
        keeps O(1) live events instead of O(until/period) -- the pattern
        the periodic safety/liveness observers rely on.  Ticks land at
        exactly ``now + k * period_ms``.

        Raises:
            ValueError: if ``period_ms`` is not positive.
        """
        if period_ms <= 0:
            raise ValueError(
                f"period_ms must be positive, got {period_ms}")

        def tick(at_ms: float) -> None:
            callback()
            next_ms = at_ms + period_ms
            if next_ms <= until_ms:
                self.call_at(next_ms, tick, args=(next_ms,), label=label)

        if self._now <= until_ms:
            self.call_at(self._now, tick, args=(self._now,), label=label)

    # ------------------------------------------------------------------
    # Cancellation (internal; EventHandle and Timer delegate here)
    # ------------------------------------------------------------------
    def _cancel_event(self, event: Event, sequence: int) -> bool:
        """Cancel a scheduled event if ``sequence`` still matches.

        Returns True if the event was live and is now cancelled.  The
        queue entry (heap or FIFO) is removed lazily; when dead entries
        pile up both structures are compacted in one pass.
        """
        if event.sequence != sequence or event.cancelled:
            return False
        event.cancelled = True
        event.callback = None
        event.args = ()
        self._live -= 1
        self._cancelled_queued += 1
        if (self._cancelled_queued > _COMPACT_MIN_CANCELLED
                and self._cancelled_queued * 2
                > len(self._queue) + len(self._fifo)):
            self._compact()
        return True

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify; pops stay in the same
        order because heap keys are unique ``(time, sequence)`` pairs.

        Mutates the queue (and the FIFO) in place: ``run()`` holds
        references to both across callbacks, and callbacks may trigger
        compaction.
        """
        pool = self._pool
        pool_cap = self._pool_cap
        arena = self._arena
        queue = self._queue
        keep = []
        for entry in queue:
            event = entry[2]
            if event is not None and event.cancelled:
                if len(pool) < pool_cap:
                    pool.append(event)
                if len(arena) < pool_cap:
                    entry[2] = None
                    arena.append(entry)
            else:
                keep.append(entry)
        self._compaction_dropped += len(queue) - len(keep)
        queue[:] = keep
        heapq.heapify(queue)
        fifo = self._fifo
        if fifo:
            keep_fifo = []
            for event in fifo:
                if event.cancelled:
                    if len(pool) < pool_cap:
                        pool.append(event)
                else:
                    keep_fifo.append(event)
            if len(keep_fifo) != len(fifo):
                fifo.clear()
                fifo.extend(keep_fifo)
        self._cancelled_queued = 0
        self._compactions += 1

    def _retire(self, event: Event) -> None:
        """Tombstone a popped event and return it to the free pool."""
        event.sequence = -1
        event.callback = None
        event.args = ()
        if len(self._pool) < self._pool_cap:
            self._pool.append(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single next event.

        Returns:
            True if an event was executed; False if the queue was empty.
        """
        queue = self._queue
        fifo = self._fifo
        arena = self._arena
        while True:
            if fifo and (not queue or queue[0][0] > self._now):
                event = fifo.popleft()
                if event.cancelled:
                    self._cancelled_queued -= 1
                    self._retire(event)
                    continue
            elif queue:
                entry = heapq.heappop(queue)
                event = entry[2]
                if event is None:
                    self._now = entry[0]
                    self._executed += 1
                    self._live -= 1
                    callback = entry[3]
                    args = entry[4]
                    entry[3] = None
                    entry[4] = None
                    if len(arena) < self._pool_cap:
                        arena.append(entry)
                    callback(*args)
                    return True
                # Event entry: slots 3/4 are never read while slot 2 is
                # non-None, so the shell is recyclable as soon as slot 2
                # is cleared.
                entry[2] = None
                if len(arena) < self._pool_cap:
                    arena.append(entry)
                if event.cancelled:
                    self._cancelled_queued -= 1
                    self._retire(event)
                    continue
            else:
                return False
            self._now = event.time
            self._executed += 1
            self._live -= 1
            callback = event.callback
            args = event.args
            self._retire(event)
            if args:
                callback(*args)
            else:
                callback()
            return True

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Run until the queue is empty, ``until`` is reached, or the budget
        of ``max_events`` is exhausted.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fires earlier, so back-to-back ``run`` calls
        compose naturally (``run(until=100); run(until=200)``).

        Returns:
            Number of events executed by this call.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        executed = 0
        queue = self._queue
        fifo = self._fifo
        pool = self._pool
        arena = self._arena
        # Recycling inside the drain appends unconditionally (no len/cap
        # check per event); the finally clause trims both freelists back
        # to the cap in one pass.  Transient growth is bounded by the
        # peak number of in-flight entries -- the same memory the heap
        # itself just released.
        pool_append = pool.append
        arena_append = arena.append
        pop = heapq.heappop
        try:
            if until is None and max_events is None:
                # Run-to-quiescence drain: no deadline to peek for, so
                # every event is popped straight off -- one less index and
                # branch per event on the hottest loop in the repo.
                while True:
                    if fifo and (not queue or queue[0][0] > self._now):
                        event = fifo.popleft()
                        if event.cancelled:
                            self._cancelled_queued -= 1
                            event.sequence = -1
                            pool_append(event)
                            continue
                        self._now = event.time
                    else:
                        if not queue:
                            break
                        entry = pop(queue)
                        event = entry[2]
                        if event is None:
                            # Light posting: fire straight off the entry.
                            # The shell goes back to the arena *before*
                            # the callback runs, so the entry a delivery
                            # vacates is immediately reused by the
                            # deliveries it causes.  Slots 3/4 are left
                            # stale here (post() overwrites them on
                            # reuse, event entries never read them); the
                            # finally clause clears whatever the arena
                            # still holds at exit.
                            self._now = entry[0]
                            executed += 1
                            self._live -= 1
                            callback = entry[3]
                            args = entry[4]
                            arena_append(entry)
                            callback(*args)
                            continue
                        entry[2] = None
                        arena_append(entry)
                        if event.cancelled:
                            self._cancelled_queued -= 1
                            event.sequence = -1
                            pool_append(event)
                            continue
                        self._now = entry[0]
                    executed += 1
                    self._live -= 1
                    callback = event.callback
                    args = event.args
                    event.sequence = -1
                    event.callback = None
                    event.args = ()
                    pool_append(event)
                    if args:
                        callback(*args)
                    else:
                        callback()
                return executed
            while True:
                if max_events is not None and executed >= max_events:
                    break
                # Same-tick FIFO entries always carry larger sequence
                # numbers than heap entries due at `now` (see module
                # notes), so the heap drains first while its head is due.
                if fifo and (not queue or queue[0][0] > self._now):
                    event = fifo[0]
                    if event.cancelled:
                        fifo.popleft()
                        self._cancelled_queued -= 1
                        event.sequence = -1
                        pool_append(event)
                        continue
                    if until is not None and event.time > until:
                        break
                    fifo.popleft()
                    self._now = event.time
                else:
                    if not queue:
                        break
                    entry = queue[0]
                    event = entry[2]
                    if event is None:
                        if until is not None and entry[0] > until:
                            break
                        pop(queue)
                        self._now = entry[0]
                        executed += 1
                        self._live -= 1
                        callback = entry[3]
                        args = entry[4]
                        arena_append(entry)
                        callback(*args)
                        continue
                    if event.cancelled:
                        pop(queue)
                        self._cancelled_queued -= 1
                        event.sequence = -1
                        pool_append(event)
                        entry[2] = None
                        arena_append(entry)
                        continue
                    if until is not None and entry[0] > until:
                        break
                    pop(queue)
                    self._now = entry[0]
                    entry[2] = None
                    arena_append(entry)
                executed += 1
                self._live -= 1
                callback = event.callback
                args = event.args
                event.sequence = -1
                event.callback = None
                event.args = ()
                pool_append(event)
                if args:
                    callback(*args)
                else:
                    callback()
        finally:
            self._running = False
            # Deferred bookkeeping: the executed counter is only read
            # between runs, so the hot loops keep a local and commit it
            # here (exceptions included).
            self._executed += executed
            # Trim both freelists back to the cap, and clear the stale
            # callback/args slots light postings left behind so parked
            # arena entries never pin delivered payloads between runs.
            cap = self._pool_cap
            if len(arena) > cap:
                del arena[cap:]
            if len(pool) > cap:
                del pool[cap:]
            for entry in arena:
                entry[3] = None
                entry[4] = None
        if until is not None and self._now < until:
            self._now = until
        return executed

    def drain(self, max_events: int = 10_000_000) -> int:
        """Run to quiescence; guard against runaway event loops.

        Raises:
            SimulationError: if ``max_events`` is exceeded, which almost
                always indicates a timer rescheduling itself unconditionally.
        """
        executed = self.run(max_events=max_events)
        if self.pending:
            raise SimulationError(
                f"drain exceeded {max_events} events with "
                f"{self.pending} still pending"
            )
        return executed
