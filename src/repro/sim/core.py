"""The event loop at the heart of every experiment.

Design notes
------------

* **Virtual time** is a ``float`` number of milliseconds starting at 0.
* **Determinism**: events that fire at the same instant are delivered in
  insertion order (a monotonically increasing tiebreaker is part of the heap
  key), so a run is a pure function of (code, seed).
* **Cancellation** is lazy: cancelling marks the event and the entry is
  skipped when popped, which keeps cancellation O(1) -- important because
  protocols cancel retransmission timers on virtually every reply.  When
  cancelled entries outnumber live ones the heap is compacted in one pass
  (the same strategy asyncio uses), so a cancel-heavy run never drags a
  long tail of dead timers through every push and pop.
* **Allocation discipline**: the heap stores plain ``(time, sequence,
  event)`` tuples (C-speed comparisons; the event object itself is never
  compared), :class:`Event` has ``__slots__``, and executed or compacted
  events are recycled through a free pool.  At steady state the hot loop
  schedules and fires events with no per-event allocation beyond the heap
  tuple.  Callers that never cancel (message delivery) can use
  :meth:`Simulator.schedule` to skip the :class:`EventHandle` too.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.common.errors import SimulationError

Callback = Callable[..., None]

#: Recycled-event pool cap; beyond this, events are left to the GC.
_POOL_CAP = 8192

#: Compact the heap when more than this many entries are cancelled *and*
#: they outnumber the live entries (both conditions, like asyncio).
_COMPACT_MIN_CANCELLED = 64


class Event:
    """A scheduled callback, ordered in the heap by ``(time, sequence)``.

    ``sequence`` doubles as a generation tag: it is reset to ``-1`` when the
    event fires and reassigned when the object is recycled for a new
    scheduling, which lets stale :class:`EventHandle` objects detect that
    "their" event is gone in O(1).
    """

    __slots__ = ("time", "sequence", "callback", "args", "cancelled", "label")

    def __init__(self, time: float = 0.0, sequence: int = -1,
                 callback: Optional[Callback] = None,
                 args: Tuple[Any, ...] = (), label: str = "") -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.label = label


class EventHandle:
    """Caller-facing handle allowing an event to be cancelled.

    The handle pins the ``(event, sequence)`` pair observed at scheduling
    time; once the event has fired (or its object has been recycled) the
    handle becomes inert: ``active`` is False and ``cancel()`` is a no-op.
    """

    __slots__ = ("_sim", "_event", "_sequence")

    def __init__(self, sim: "Simulator", event: Event, sequence: int):
        self._sim = sim
        self._event = event
        self._sequence = sequence

    @property
    def time(self) -> float:
        """Virtual time at which the event will fire (meaningful only
        while ``active``)."""
        return self._event.time

    @property
    def active(self) -> bool:
        """True while the event is scheduled and not yet fired/cancelled."""
        event = self._event
        return event.sequence == self._sequence and not event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing. Idempotent."""
        self._sim._cancel_event(self._event, self._sequence)


class Simulator:
    """A deterministic discrete-event scheduler.

    Typical usage::

        sim = Simulator()
        sim.call_at(10.0, lambda: print("fires at t=10ms"))
        sim.run(until=100.0)

    The simulator never advances past an event without executing it, and it
    raises :class:`SimulationError` on attempts to schedule in the past.
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._queue: List[Tuple[float, int, Event]] = []
        self._sequence: int = 0
        self._executed: int = 0
        self._live: int = 0
        self._cancelled_queued: int = 0
        self._pool: List[Event] = []
        self._running = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of live (not cancelled, not fired) events still queued.

        Maintained as an O(1) counter; the heap may additionally hold
        cancelled entries awaiting lazy removal.
        """
        return self._live

    @property
    def executed(self) -> int:
        """Total events executed so far (statistics/debugging)."""
        return self._executed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, time: float, callback: Callback,
                 args: Tuple[Any, ...] = (), label: str = "") -> Event:
        """Hot-path scheduling: no :class:`EventHandle` is created.

        Use when the caller will never cancel (message deliveries, one-shot
        kicks).  ``args`` are passed to ``callback`` at fire time, which
        lets callers avoid building a closure per event.

        Returns:
            The raw :class:`Event` (with its current ``sequence`` as the
            generation tag) -- :class:`repro.sim.process.Timer` uses the
            pair to cancel without a handle.

        Raises:
            SimulationError: if ``time`` is in the past.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is t={self._now})"
            )
        sequence = self._sequence
        self._sequence = sequence + 1
        pool = self._pool
        if pool:
            event = pool.pop()
            event.time = time
            event.sequence = sequence
            event.callback = callback
            event.args = args
            event.cancelled = False
            event.label = label
        else:
            event = Event(time, sequence, callback, args, label)
        heapq.heappush(self._queue, (time, sequence, event))
        self._live += 1
        return event

    def call_at(self, time: float, callback: Callback,
                label: str = "", args: Tuple[Any, ...] = ()) -> EventHandle:
        """Schedule ``callback`` to run at absolute virtual ``time``.

        Raises:
            SimulationError: if ``time`` is in the past.
        """
        event = self.schedule(time, callback, args, label)
        return EventHandle(self, event, event.sequence)

    def call_after(self, delay: float, callback: Callback,
                   label: str = "", args: Tuple[Any, ...] = ()) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` ms from now.

        Raises:
            SimulationError: if ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self._now + delay, callback, label=label,
                            args=args)

    def call_soon(self, callback: Callback, label: str = "",
                  args: Tuple[Any, ...] = ()) -> EventHandle:
        """Schedule ``callback`` at the current instant (after queued peers)."""
        return self.call_at(self._now, callback, label=label, args=args)

    def call_every(self, period_ms: float, callback: Callback,
                   until_ms: float, label: str = "") -> None:
        """Run ``callback`` now and every ``period_ms`` until ``until_ms``
        (inclusive).

        Each firing schedules only the next one, so arming a long horizon
        keeps O(1) live events instead of O(until/period) -- the pattern
        the periodic safety/liveness observers rely on.  Ticks land at
        exactly ``now + k * period_ms``.

        Raises:
            ValueError: if ``period_ms`` is not positive.
        """
        if period_ms <= 0:
            raise ValueError(
                f"period_ms must be positive, got {period_ms}")

        def tick(at_ms: float) -> None:
            callback()
            next_ms = at_ms + period_ms
            if next_ms <= until_ms:
                self.call_at(next_ms, tick, args=(next_ms,), label=label)

        if self._now <= until_ms:
            self.call_at(self._now, tick, args=(self._now,), label=label)

    # ------------------------------------------------------------------
    # Cancellation (internal; EventHandle and Timer delegate here)
    # ------------------------------------------------------------------
    def _cancel_event(self, event: Event, sequence: int) -> bool:
        """Cancel a scheduled event if ``sequence`` still matches.

        Returns True if the event was live and is now cancelled.  The heap
        entry is removed lazily; when dead entries pile up the heap is
        compacted in one pass.
        """
        if event.sequence != sequence or event.cancelled:
            return False
        event.cancelled = True
        event.callback = None
        event.args = ()
        self._live -= 1
        self._cancelled_queued += 1
        if (self._cancelled_queued > _COMPACT_MIN_CANCELLED
                and self._cancelled_queued * 2 > len(self._queue)):
            self._compact()
        return True

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify; pops stay in the same
        order because heap keys are unique ``(time, sequence)`` pairs.

        Mutates the queue in place: ``run()`` holds a reference to the
        list across callbacks, and callbacks may trigger compaction.
        """
        pool = self._pool
        queue = self._queue
        keep = []
        for entry in queue:
            event = entry[2]
            if event.cancelled:
                if len(pool) < _POOL_CAP:
                    pool.append(event)
            else:
                keep.append(entry)
        queue[:] = keep
        heapq.heapify(queue)
        self._cancelled_queued = 0

    def _retire(self, event: Event) -> None:
        """Tombstone a popped event and return it to the free pool."""
        event.sequence = -1
        event.callback = None
        event.args = ()
        if len(self._pool) < _POOL_CAP:
            self._pool.append(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single next event.

        Returns:
            True if an event was executed; False if the queue was empty.
        """
        queue = self._queue
        while queue:
            _, _, event = heapq.heappop(queue)
            if event.cancelled:
                self._cancelled_queued -= 1
                self._retire(event)
                continue
            self._now = event.time
            self._executed += 1
            self._live -= 1
            callback = event.callback
            args = event.args
            self._retire(event)
            if args:
                callback(*args)
            else:
                callback()
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Run until the queue is empty, ``until`` is reached, or the budget
        of ``max_events`` is exhausted.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fires earlier, so back-to-back ``run`` calls
        compose naturally (``run(until=100); run(until=200)``).

        Returns:
            Number of events executed by this call.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        executed = 0
        queue = self._queue
        pop = heapq.heappop
        try:
            while queue:
                if max_events is not None and executed >= max_events:
                    break
                entry = queue[0]
                event = entry[2]
                if event.cancelled:
                    pop(queue)
                    self._cancelled_queued -= 1
                    self._retire(event)
                    continue
                if until is not None and entry[0] > until:
                    break
                pop(queue)
                self._now = entry[0]
                self._executed += 1
                executed += 1
                self._live -= 1
                callback = event.callback
                args = event.args
                self._retire(event)
                if args:
                    callback(*args)
                else:
                    callback()
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return executed

    def drain(self, max_events: int = 10_000_000) -> int:
        """Run to quiescence; guard against runaway event loops.

        Raises:
            SimulationError: if ``max_events`` is exceeded, which almost
                always indicates a timer rescheduling itself unconditionally.
        """
        executed = self.run(max_events=max_events)
        if self.pending:
            raise SimulationError(
                f"drain exceeded {max_events} events with "
                f"{self.pending} still pending"
            )
        return executed
