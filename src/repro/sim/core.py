"""The event loop at the heart of every experiment.

Design notes
------------

* **Virtual time** is a ``float`` number of milliseconds starting at 0.
* **Determinism**: events that fire at the same instant are delivered in
  insertion order (a monotonically increasing tiebreaker is part of the heap
  key), so a run is a pure function of (code, seed).
* **Cancellation** is lazy: cancelling marks the handle and the event is
  skipped when popped, which keeps cancellation O(1) -- important because
  protocols cancel retransmission timers on virtually every reply.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.common.errors import SimulationError

Callback = Callable[[], None]


@dataclass(order=True)
class Event:
    """A scheduled callback. Ordered by ``(time, sequence)``."""

    time: float
    sequence: int
    callback: Callback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)


class EventHandle:
    """Caller-facing handle allowing an event to be cancelled."""

    __slots__ = ("_event",)

    def __init__(self, event: Event):
        self._event = event

    @property
    def time(self) -> float:
        """Virtual time at which the event will fire."""
        return self._event.time

    @property
    def active(self) -> bool:
        """True while the event is scheduled and not yet fired/cancelled."""
        return not self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing. Idempotent."""
        self._event.cancelled = True


class Simulator:
    """A deterministic discrete-event scheduler.

    Typical usage::

        sim = Simulator()
        sim.call_at(10.0, lambda: print("fires at t=10ms"))
        sim.run(until=100.0)

    The simulator never advances past an event without executing it, and it
    raises :class:`SimulationError` on attempts to schedule in the past.
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._queue: List[Event] = []
        self._sequence: int = 0
        self._executed: int = 0
        self._running = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled (possibly cancelled) events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)

    @property
    def executed(self) -> int:
        """Total events executed so far (statistics/debugging)."""
        return self._executed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(self, time: float, callback: Callback,
                label: str = "") -> EventHandle:
        """Schedule ``callback`` to run at absolute virtual ``time``.

        Raises:
            SimulationError: if ``time`` is in the past.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is t={self._now})"
            )
        event = Event(time=time, sequence=self._sequence, callback=callback,
                      label=label)
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def call_after(self, delay: float, callback: Callback,
                   label: str = "") -> EventHandle:
        """Schedule ``callback`` to run ``delay`` ms from now.

        Raises:
            SimulationError: if ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self._now + delay, callback, label=label)

    def call_soon(self, callback: Callback, label: str = "") -> EventHandle:
        """Schedule ``callback`` at the current instant (after queued peers)."""
        return self.call_at(self._now, callback, label=label)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single next event.

        Returns:
            True if an event was executed; False if the queue was empty.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._executed += 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Run until the queue is empty, ``until`` is reached, or the budget
        of ``max_events`` is exhausted.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fires earlier, so back-to-back ``run`` calls
        compose naturally (``run(until=100); run(until=200)``).

        Returns:
            Number of events executed by this call.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        executed = 0
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    break
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                self._now = event.time
                self._executed += 1
                executed += 1
                event.callback()
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return executed

    def drain(self, max_events: int = 10_000_000) -> int:
        """Run to quiescence; guard against runaway event loops.

        Raises:
            SimulationError: if ``max_events`` is exceeded, which almost
                always indicates a timer rescheduling itself unconditionally.
        """
        executed = self.run(max_events=max_events)
        if self.pending:
            raise SimulationError(
                f"drain exceeded {max_events} events with "
                f"{self.pending} still pending"
            )
        return executed
