"""Higher-level simulation primitives: named processes and restartable timers.

Replicas and clients are :class:`Process` subclasses.  A process can be
*crashed* (it stops receiving events) and later *recovered*; its timers are
automatically invalidated on crash, which models a machine reboot losing its
in-memory timer wheel.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.sim.core import EventHandle, Simulator


class Timer:
    """A restartable one-shot timer bound to a process.

    Mirrors the timers of the paper's pseudocode (``timer_c``,
    ``timer_net``, ``timer_vc``, ``timer_req``): ``start`` arms it,
    ``stop`` disarms it, and re-``start`` while armed restarts it.
    """

    def __init__(self, process: "Process", callback: Callable[[], None],
                 label: str = "timer"):
        self._process = process
        self._callback = callback
        self._label = label
        self._handle: Optional[EventHandle] = None
        process._register_timer(self)

    @property
    def armed(self) -> bool:
        """True if the timer is counting down."""
        return self._handle is not None and self._handle.active

    @property
    def deadline(self) -> Optional[float]:
        """Virtual time at which the timer will fire, or None if disarmed."""
        if self.armed:
            assert self._handle is not None
            return self._handle.time
        return None

    def start(self, delay_ms: float) -> None:
        """(Re)arm the timer to fire ``delay_ms`` from now."""
        self.stop()
        self._handle = self._process.sim.call_after(
            delay_ms, self._fire, label=self._label
        )

    def stop(self) -> None:
        """Disarm the timer. Idempotent."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        if self._process.crashed:
            return
        self._callback()


class Process:
    """A named participant in the simulation (replica or client).

    Subclasses schedule work through :meth:`after` and :class:`Timer`; both
    automatically become no-ops while the process is crashed, so protocol
    code never needs crash checks around timer callbacks.
    """

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self._crashed = False
        self._timers: List[Timer] = []

    # ------------------------------------------------------------------
    @property
    def crashed(self) -> bool:
        """True while the process is down."""
        return self._crashed

    def crash(self) -> None:
        """Stop the process: all armed timers are lost, and future events
        scheduled through :meth:`after` are suppressed."""
        self._crashed = True
        for timer in self._timers:
            timer.stop()

    def recover(self) -> None:
        """Bring the process back up.  Subclasses override to re-arm timers
        and re-join the protocol; they must call ``super().recover()``."""
        self._crashed = False

    # ------------------------------------------------------------------
    def after(self, delay_ms: float, callback: Callable[[], None],
              label: str = "") -> EventHandle:
        """Schedule ``callback`` unless the process is crashed when it fires."""

        def guarded() -> None:
            if not self._crashed:
                callback()

        return self.sim.call_after(delay_ms, guarded,
                                   label=label or self.name)

    def _register_timer(self, timer: Timer) -> None:
        self._timers.append(timer)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "crashed" if self._crashed else "up"
        return f"<{type(self).__name__} {self.name} ({state})>"
