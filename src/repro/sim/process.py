"""Higher-level simulation primitives: named processes and restartable timers.

Replicas and clients are :class:`Process` subclasses.  A process can be
*crashed* (it stops receiving events) and later *recovered*; its timers are
automatically invalidated on crash, which models a machine reboot losing its
in-memory timer wheel.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.common.errors import SimulationError
from repro.sim.core import Event, EventHandle, Simulator


class Timer:
    """A restartable one-shot timer bound to a process.

    Mirrors the timers of the paper's pseudocode (``timer_c``,
    ``timer_net``, ``timer_vc``, ``timer_req``): ``start`` arms it,
    ``stop`` disarms it, and re-``start`` while armed restarts it.

    Protocols restart these on virtually every reply, so arming goes
    through the simulator's pooled fast path (:meth:`Simulator.schedule`)
    and cancellation talks to the scheduler directly -- no
    :class:`EventHandle` or closure is allocated per start/stop cycle.
    """

    __slots__ = ("_process", "_callback", "_label", "_event", "_sequence")

    def __init__(self, process: "Process", callback: Callable[[], None],
                 label: str = "timer"):
        self._process = process
        self._callback = callback
        self._label = label
        self._event: Optional[Event] = None
        self._sequence = -1
        process._register_timer(self)

    @property
    def armed(self) -> bool:
        """True if the timer is counting down."""
        event = self._event
        return (event is not None and event.sequence == self._sequence
                and not event.cancelled)

    @property
    def deadline(self) -> Optional[float]:
        """Virtual time at which the timer will fire, or None if disarmed."""
        if self.armed:
            assert self._event is not None
            return self._event.time
        return None

    def start(self, delay_ms: float) -> None:
        """(Re)arm the timer to fire ``delay_ms`` from now."""
        self.stop()
        if delay_ms < 0:
            raise SimulationError(f"negative delay {delay_ms}")
        sim = self._process.sim
        event = sim.schedule(sim.now + delay_ms, self._fire,
                             label=self._label)
        self._event = event
        self._sequence = event.sequence

    def stop(self) -> None:
        """Disarm the timer. Idempotent."""
        event = self._event
        if event is not None:
            self._process.sim._cancel_event(event, self._sequence)
            self._event = None

    def _fire(self) -> None:
        self._event = None
        if self._process.crashed:
            return
        self._callback()


class Process:
    """A named participant in the simulation (replica or client).

    Subclasses schedule work through :meth:`after` and :class:`Timer`; both
    automatically become no-ops while the process is crashed, so protocol
    code never needs crash checks around timer callbacks.
    """

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self._crashed = False
        self._timers: List[Timer] = []

    # ------------------------------------------------------------------
    @property
    def crashed(self) -> bool:
        """True while the process is down."""
        return self._crashed

    def crash(self) -> None:
        """Stop the process: all armed timers are lost, and future events
        scheduled through :meth:`after` are suppressed."""
        self._crashed = True
        for timer in self._timers:
            timer.stop()

    def recover(self) -> None:
        """Bring the process back up.  Subclasses override to re-arm timers
        and re-join the protocol; they must call ``super().recover()``."""
        self._crashed = False

    # ------------------------------------------------------------------
    def after(self, delay_ms: float, callback: Callable[[], None],
              label: str = "") -> EventHandle:
        """Schedule ``callback`` unless the process is crashed when it fires."""
        return self.sim.call_after(delay_ms, self._run_unless_crashed,
                                   label=label or self.name,
                                   args=(callback,))

    def _run_unless_crashed(self, callback: Callable[[], None]) -> None:
        if not self._crashed:
            callback()

    def _register_timer(self, timer: Timer) -> None:
        self._timers.append(timer)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "crashed" if self._crashed else "up"
        return f"<{type(self).__name__} {self.name} ({state})>"
