"""Deterministic discrete-event simulation engine.

The simulator replaces the paper's EC2 wall clock: all latencies, timeouts
and CPU costs are expressed in virtual milliseconds, and every run with the
same seed is bit-for-bit reproducible.
"""

from repro.sim.core import Event, EventHandle, Simulator
from repro.sim.process import Process, Timer

__all__ = ["Simulator", "Event", "EventHandle", "Process", "Timer"]
