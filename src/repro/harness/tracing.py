"""Structured message tracing and ASCII sequence diagrams.

Attach a :class:`MessageTracer` to a network before a run and it records
every delivered message as a :class:`TraceEvent`.  The trace can be
filtered (by time, participant, message type) and rendered as an ASCII
sequence diagram -- the same artifact as the paper's Figure 2 (common-case
message patterns) and Figure 3 (view change), but regenerated from a live
protocol execution rather than drawn by hand.

Example::

    tracer = MessageTracer.attach(runtime.network)
    ... run ...
    print(render_sequence_diagram(
        tracer.filter(kinds={"FastPrepare", "FastCommit", "ReplyMsg"}),
        participants=["c0", "r0", "r1"]))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set

from repro.net.network import Network


@dataclass(frozen=True)
class TraceEvent:
    """One delivered message."""

    time: float
    src: str
    dst: str
    kind: str
    payload: Any

    def __str__(self) -> str:
        return f"{self.time:10.2f}ms {self.src:>4} -> {self.dst:<4} {self.kind}"


class MessageTracer:
    """Records every message a network delivers."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self._enabled = True

    @classmethod
    def attach(cls, network: Network) -> "MessageTracer":
        """Wrap every endpoint's delivery callback with recording.

        Must be called after all endpoints are attached (i.e. after
        ``build_cluster``) and before the run.
        """
        tracer = cls()
        for name in list(network.names):
            endpoint = network.endpoint(name)
            original = endpoint.deliver

            def spying(src: str, payload: Any, _original=original,
                       _dst=name) -> None:
                if tracer._enabled:
                    tracer.events.append(TraceEvent(
                        time=network.sim.now, src=src, dst=_dst,
                        kind=type(payload).__name__, payload=payload))
                _original(src, payload)

            endpoint.deliver = spying
            original_auth = endpoint.deliver_auth
            if original_auth is None:
                continue

            def spying_auth(src: str, body: Any, auth: Any,
                            size_bytes: int, _original=original_auth,
                            _dst=name) -> None:
                # Authenticated deliveries are traced by their body: the
                # transport authenticator is channel plumbing, not a
                # protocol message.
                if tracer._enabled:
                    tracer.events.append(TraceEvent(
                        time=network.sim.now, src=src, dst=_dst,
                        kind=type(body).__name__, payload=body))
                _original(src, body, auth, size_bytes)

            endpoint.deliver_auth = spying_auth
        return tracer

    # ------------------------------------------------------------------
    def pause(self) -> None:
        """Stop recording (e.g. to skip a warmup phase)."""
        self._enabled = False

    def resume(self) -> None:
        """Resume recording."""
        self._enabled = True

    def clear(self) -> None:
        """Drop everything recorded so far."""
        self.events.clear()

    # ------------------------------------------------------------------
    def filter(
        self,
        kinds: Optional[Set[str]] = None,
        participants: Optional[Set[str]] = None,
        start_ms: float = 0.0,
        end_ms: float = float("inf"),
        limit: Optional[int] = None,
    ) -> List[TraceEvent]:
        """Select a slice of the trace.

        Args:
            kinds: keep only these message type names.
            participants: keep messages whose src AND dst are in the set.
            start_ms / end_ms: time window.
            limit: keep at most this many events (from the start).
        """
        selected = []
        for event in self.events:
            if not start_ms <= event.time <= end_ms:
                continue
            if kinds is not None and event.kind not in kinds:
                continue
            if participants is not None and (
                    event.src not in participants
                    or event.dst not in participants):
                continue
            selected.append(event)
            if limit is not None and len(selected) >= limit:
                break
        return selected

    def count_by_kind(self) -> Dict[str, int]:
        """Message-type histogram -- handy for complexity assertions."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts


def render_sequence_diagram(
    events: Sequence[TraceEvent],
    participants: Optional[Sequence[str]] = None,
    width: int = 14,
) -> str:
    """Render events as an ASCII sequence diagram.

    Participants become columns; each event is a row with an arrow from
    the source column to the destination column, labeled with the message
    kind and timestamp.
    """
    if participants is None:
        seen: List[str] = []
        for event in events:
            for name in (event.src, event.dst):
                if name not in seen:
                    seen.append(name)
        participants = seen
    columns = {name: index for index, name in enumerate(participants)}

    def position(index: int) -> int:
        return index * width + width // 2

    header = "".join(name.center(width) for name in participants)
    lines = [header]
    ruler = ""
    for index in range(len(participants)):
        ruler = ruler.ljust(position(index)) + "|"
    lines.append(ruler)

    for event in events:
        if event.src not in columns or event.dst not in columns:
            continue
        src_position = position(columns[event.src])
        dst_position = position(columns[event.dst])
        low, high = sorted((src_position, dst_position))
        row = list(" " * (len(participants) * width))
        for index in range(len(participants)):
            row[position(index)] = "|"
        if low != high:
            for x in range(low + 1, high):
                row[x] = "-"
            if dst_position > src_position:
                row[high - 1] = ">"
            else:
                row[low + 1] = "<"
        label = f" {event.kind} @{event.time:.1f}ms"
        lines.append("".join(row).rstrip() + label)
    return "\n".join(lines)


def message_complexity(
    tracer: MessageTracer,
    committed_ops: int,
    protocol_kinds: Optional[Set[str]] = None,
) -> float:
    """Messages per committed operation -- the quantity behind the paper's
    'communication complexity of state-of-the-art CFT protocols' claim.

    Args:
        tracer: the recorded run.
        committed_ops: operations committed during the recording.
        protocol_kinds: restrict to these message types (None = all).
    """
    if committed_ops <= 0:
        raise ValueError("committed_ops must be positive")
    if protocol_kinds is None:
        total = len(tracer.events)
    else:
        total = sum(1 for e in tracer.events if e.kind in protocol_kinds)
    return total / committed_ops
