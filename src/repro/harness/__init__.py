"""Experiment harness regenerating the paper's tables and figures."""

from repro.harness.runner import (
    ExperimentResult,
    ExperimentRunner,
    SweepPoint,
)
from repro.harness.configs import replica_placement_table
from repro.harness.matrix import CellResult, MatrixResult, MatrixRunner
from repro.harness.timeline import run_fault_timeline

__all__ = [
    "ExperimentRunner",
    "ExperimentResult",
    "SweepPoint",
    "replica_placement_table",
    "run_fault_timeline",
    "MatrixRunner",
    "MatrixResult",
    "CellResult",
]
