"""The Figure 9 experiment: throughput timeline under a fault schedule.

Runs a closed-loop workload while a :class:`FaultSchedule` crashes and
recovers replicas, and returns the windowed throughput series plus the view
trajectory -- which the benchmark target prints next to the paper's
observations ("after each crash, the system performs a view change that
lasts less than 10 sec").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.config import ClusterConfig, WorkloadConfig
from repro.faults.injector import FaultInjector, FaultSchedule
from repro.harness.runner import ExperimentRunner
from repro.workloads.clients import ClosedLoopDriver


@dataclass
class TimelineResult:
    """Output of a fault-timeline run."""

    throughput_series: List[Tuple[float, float]]  # (window start ms, kops/s)
    view_changes: Dict[int, int]  # replica -> completed view changes
    final_views: Dict[int, int]  # replica -> final view number
    committed: int
    recovery_gaps_ms: List[float]  # measured zero-throughput gaps

    def longest_gap_ms(self) -> float:
        """Longest interval of zero committed throughput."""
        return max(self.recovery_gaps_ms, default=0.0)


def run_fault_timeline(
    runner: ExperimentRunner,
    config: ClusterConfig,
    workload: WorkloadConfig,
    schedule: FaultSchedule,
    window_ms: float = 1_000.0,
) -> TimelineResult:
    """Run the under-faults experiment and collect the throughput series."""
    runtime = runner.build(config, workload)
    driver = ClosedLoopDriver(runtime, workload)
    driver.throughput.window_ms = window_ms
    injector = FaultInjector(runtime)
    injector.arm(schedule)
    driver.run()

    series = driver.throughput.timeline()
    gaps = _zero_gaps(series, window_ms, workload)
    view_changes = {}
    final_views = {}
    for replica in runtime.replicas:
        view_changes[replica.replica_id] = getattr(
            replica, "view_changes_completed", 0)
        final_views[replica.replica_id] = getattr(replica, "view", 0)
    return TimelineResult(
        throughput_series=series,
        view_changes=view_changes,
        final_views=final_views,
        committed=driver.throughput.total,
        recovery_gaps_ms=gaps,
    )


def _zero_gaps(series: List[Tuple[float, float]], window_ms: float,
               workload: WorkloadConfig) -> List[float]:
    """Lengths of committed-throughput outages within the measured period.

    A gap is a run of consecutive windows with no completions, bounded by
    windows with completions on both sides (start-up and tail are not
    counted as outages).
    """
    if not series:
        return []
    occupied = {int(start // window_ms) for start, _ in series}
    first = min(occupied)
    last = max(occupied)
    gaps: List[float] = []
    gap_length = 0
    for window in range(first, last + 1):
        if window in occupied:
            if gap_length:
                gaps.append(gap_length * window_ms)
            gap_length = 0
        else:
            gap_length += 1
    return gaps
