"""Replica placement (Table 4) and deployment construction helpers."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.common.config import (
    ClusterConfig,
    ProtocolName,
    T1_SITES,
    T2_SITES,
    sites_for,
)


def replica_placement_table(t: int = 1) -> Dict[str, Sequence[str]]:
    """The paper's Table 4 (t=1) or the Section 5.2 layout (t=2):
    ``protocol -> ordered datacenter list`` (index = replica id; the
    replicas beyond the common case are the shaded/passive ones)."""
    return {p.value: sites_for(p, t) for p in ProtocolName}


def common_case_sites(protocol: ProtocolName, t: int) -> Tuple[str, ...]:
    """Datacenters actually involved in the protocol's common case."""
    sites = sites_for(protocol, t)
    if protocol in (ProtocolName.XPAXOS, ProtocolName.PAXOS):
        return tuple(sites[: t + 1])
    if protocol is ProtocolName.PBFT:
        return tuple(sites[: 2 * t + 1])
    return tuple(sites)


def paper_config(protocol: ProtocolName, t: int = 1,
                 **overrides) -> ClusterConfig:
    """A :class:`ClusterConfig` matching the paper's evaluation defaults."""
    return ClusterConfig(
        t=t,
        protocol=protocol,
        sites=sites_for(protocol, t),
        **overrides,
    )
