"""Scenario conformance matrix: run ``(protocol x scenario)`` cells.

Each cell builds a fresh deterministic cluster, injects the scenario's
fault schedule and adversaries, drives the closed-loop workload, and
grades the run against the scenario's invariants:

* **safety** -- total order among benign replicas
  (:class:`~repro.faults.checker.SafetyChecker`), admissible to violate
  only when the scenario intentionally enters anarchy;
* **liveness** -- commit progress within the scenario's bound whenever
  the system is healthy (:class:`~repro.faults.liveness.LivenessChecker`);
* **expectations** -- anarchy observed for anarchy scenarios, adversaries
  convicted for detection scenarios, a floor on total commits.

Cells are fully deterministic: repeating a cell with the same seed
produces a byte-identical JSON record.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.common.config import (
    ClusterConfig,
    ProtocolName,
    WorkloadConfig,
    sites_for,
)
from repro.faults.checker import SafetyChecker
from repro.faults.injector import FaultInjector
from repro.faults.liveness import LivenessChecker
from repro.harness.parallel import guard_global_rng, parallel_map
from repro.net.latency import LatencyModel
from repro.protocols.registry import build_cluster
from repro.scenarios.library import builtin_scenarios
from repro.scenarios.scenario import Scenario
from repro.workloads.clients import WorkloadDriver, make_driver

#: Statuses a cell can end in.
PASS = "pass"
FAIL = "fail"
EXPECTED_VIOLATION = "expected-violation"
SKIPPED = "skipped"
#: The cell's worker raised or died before grading finished.  Only that
#: cell is lost; the rest of the matrix is unaffected.
ERROR = "error"

#: Fast timeouts for conformance cells (scenarios are phrased in a few
#: virtual seconds, not paper-scale ones).  The test suite's FAST_TIMEOUTS
#: is defined as a copy of this dict, so cells and unit tests always run
#: under identical timeouts.
CELL_TIMEOUTS = dict(
    delta_ms=50.0,
    request_retransmit_ms=200.0,
    view_change_timeout_ms=400.0,
    batch_timeout_ms=2.0,
)

#: Anarchy observation period (well under every schedule's fault windows).
OBSERVE_PERIOD_MS = 50.0


@dataclass
class CellResult:
    """Outcome of one ``(protocol, scenario)`` cell."""

    protocol: str
    scenario: str
    status: str
    committed: int = 0
    anarchy_observed: bool = False
    safety_violations: int = 0
    liveness_violations: int = 0
    detection_ok: bool = True
    convicted: List[int] = field(default_factory=list)
    seed: int = 0
    detail: str = ""

    @property
    def ok(self) -> bool:
        """Did the cell satisfy its invariants (or stay out of scope)?"""
        return self.status in (PASS, EXPECTED_VIOLATION, SKIPPED)


@dataclass
class MatrixResult:
    """All cells of one matrix run."""

    seed: int
    cells: List[CellResult] = field(default_factory=list)

    def cell(self, protocol: ProtocolName, scenario: str) -> CellResult:
        """Look one cell up."""
        for cell in self.cells:
            if cell.protocol == protocol.value and cell.scenario == scenario:
                return cell
        raise KeyError(f"no cell ({protocol.value}, {scenario})")

    @property
    def failures(self) -> List[CellResult]:
        """Cells that did not satisfy their invariants."""
        return [c for c in self.cells if not c.ok]

    def to_json(self) -> str:
        """Stable JSON rendering (byte-identical across equal-seed runs)."""
        payload = {
            "seed": self.seed,
            "cells": [asdict(c) for c in sorted(
                self.cells, key=lambda c: (c.scenario, c.protocol))],
        }
        return json.dumps(payload, sort_keys=True, indent=2) + "\n"

    def format_grid(self) -> str:
        """Plain-text scenario x protocol grid (only protocols run)."""
        present = {c.protocol for c in self.cells}
        protocols = [p.value for p in ProtocolName if p.value in present]
        scenarios: List[str] = []
        for cell in self.cells:
            if cell.scenario not in scenarios:
                scenarios.append(cell.scenario)
        by_key: Dict[tuple, CellResult] = {
            (c.scenario, c.protocol): c for c in self.cells}
        symbol = {PASS: "ok", FAIL: "FAIL",
                  EXPECTED_VIOLATION: "anarchy", SKIPPED: "-",
                  ERROR: "ERR"}
        width = max(len(s) for s in scenarios) if scenarios else 8
        lines = [" " * width + "  " + "".join(f"{p:>9}" for p in protocols)]
        for scenario in scenarios:
            row = f"{scenario:<{width}}  "
            for protocol in protocols:
                cell = by_key.get((scenario, protocol))
                mark = symbol[cell.status] if cell else "?"
                row += f"{mark:>9}"
            lines.append(row)
        counts: Dict[str, int] = {}
        for cell in self.cells:
            counts[cell.status] = counts.get(cell.status, 0) + 1
        summary = ", ".join(f"{counts[s]} {s}" for s in
                            (PASS, EXPECTED_VIOLATION, FAIL, ERROR, SKIPPED)
                            if s in counts)
        lines.append(summary)
        return "\n".join(lines)


class MatrixRunner:
    """Executes scenario cells deterministically."""

    def __init__(self, seed: int = 0, t: int = 1) -> None:
        self.seed = seed
        self.t = t

    # ------------------------------------------------------------------
    def base_config(self, protocol: ProtocolName,
                    scenario: Scenario) -> ClusterConfig:
        """The cell's cluster configuration.

        A scenario may override ``t`` (e.g. the t=2 cells) through
        ``config_overrides``; the site layout follows the effective ``t``.
        """
        params = dict(CELL_TIMEOUTS)
        params.update(scenario.config_overrides)
        t = params.pop("t", self.t)
        params.setdefault("sites", sites_for(protocol, t))
        return ClusterConfig(t=t, protocol=protocol, **params)

    def run_cell(self, protocol: ProtocolName,
                 scenario: Scenario,
                 probe: Optional[Callable] = None) -> CellResult:
        """Run one cell and grade it.

        ``probe``, if given, is called with the cell's runtime after the
        workload finishes but before grading -- ``repro profile`` uses it
        to collect ``runtime.sim.stats()`` and network counters without
        the runner having to know about profiling.  Probes must not
        mutate the runtime (grading reads it next).
        """
        if not scenario.applies_to(protocol):
            return CellResult(protocol=protocol.value,
                              scenario=scenario.name, status=SKIPPED,
                              seed=self.seed, detail="out of scope")
        config = self.base_config(protocol, scenario)
        assert config.sites is not None
        client_site = config.sites[0]
        latency = LatencyModel.uniform(
            set(config.sites) | {client_site},
            one_way_ms=scenario.one_way_ms, seed=self.seed)
        runtime = build_cluster(config,
                                num_clients=scenario.num_clients,
                                latency=latency, client_site=client_site,
                                seed=self.seed)
        for replica_id, factory in sorted(scenario.adversaries.items()):
            runtime.replica(replica_id).byzantine = factory()

        checker = SafetyChecker(runtime,
                                non_crash_faulty=scenario.adversaries)
        checker.observe_periodically(OBSERVE_PERIOD_MS,
                                     scenario.duration_ms)
        liveness: Optional[LivenessChecker] = None
        if scenario.check_liveness:
            liveness = LivenessChecker(runtime,
                                       bound_ms=scenario.liveness_bound_ms)
            liveness.watch(scenario.duration_ms)
        injector = FaultInjector(runtime)
        injector.arm(scenario.schedule(config))
        driver = make_driver(
            runtime, WorkloadConfig(**scenario.workload_kwargs()))
        driver.run()

        if probe is not None:
            probe(runtime)
        return self._grade(protocol, scenario, runtime, checker, liveness,
                           driver)

    # ------------------------------------------------------------------
    def _grade(self, protocol: ProtocolName, scenario: Scenario, runtime,
               checker: SafetyChecker,
               liveness: Optional[LivenessChecker],
               driver: WorkloadDriver) -> CellResult:
        violations = checker.violations()
        liveness_violations = liveness.violations if liveness else []
        committed = sum(len(c.completions) for c in runtime.clients)
        detection_ok = True
        if scenario.expect_detection:
            # Only XPaxos replicas have a detector; on anything else the
            # expectation is unsatisfiable by definition.
            accused = set(scenario.adversaries)
            detection_ok = bool(accused) and any(
                accused <= getattr(replica, "detected_faulty", set())
                for replica in runtime.replicas
                if replica.replica_id not in accused)
        convicted = sorted({
            accused
            for replica in runtime.replicas
            if replica.replica_id not in scenario.adversaries
            for accused in getattr(replica, "detected_faulty", ())})
        result = CellResult(
            protocol=protocol.value, scenario=scenario.name, status=PASS,
            committed=committed,
            anarchy_observed=checker.anarchy_observed,
            safety_violations=len(violations),
            liveness_violations=len(liveness_violations),
            detection_ok=detection_ok, convicted=convicted, seed=self.seed)

        if scenario.expect_anarchy:
            # Safety is only promised outside anarchy (Definition 3): the
            # cell documents the boundary instead of asserting order.
            if checker.anarchy_observed:
                result.status = EXPECTED_VIOLATION
                result.detail = "anarchy reached as scripted"
            else:
                result.status = FAIL
                result.detail = "scenario never reached anarchy"
            return result

        problems: List[str] = []
        if violations and not checker.anarchy_observed:
            problems.append(
                f"{len(violations)} total-order violations outside anarchy")
        if checker.anarchy_observed:
            problems.append("unexpected anarchy")
        if liveness_violations:
            problems.append(f"{len(liveness_violations)} liveness stalls "
                            f"(first: {liveness_violations[0]})")
        if committed < scenario.min_committed:
            problems.append(f"committed {committed} "
                            f"< floor {scenario.min_committed}")
        if not detection_ok:
            problems.append("adversary never convicted")
        if scenario.convicted is not None \
                and set(convicted) != set(scenario.convicted):
            problems.append(
                f"convicted {convicted} != expected "
                f"{sorted(scenario.convicted)}")
        if problems:
            result.status = FAIL
            result.detail = "; ".join(problems)
        return result

    # ------------------------------------------------------------------
    def run_matrix(
        self,
        scenarios: Optional[Sequence[Scenario]] = None,
        protocols: Optional[Iterable[ProtocolName]] = None,
        jobs: int = 1,
    ) -> MatrixResult:
        """Run every requested cell (default: full library x all five).

        ``jobs > 1`` farms cells to worker processes (``0`` = one per
        core).  Every cell builds its cluster from the same explicit
        seed either way and the results are merged back in canonical
        cell order, so the matrix -- and its JSON rendering -- is
        byte-identical to a ``jobs=1`` run.  A cell whose worker raises
        or dies is recorded with status :data:`ERROR`; the other cells
        are unaffected.
        """
        scenarios = list(scenarios) if scenarios is not None \
            else builtin_scenarios()
        protocols = list(protocols) if protocols is not None \
            else list(ProtocolName)
        tasks = [(self.seed, self.t, protocol, scenario)
                 for scenario in scenarios
                 for protocol in protocols]
        outcomes = parallel_map(_run_cell_task, tasks, jobs=jobs)
        result = MatrixResult(seed=self.seed)
        for (_, _, protocol, scenario), outcome in zip(tasks, outcomes):
            if outcome.ok:
                result.cells.append(outcome.value)
            else:
                result.cells.append(CellResult(
                    protocol=protocol.value, scenario=scenario.name,
                    status=ERROR, seed=self.seed,
                    detail=_error_summary(outcome.error)))
        return result


def _error_summary(trace: Optional[str]) -> str:
    """Last meaningful line of a worker traceback (fits a cell record)."""
    lines = [line.strip() for line in (trace or "").splitlines()
             if line.strip()]
    return lines[-1] if lines else "worker failed without a traceback"


@guard_global_rng
def _run_cell_task(task) -> CellResult:
    """One matrix cell, shaped for :func:`parallel_map`.

    The guard asserts the cell path never draws from the module-level
    ``random`` stream -- forked workers inherit that state, so a global
    draw would break cross-process determinism.
    """
    seed, t, protocol, scenario = task
    return MatrixRunner(seed=seed, t=t).run_cell(protocol, scenario)
