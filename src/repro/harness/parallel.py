"""Process-pool executor layer for embarrassingly parallel harness work.

Scenario-matrix cells and bench-sweep points are deterministic and
independent: each one builds its entire cluster (simulator, network,
replicas, clients, RNG streams) from an explicit seed, never from shared
mutable state.  That makes them safe to farm out to worker processes and
merge back **in canonical task order**, so the merged output of a
``--jobs N`` run is byte-identical to the sequential run.

Contract enforced here:

* **Ordered merge** -- :func:`parallel_map` returns one
  :class:`Outcome` per task, in the exact order the tasks were given,
  regardless of which worker finished first.
* **Crash isolation** -- a task that raises, or whose worker process
  dies outright, fails *only its own* :class:`Outcome` (the error text
  is captured); every other task is unaffected.
* **No pool below 2 jobs** -- ``jobs <= 1`` (or a single task) runs in
  the calling process, so the sequential path stays the reference
  behaviour and never pays fork/pipe overhead.
* **No inherited RNG state** -- workers are forked, so they inherit the
  parent's *global* ``random`` module state at whatever point the fork
  happened.  Any draw from that global stream would make results depend
  on scheduling.  :func:`guard_global_rng` wraps a task function and
  fails it loudly if it advances the global RNG; all harness task
  functions use it, which is what lets every cell derive its randomness
  purely from its own string-derived seed.

The perf micro-benchmarks (``repro bench``) intentionally do **not** use
this layer: the trajectory gate compares same-host speedup *ratios*, and
running both sides of a ratio while sibling workers compete for cores
skews the measurement (see ``docs/parallelism.md``).
"""

from __future__ import annotations

import multiprocessing
import os
import random
import traceback
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

__all__ = ["Outcome", "default_jobs", "guard_global_rng", "parallel_map",
           "resolve_jobs"]


@dataclass
class Outcome:
    """Result of one parallel task (in task order, not finish order)."""

    index: int
    value: Any = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Did the task complete without raising or crashing?"""
        return self.error is None


def default_jobs() -> int:
    """Worker count for ``--jobs 0`` ("use every core")."""
    return os.cpu_count() or 1


def resolve_jobs(jobs: int) -> int:
    """Map a ``--jobs`` flag value to a worker count (0 = all cores)."""
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return default_jobs() if jobs == 0 else jobs


class GlobalRngDrawError(RuntimeError):
    """A task drew from the module-level ``random`` stream.

    Global draws are forbidden on the cell/point path: a forked worker
    inherits the parent's global RNG state, so any such draw would make
    results depend on *when* the fork happened and break the
    byte-identical merge contract.  Use a per-component stream from
    :mod:`repro.common.rng` (or a string-seeded ``random.Random``)
    instead.
    """


def guard_global_rng(fn: Callable[[Any], Any]) -> Callable[[Any], Any]:
    """Wrap ``fn`` so a global-RNG draw during the call fails the task.

    Snapshots the global ``random`` state before the call and verifies
    it is untouched after -- the cheap runtime assertion behind the
    "never inherited global RNG state" rule.  A clean task never reads
    the global stream either, so the guard itself cannot introduce
    divergence between the in-process and worker paths.
    """

    def guarded(task: Any) -> Any:
        state = random.getstate()
        value = fn(task)
        if random.getstate() != state:
            raise GlobalRngDrawError(
                f"task {task!r} advanced the global random stream; "
                "cells/points must draw only from explicitly seeded "
                "repro.common.rng streams")
        return value

    return guarded


# ----------------------------------------------------------------------
def _run_inline(fn: Callable[[Any], Any], index: int, task: Any) -> Outcome:
    try:
        return Outcome(index=index, value=fn(task))
    except Exception:
        return Outcome(index=index, error=traceback.format_exc())


def _inline_map(fn: Callable[[Any], Any],
                tasks: Sequence[Any]) -> List[Outcome]:
    """The ``jobs <= 1`` path: plain sequential execution, no processes."""
    return [_run_inline(fn, index, task)
            for index, task in enumerate(tasks)]


def _child_main(conn, fn: Callable[[Any], Any], index: int,
                task: Any) -> None:
    """Worker body: run one task, ship the Outcome back over the pipe."""
    try:
        outcome = _run_inline(fn, index, task)
        try:
            conn.send(outcome)
        except Exception:
            # The value failed to pickle -- still report *something* so
            # the task fails alone instead of looking like a dead worker.
            conn.send(Outcome(index=index,
                              error="result not picklable:\n"
                                    + traceback.format_exc()))
    finally:
        conn.close()


def _pool_map(fn: Callable[[Any], Any], tasks: Sequence[Any],
              jobs: int) -> List[Outcome]:
    """Farm tasks to forked worker processes, one process per task.

    Fork (not spawn) so task functions may close over live objects --
    scenario schedule factories are plain callables, not picklable
    specs.  One short-lived process per task keeps crash isolation
    absolute: a worker dying mid-cell only EOFs its own pipe.
    """
    ctx = multiprocessing.get_context("fork")
    outcomes: List[Optional[Outcome]] = [None] * len(tasks)
    pending = list(range(len(tasks)))
    live = {}  # parent pipe end -> (process, index)

    def start_one() -> None:
        index = pending.pop(0)
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=_child_main,
                           args=(child_conn, fn, index, tasks[index]),
                           name=f"repro-parallel-{index}")
        proc.start()
        child_conn.close()
        live[parent_conn] = (proc, index)

    while pending or live:
        while pending and len(live) < jobs:
            start_one()
        ready = multiprocessing.connection.wait(list(live))
        for conn in ready:
            proc, index = live.pop(conn)
            try:
                outcome = conn.recv()
            except EOFError:
                proc.join()
                outcome = Outcome(
                    index=index,
                    error=f"worker process died (exit code "
                          f"{proc.exitcode}) before reporting a result")
            else:
                proc.join()
            conn.close()
            outcomes[index] = outcome
    return outcomes  # type: ignore[return-value]


def parallel_map(fn: Callable[[Any], Any], tasks: Sequence[Any],
                 jobs: int = 1) -> List[Outcome]:
    """Run ``fn(task)`` for every task, ``jobs`` at a time.

    Returns one :class:`Outcome` per task **in task order** -- the
    deterministic merge point for ``--jobs N`` runs.  ``jobs <= 1`` or a
    single task short-circuits to the in-process path (no pool is ever
    spawned); ``fork`` must be available for the pooled path, which is
    the case on every platform CI runs on.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(tasks) <= 1:
        return _inline_map(fn, tasks)
    if "fork" not in multiprocessing.get_all_start_methods():
        # No fork (e.g. some exotic host): fall back to the sequential
        # reference path rather than require picklable closures.
        return _inline_map(fn, tasks)
    return _pool_map(fn, tasks, jobs)
