"""Performance micro-benchmark suite (``repro bench``).

Every experiment in this repository funnels through two hot paths: the
discrete-event loop (:mod:`repro.sim.core`) and the message fabric
(:mod:`repro.net.network`).  This module measures both -- event churn with
the cancel-and-reschedule pattern protocols exhibit on every reply, a
point-to-point message storm, an n-way broadcast storm, and one end-to-end
closed-loop XPaxos run -- and writes the results to ``BENCH_perf.json`` so
each PR leaves a perf data point behind.

To make the speedup measurable *within* one checkout, the seed
implementations of the simulator and the network (as of the original
import: ``@dataclass(order=True)`` events, per-send delivery closures,
f-string labels, O(n) ``pending`` scans) are preserved here verbatim as
baselines.  The micro-benchmarks run the same workload against the seed
baseline and the current implementation and report the ratio.

Wall-clock numbers are host-dependent; the committed/delivered counts are
deterministic (same seed, same counts) and double as a regression check
that the optimized paths are observationally identical to the seed.
"""

from __future__ import annotations

import gc
import hashlib
# The heap-churn benchmarks measure the raw event heap against the seed
# implementation by design.  # repro: lint-ok[S002]
import heapq
import json
import os
import platform
import time
from dataclasses import dataclass, field, fields, is_dataclass, replace
from typing import Any, Callable, Dict, List, Optional

from repro.common.config import ProtocolName, WorkloadConfig
from repro.crypto.authenticators import MAC_VECTOR
from repro.crypto.costs import CostModel, CpuMeter
from repro.crypto.primitives import Digest, KeyStore, Mac, Signature, digest_of
from repro.smr.messages import Batch, Request
from repro.harness.configs import paper_config
from repro.harness.runner import ExperimentRunner
from repro.net.bandwidth import BandwidthModel
from repro.net.latency import LatencyModel
from repro.net.network import Endpoint, Network
from repro.sim.core import Simulator

# ----------------------------------------------------------------------
# Seed baselines (the implementation this repo started from), kept so the
# suite can report a speedup on the machine it runs on.
# ----------------------------------------------------------------------


@dataclass(order=True)
class _SeedEvent:
    """The seed's Event: ordered dataclass, no __slots__."""

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)


class _SeedEventHandle:
    __slots__ = ("_event",)

    def __init__(self, event: _SeedEvent):
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True


class SeedSimulator:
    """The seed's event loop: heap of orderable Event objects, lazy
    cancellation without compaction, O(n) ``pending`` scans."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[_SeedEvent] = []
        self._sequence = 0
        self._executed = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def pending(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)

    @property
    def executed(self) -> int:
        return self._executed

    def call_at(self, time: float, callback: Callable[[], None],
                label: str = "") -> _SeedEventHandle:
        event = _SeedEvent(time=time, sequence=self._sequence,
                           callback=callback, label=label)
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return _SeedEventHandle(event)

    def call_after(self, delay: float, callback: Callable[[], None],
                   label: str = "") -> _SeedEventHandle:
        return self.call_at(self._now + delay, callback, label=label)

    def run(self, until: Optional[float] = None) -> int:
        executed = 0
        while self._queue:
            event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and event.time > until:
                break
            heapq.heappop(self._queue)
            self._now = event.time
            self._executed += 1
            executed += 1
            event.callback()
        if until is not None and self._now < until:
            self._now = until
        return executed


class SeedNetwork:
    """The seed's send path: endpoint lookups per message, a delivery
    closure and an f-string label per message, FIFO dict probed always."""

    def __init__(self, sim: SeedSimulator, latency: LatencyModel,
                 bandwidth: Optional[BandwidthModel] = None,
                 fifo: bool = False) -> None:
        self.sim = sim
        self.latency = latency
        self.bandwidth = bandwidth
        self.fifo = fifo
        self.delivered = 0
        self._endpoints: Dict[str, Endpoint] = {}
        self._last_delivery: Dict[tuple, float] = {}

    def attach(self, endpoint: Endpoint) -> None:
        self._endpoints[endpoint.name] = endpoint

    def send(self, src: str, dst: str, payload: Any,
             size_bytes: int = 0) -> None:
        source = self._endpoints[src]
        target = self._endpoints[dst]
        if not source.is_up():
            return
        depart = self.sim.now
        if (self.bandwidth is not None and size_bytes > 0
                and source.site != target.site):
            depart = self.bandwidth.serialize(src, size_bytes, self.sim.now)
        delay = self.latency.sample_one_way(source.site, target.site,
                                            now=depart)
        arrival = depart + delay
        if self.fifo:
            key = (src, dst)
            arrival = max(arrival, self._last_delivery.get(key, 0.0))
            self._last_delivery[key] = arrival

        def deliver() -> None:
            if not target.is_up():
                return
            self.delivered += 1
            target.deliver(src, payload)

        self.sim.call_at(arrival, deliver, label=f"{src}->{dst}")

    def broadcast(self, src: str, dsts: List[str], payload: Any,
                  size_bytes: int = 0) -> None:
        for dst in dsts:
            self.send(src, dst, payload, size_bytes=size_bytes)


# ----------------------------------------------------------------------
# Workloads (run identically against seed and current implementations)
# ----------------------------------------------------------------------

def _churn_workload(sim, num_events: int) -> Dict[str, Any]:
    """The protocol hot pattern: every 'reply' cancels an outstanding
    retransmission timer and re-arms it far in the future."""
    slots = 128
    handles: List[Any] = [None] * slots
    state = {"count": 0}

    def noop() -> None:
        pass

    def pump() -> None:
        count = state["count"] + 1
        state["count"] = count
        slot = count % slots
        handle = handles[slot]
        if handle is not None:
            handle.cancel()
        handles[slot] = sim.call_after(10_000.0, noop, label="retransmit")
        if count < num_events:
            sim.call_after(0.01, pump, label="reply")

    sim.call_after(0.0, pump, label="reply")
    sim.run(until=num_events * 0.01 + 1.0)
    return {"executed": sim.executed, "pending": sim.pending}


def _heap_churn_workload(sim, backlog: int, churn: int) -> Dict[str, Any]:
    """The open-loop Fig 7 ceiling regime: a standing backlog of far-future
    arrivals (10⁶ at full size) sits in the heap while the reply churn
    pattern runs against it, so every push/pop pays the deep heap."""
    def noop() -> None:
        pass

    base = 1_000_000.0
    for i in range(backlog):
        sim.call_at(base + i, noop, label="backlog")

    slots = 128
    handles: List[Any] = [None] * slots
    state = {"count": 0}

    def pump() -> None:
        count = state["count"] + 1
        state["count"] = count
        slot = count % slots
        handle = handles[slot]
        if handle is not None:
            handle.cancel()
        handles[slot] = sim.call_after(10_000.0, noop, label="retransmit")
        if count < churn:
            sim.call_after(0.01, pump, label="reply")

    sim.call_after(0.0, pump, label="reply")
    sim.run(until=churn * 0.01 + 1.0)
    return {"executed": sim.executed, "pending": sim.pending}


def _same_tick_workload(sim, ticks: int, chain: int,
                        backlog: int) -> Dict[str, Any]:
    """Same-tick cascades over a deep heap: each tick fires a chain of
    zero-delay events (the ``call_soon``/parked-flush pump pattern), with
    a far-future backlog keeping the heap deep.  The current simulator
    drains each chain through the FIFO fast lane; the seed pays a
    ``log(backlog)`` heap push and pop per link."""
    def noop() -> None:
        pass

    base = 1_000_000.0
    for i in range(backlog):
        sim.call_at(base + i, noop, label="backlog")

    state = {"tick": 0, "left": 0, "fired": 0}

    def link() -> None:
        state["fired"] += 1
        left = state["left"]
        if left > 0:
            state["left"] = left - 1
            sim.call_at(sim.now, link, label="pump")
        else:
            tick = state["tick"]
            if tick < ticks:
                state["tick"] = tick + 1
                state["left"] = chain
                sim.call_after(0.25, link, label="tick")

    sim.call_after(0.0, link, label="tick")
    sim.run(until=ticks * 0.25 + 1.0)
    return {"executed": sim.executed, "fired": state["fired"],
            "pending": sim.pending}


def _storm_endpoints(network, count: int = 9) -> List[str]:
    sites = ("CA", "VA", "JP")
    sink = {"delivered": 0}

    def make(name: str, site: str) -> Endpoint:
        def deliver(src: str, payload: Any) -> None:
            sink["delivered"] += 1

        return Endpoint(name, site, deliver, lambda: True)

    names = []
    for i in range(count):
        name = f"n{i}"
        network.attach(make(name, sites[i % len(sites)]))
        names.append(name)
    network._bench_sink = sink
    return names


def _storm_workload(sim, network, num_messages: int) -> Dict[str, Any]:
    """Point-to-point storm: every endpoint keeps a message in flight;
    each delivery triggers the next send (closed loop over the fabric)."""
    names = _storm_endpoints(network)
    k = len(names)
    for i in range(num_messages):
        src = names[i % k]
        dst = names[(i * 5 + 1) % k]
        if src == dst:
            dst = names[(i * 5 + 2) % k]
        network.send(src, dst, i, size_bytes=256)
    sim.run()
    # Delivered count is the cross-fabric equivalence check; raw event
    # counts differ by design once the current fabric coalesces same-tick
    # deliveries into shared events.
    return {"delivered": network._bench_sink["delivered"]}


def _broadcast_workload(sim, network, rounds: int) -> Dict[str, Any]:
    """n-way broadcast storm: a leader ships one payload to 8 peers per
    round, the pattern of every ordering protocol's fan-out."""
    names = _storm_endpoints(network)
    leader, peers = names[0], names[1:]
    payload = ("batch", b"x" * 64)
    for _ in range(rounds):
        network.broadcast(leader, peers, payload, size_bytes=1024)
    sim.run()
    return {"delivered": network._bench_sink["delivered"]}


def _auth_endpoints(network, keystore, count: int = 9):
    """Endpoints that verify their channel authenticator on delivery --
    transport-stamped MACs on the current fabric, payload-embedded
    ``(body, mac)`` pairs on the seed fabric."""
    sites = ("CA", "VA", "JP")
    sink = {"delivered": 0, "verified": 0}
    cpu = CpuMeter(CostModel.free())

    def make(name: str, site: str) -> Endpoint:
        def deliver(src, payload):  # seed style: mac embedded in payload
            sink["delivered"] += 1
            body, mac = payload
            if mac.receiver == name and keystore.verify_mac(mac, body):
                sink["verified"] += 1

        def deliver_auth(src, body, auth, size_bytes):
            sink["delivered"] += 1
            if MAC_VECTOR.verify(keystore, cpu, src, name, body, auth,
                                 size_bytes=size_bytes,
                                 body_digest=network.delivery_digest):
                sink["verified"] += 1

        return Endpoint(name, site, deliver, lambda: True,
                        deliver_auth=deliver_auth)

    names = []
    for i in range(count):
        name = f"n{i}"
        network.attach(make(name, sites[i % len(sites)]))
        names.append(name)
    network._bench_sink = sink
    return names


def _auth_broadcast_current(sim, network, rounds, keystore):
    """Transport-level MAC vector: one payload digest per fan-out, the
    per-receiver MAC stamped at delivery fan-out time by multicast."""
    names = _auth_endpoints(network, keystore)
    leader, peers = names[0], names[1:]
    payload = ("batch", b"x" * 64)
    for _ in range(rounds):
        network.multicast_authenticated(leader, peers, payload,
                                        size_bytes=1004,
                                        authenticator=MAC_VECTOR,
                                        keystore=keystore)
    sim.run()
    sink = network._bench_sink
    return {"delivered": sink["delivered"], "verified": sink["verified"]}


def _auth_broadcast_seed(sim, network, rounds, keystore):
    """The embedded-MAC encoding this repo started from: every receiver
    needs a distinct payload object, so the fan-out degenerates into n
    sequential sends, each hashing the payload afresh for its MAC."""
    names = _auth_endpoints(network, keystore)
    leader, peers = names[0], names[1:]
    body = ("batch", b"x" * 64)
    for _ in range(rounds):
        for dst in peers:
            mac = keystore.mac(leader, dst, body)
            network.send(leader, dst, (body, mac), size_bytes=1024)
    sim.run()
    sink = network._bench_sink
    return {"delivered": sink["delivered"], "verified": sink["verified"]}


# ----------------------------------------------------------------------
# Timing helpers
# ----------------------------------------------------------------------

def _best_of(repeat: int, thunk: Callable[[], Dict[str, Any]]):
    """Run ``thunk`` ``repeat`` times; return (best seconds, last result).

    Each timed run starts from a collected heap: earlier benchmarks in
    the suite (notably the 10^6-object heap-churn workload) otherwise
    leave garbage whose GC traversal lands inside *this* benchmark's
    window, skewing the gated current/seed ratio run-to-run.  The
    collection applies identically to both sides of every comparison.
    """
    best = float("inf")
    result: Dict[str, Any] = {}
    for _ in range(max(1, repeat)):
        gc.collect()
        start = time.perf_counter()
        result = thunk()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best, result


def _compare(current: Callable[[], Dict[str, Any]],
             baseline: Callable[[], Dict[str, Any]], units: int,
             repeat: int) -> Dict[str, Any]:
    """Time both sides interleaved (current, seed, current, seed, ...).

    The gated quantity is the *ratio* of the two minima.  Timing all
    current runs then all seed runs lets a host-frequency drift (turbo
    decay, a background task) land entirely on one side and swing the
    ratio by 20%+; alternating the sides makes any slow window hit both
    minima alike, so the ratio stays stable even when wall-clock moves.
    """
    cur_s = base_s = float("inf")
    cur_r: Dict[str, Any] = {}
    base_r: Dict[str, Any] = {}
    for _ in range(max(1, repeat)):
        gc.collect()
        start = time.perf_counter()
        cur_r = current()
        elapsed = time.perf_counter() - start
        if elapsed < cur_s:
            cur_s = elapsed
        gc.collect()
        start = time.perf_counter()
        base_r = baseline()
        elapsed = time.perf_counter() - start
        if elapsed < base_s:
            base_s = elapsed
    return {
        "units": units,
        "seconds": cur_s,
        "baseline_seconds": base_s,
        "units_per_sec": units / cur_s if cur_s > 0 else float("inf"),
        "baseline_units_per_sec": (units / base_s if base_s > 0
                                   else float("inf")),
        "speedup": base_s / cur_s if cur_s > 0 else float("inf"),
        "result": cur_r,
        "baseline_result": base_r,
        "results_match": cur_r == base_r,
    }


# ----------------------------------------------------------------------
# The suite
# ----------------------------------------------------------------------

def bench_event_churn(num_events: int = 200_000,
                      repeat: int = 3) -> Dict[str, Any]:
    """Cancel-and-reschedule event churn, seed vs current simulator."""
    return _compare(
        lambda: _churn_workload(Simulator(), num_events),
        lambda: _churn_workload(SeedSimulator(), num_events),
        num_events, repeat)


def bench_heap_churn_1m(backlog: int = 1_000_000, churn: int = 100_000,
                        repeat: int = 3) -> Dict[str, Any]:
    """Reply churn against a 10⁶-entry standing backlog, seed vs current.

    Isolates pure heap cost at depth: the adaptive event pool and the
    compaction policy must hold up when every push and pop traverses a
    twenty-level heap.
    """
    return _compare(
        lambda: _heap_churn_workload(Simulator(), backlog, churn),
        lambda: _heap_churn_workload(SeedSimulator(), backlog, churn),
        backlog + churn, repeat)


def bench_same_tick_drain(ticks: int = 2_000, chain: int = 50,
                          backlog: int = 200_000,
                          repeat: int = 3) -> Dict[str, Any]:
    """Zero-delay cascades over a deep heap, seed vs current.

    The batch-drain lane's home turf: the current simulator routes each
    ``call_at(now, ...)`` link through the same-tick FIFO, paying zero
    heap operations per link; the seed pays ``2 log(backlog)`` heap moves
    for every one.
    """
    return _compare(
        lambda: _same_tick_workload(Simulator(), ticks, chain, backlog),
        lambda: _same_tick_workload(SeedSimulator(), ticks, chain, backlog),
        ticks * chain, repeat)


def _current_net(seed: int):
    sim = Simulator()
    latency = LatencyModel.ec2(seed=seed)
    net = Network(sim, latency, bandwidth=BandwidthModel())
    return sim, net


def _seed_net(seed: int):
    sim = SeedSimulator()
    latency = LatencyModel.ec2(seed=seed)
    net = SeedNetwork(sim, latency, bandwidth=BandwidthModel())
    return sim, net


def bench_message_storm(num_messages: int = 100_000, seed: int = 0,
                        repeat: int = 3) -> Dict[str, Any]:
    """Point-to-point message storm, seed vs current fabric.

    Both fabrics draw latency samples in the same RNG order, so delivered
    counts must match exactly -- a determinism check riding the benchmark.
    """

    def current() -> Dict[str, Any]:
        sim, net = _current_net(seed)
        return _storm_workload(sim, net, num_messages)

    def baseline() -> Dict[str, Any]:
        sim, net = _seed_net(seed)
        return _storm_workload(sim, net, num_messages)

    return _compare(current, baseline, num_messages, repeat)


def bench_broadcast_storm(rounds: int = 12_500, seed: int = 0,
                          repeat: int = 3) -> Dict[str, Any]:
    """n-way broadcast storm: multicast path vs seed per-destination loop."""

    def current() -> Dict[str, Any]:
        sim, net = _current_net(seed)
        return _broadcast_workload(sim, net, rounds)

    def baseline() -> Dict[str, Any]:
        sim, net = _seed_net(seed)
        return _broadcast_workload(sim, net, rounds)

    return _compare(current, baseline, rounds * 8, repeat)


def bench_authenticated_broadcast(rounds: int = 4_000, seed: int = 0,
                                  repeat: int = 3) -> Dict[str, Any]:
    """MAC'd 8-way fan-out: delivery-time MAC vector on the multicast
    path vs the seed's payload-embedded MACs over sequential sends.

    Every delivery verifies its MAC on both sides, and both fabrics draw
    latency in the same order, so delivered/verified counts must match
    exactly -- the forgery-detection semantics ride the benchmark.
    """

    def current() -> Dict[str, Any]:
        sim, net = _current_net(seed)
        return _auth_broadcast_current(sim, net, rounds, KeyStore())

    def baseline() -> Dict[str, Any]:
        sim, net = _seed_net(seed)
        return _auth_broadcast_seed(sim, net, rounds, KeyStore())

    return _compare(current, baseline, rounds * 8, repeat)


# ----------------------------------------------------------------------
# Digest-cache micro-benchmark (seed encoder preserved verbatim)
# ----------------------------------------------------------------------

def _seed_canonical(obj: Any) -> bytes:
    """The seed's canonical encoder, preserved verbatim as the baseline
    for :func:`bench_digest_cache`: one generic isinstance chain, no
    exact-type fast path, byte-identical output to the current encoder."""
    if obj is None:
        return b"N"
    if isinstance(obj, bool):
        return b"T" if obj else b"F"
    if isinstance(obj, int):
        return b"i" + str(obj).encode()
    if isinstance(obj, float):
        return b"f" + repr(obj).encode()
    if isinstance(obj, str):
        data = obj.encode()
        return b"s" + str(len(data)).encode() + b":" + data
    if isinstance(obj, bytes):
        return b"b" + str(len(obj)).encode() + b":" + obj
    if isinstance(obj, Digest):
        return b"D" + obj.value
    if isinstance(obj, Signature):
        return b"S" + _seed_canonical((obj.signer, obj.digest.value))
    if isinstance(obj, Mac):
        return b"M" + _seed_canonical((obj.sender, obj.receiver,
                                       obj.digest.value))
    if isinstance(obj, (tuple, list)):
        parts = b"".join(_seed_canonical(x) for x in obj)
        return b"l" + str(len(obj)).encode() + b":" + parts
    if isinstance(obj, dict):
        items = sorted(obj.items(), key=lambda kv: _seed_canonical(kv[0]))
        parts = b"".join(_seed_canonical(k) + _seed_canonical(v)
                         for k, v in items)
        return b"d" + str(len(obj)).encode() + b":" + parts
    if is_dataclass(obj) and not isinstance(obj, type):
        parts = [type(obj).__name__.encode()]
        for f in fields(obj):
            parts.append(_seed_canonical(f.name))
            parts.append(_seed_canonical(getattr(obj, f.name)))
        return b"c" + b"".join(parts)
    raise TypeError(f"cannot canonically encode {type(obj).__name__}")


def _seed_digest_of(obj: Any) -> Digest:
    """The seed's ``digest_of``: always re-encode, never memoize."""
    return Digest(hashlib.sha256(_seed_canonical(obj)).digest())


def _digest_cache_workload(digest_fn: Callable[[Any], Digest],
                           count: int, fanout: int) -> Dict[str, Any]:
    """Digest ``count`` fresh wire batches ``fanout`` times each.

    The re-digest pattern of every ordering protocol: the leader hashes
    a batch once to stamp it, then each of ``fanout - 1`` receivers
    hashes the same (shared, in-process) object to verify.  Batches are
    built inside the timed region so the cached side starts cold; the
    rolling checksum over every returned digest is the equivalence
    check between the cached and seed implementations.
    """
    checksum = hashlib.sha256()
    update = checksum.update
    for i in range(count):
        batch = Batch(tuple(
            Request(op=("put", f"key-{i}-{j}", b"v" * 24),
                    timestamp=i * 4 + j, client=j, size_bytes=64)
            for j in range(4)))
        for _ in range(fanout):
            update(digest_fn(batch).value)
    return {"digests": count * fanout, "checksum": checksum.hexdigest()}


def bench_digest_cache(count: int = 3_000, fanout: int = 9,
                       repeat: int = 3) -> Dict[str, Any]:
    """Per-message digest cache + fast canonical encoding vs the seed
    encoder, on the protocol re-digest pattern (stamp once, verify
    ``fanout - 1`` times).  Byte-identical digests are asserted via the
    rolling checksum in ``results_match``."""
    return _compare(
        lambda: _digest_cache_workload(digest_of, count, fanout),
        lambda: _digest_cache_workload(_seed_digest_of, count, fanout),
        count * fanout, repeat)


def bench_xpaxos_closed_loop(num_clients: int = 16,
                             duration_ms: float = 2_000.0,
                             seed: int = 0) -> Dict[str, Any]:
    """End-to-end closed-loop XPaxos run on the paper's WAN, run twice to
    confirm determinism (same seed, same committed count)."""
    config = paper_config(ProtocolName.XPAXOS, t=1,
                          request_retransmit_ms=20_000.0,
                          view_change_timeout_ms=10_000.0)
    workload = WorkloadConfig(num_clients=num_clients, request_size=1024,
                              duration_ms=duration_ms,
                              warmup_ms=min(500.0, duration_ms / 4),
                              client_site="CA")

    def run_once() -> Dict[str, Any]:
        runner = ExperimentRunner(
            latency_factory=lambda s: LatencyModel.ec2(seed=s),
            bandwidth_factory=lambda: BandwidthModel(default_rate=4_000.0),
            cost_model=CostModel(),
            seed=seed,
        )
        result = runner.run_point(config, workload)
        return {"committed": result.committed,
                "throughput_kops": result.throughput_kops}

    start = time.perf_counter()
    first = run_once()
    elapsed = time.perf_counter() - start
    second = run_once()
    return {
        "units": first["committed"],
        "seconds": elapsed,
        "committed": first["committed"],
        "throughput_kops": first["throughput_kops"],
        "virtual_ms": duration_ms,
        "commits_per_wall_sec": (first["committed"] / elapsed
                                 if elapsed > 0 else float("inf")),
        "deterministic": first == second,
    }


def _make_runner(seed: int) -> ExperimentRunner:
    return ExperimentRunner(
        latency_factory=lambda s: LatencyModel.ec2(seed=s),
        bandwidth_factory=lambda: BandwidthModel(default_rate=4_000.0),
        cost_model=CostModel(),
        seed=seed,
    )


def bench_pipelined_throughput(duration_ms: float = 2_000.0,
                               seed: int = 0) -> Dict[str, Any]:
    """Pipelining speedup: saturating open-loop XPaxos run at
    ``pipeline_depth=8`` (current) vs ``pipeline_depth=1`` (baseline).

    The offered load is far past either configuration's capacity, so each
    run measures its pipeline's actual ceiling; the gated ``speedup`` is
    the committed-count ratio over identical virtual time -- a
    deterministic quantity, immune to wall-clock noise.
    """
    workload = WorkloadConfig(num_clients=200, request_size=1024,
                              duration_ms=duration_ms,
                              warmup_ms=min(500.0, duration_ms / 4),
                              client_site="CA",
                              offered_load_rps=10_000.0, cohorts=4)

    def run_depth(depth: int) -> Dict[str, Any]:
        config = paper_config(ProtocolName.XPAXOS, t=1,
                              request_retransmit_ms=20_000.0,
                              view_change_timeout_ms=10_000.0,
                              pipeline_depth=depth)
        result = _make_runner(seed).run_point(config, workload)
        return {"committed": result.committed,
                "throughput_kops": result.throughput_kops}

    start = time.perf_counter()
    deep = run_depth(8)
    elapsed = time.perf_counter() - start
    base_start = time.perf_counter()
    shallow = run_depth(1)
    baseline_seconds = time.perf_counter() - base_start
    speedup = (deep["committed"] / shallow["committed"]
               if shallow["committed"] else float("inf"))
    return {
        "units": deep["committed"],
        "seconds": elapsed,
        "baseline_seconds": baseline_seconds,
        "speedup": speedup,
        "committed_depth8": deep["committed"],
        "committed_depth1": shallow["committed"],
        "throughput_kops": deep["throughput_kops"],
        "virtual_ms": duration_ms,
        "results_match": 0 < shallow["committed"] <= deep["committed"],
    }


def bench_cohort_driver(num_clients: int = 16,
                        duration_ms: float = 2_000.0,
                        seed: int = 0) -> Dict[str, Any]:
    """Open-loop / closed-loop equivalence check.

    Runs the closed loop, re-runs open-loop with the achieved throughput
    as the offered rate, and reports whether both models agree (within
    25%) on delivered throughput -- at matched load below saturation the
    two must measure the same protocol.  Run twice for determinism.
    """
    config = paper_config(ProtocolName.XPAXOS, t=1,
                          request_retransmit_ms=20_000.0,
                          view_change_timeout_ms=10_000.0)
    closed_workload = WorkloadConfig(
        num_clients=num_clients, request_size=1024,
        duration_ms=duration_ms,
        warmup_ms=min(500.0, duration_ms / 4), client_site="CA")

    def run_pair() -> Dict[str, Any]:
        closed = _make_runner(seed).run_point(config, closed_workload)
        rate_rps = closed.throughput_kops * 1_000.0
        open_workload = replace(closed_workload,
                                offered_load_rps=max(rate_rps, 1.0),
                                cohorts=4)
        open_result = _make_runner(seed).run_point(config, open_workload)
        return {"closed_committed": closed.committed,
                "open_committed": open_result.committed,
                "closed_kops": closed.throughput_kops,
                "open_kops": open_result.throughput_kops}

    start = time.perf_counter()
    first = run_pair()
    elapsed = time.perf_counter() - start
    second = run_pair()
    # 25% relative, with an absolute slack of a few commits: probe-sized
    # runs commit so few requests that Poisson arrival granularity alone
    # can exceed any relative bound.
    agreement = (first["closed_kops"] > 0
                 and (abs(first["open_kops"] - first["closed_kops"])
                      <= 0.25 * first["closed_kops"]
                      or abs(first["open_committed"]
                             - first["closed_committed"]) <= 5))
    return {
        "units": first["open_committed"],
        "seconds": elapsed,
        "closed_committed": first["closed_committed"],
        "open_committed": first["open_committed"],
        "closed_kops": first["closed_kops"],
        "open_kops": first["open_kops"],
        "virtual_ms": duration_ms,
        "agreement": agreement,
        "deterministic": first == second and agreement,
    }


def suite_benchmarks(events: int = 200_000, messages: int = 100_000,
                     broadcast_rounds: int = 12_500, clients: int = 16,
                     duration_ms: float = 2_000.0, seed: int = 0,
                     repeat: int = 3, heap_backlog: int = 1_000_000,
                     heap_churn: int = 100_000,
                     same_tick_ticks: int = 2_000,
                     ) -> Dict[str, Callable[[], Dict[str, Any]]]:
    """The suite registry: benchmark name -> ready-to-run thunk.

    Single source of truth for what ``repro bench`` runs, what ``--only``
    accepts, and what the CI lint stage checks ``bench_*`` functions
    against.  Keys are the function names minus the ``bench_`` prefix.
    """
    return {
        "event_churn": lambda: bench_event_churn(events, repeat=repeat),
        "heap_churn_1m": lambda: bench_heap_churn_1m(
            heap_backlog, heap_churn, repeat=repeat),
        "same_tick_drain": lambda: bench_same_tick_drain(
            same_tick_ticks, repeat=repeat),
        "message_storm": lambda: bench_message_storm(
            messages, seed=seed, repeat=repeat),
        "broadcast_storm": lambda: bench_broadcast_storm(
            broadcast_rounds, seed=seed, repeat=repeat),
        "authenticated_broadcast": lambda: bench_authenticated_broadcast(
            max(1, broadcast_rounds // 3), seed=seed, repeat=repeat),
        "digest_cache": lambda: bench_digest_cache(repeat=repeat),
        "xpaxos_closed_loop": lambda: bench_xpaxos_closed_loop(
            clients, duration_ms, seed=seed),
        "pipelined_throughput": lambda: bench_pipelined_throughput(
            duration_ms, seed=seed),
        "cohort_driver": lambda: bench_cohort_driver(
            clients, duration_ms, seed=seed),
    }


def unregistered_benchmarks() -> List[str]:
    """``bench_*`` functions in this module that :func:`suite_benchmarks`
    does not run.  The CI lint stage fails if any exist: a benchmark that
    is not in the suite never reaches the trajectory gate, so a perf
    regression in it would go unnoticed."""
    registered = set(suite_benchmarks())
    return sorted(
        name for name, value in globals().items()
        if name.startswith("bench_") and callable(value)
        and name[len("bench_"):] not in registered)


def _host_facts() -> Dict[str, Any]:
    """Host facts for perf-gate triage, recorded into every payload (and
    therefore every archived trajectory point): a tripped gate whose
    point shows a loaded or smaller host is contention, not a
    regression (docs/parallelism.md)."""
    facts: Dict[str, Any] = {"nproc": os.cpu_count()}
    try:
        facts["loadavg"] = [round(x, 2) for x in os.getloadavg()]
    except (AttributeError, OSError):  # platforms without getloadavg
        facts["loadavg"] = None
    model = None
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.lower().startswith("model name"):
                    model = line.split(":", 1)[1].strip()
                    break
    except OSError:  # no procfs (macOS, Windows)
        pass
    facts["cpu_model"] = model
    return facts


def run_suite(events: int = 200_000, messages: int = 100_000,
              broadcast_rounds: int = 12_500, clients: int = 16,
              duration_ms: float = 2_000.0, seed: int = 0,
              repeat: int = 3, heap_backlog: int = 1_000_000,
              heap_churn: int = 100_000, same_tick_ticks: int = 2_000,
              only: Optional[List[str]] = None) -> Dict[str, Any]:
    """Run the suite; returns the ``BENCH_perf.json`` payload.

    ``only`` restricts the run to the named benchmarks (triage mode --
    the trajectory gate treats such partial payloads as subsets, they
    must not be recorded as history points).
    """
    benchmarks = suite_benchmarks(
        events=events, messages=messages,
        broadcast_rounds=broadcast_rounds, clients=clients,
        duration_ms=duration_ms, seed=seed, repeat=repeat,
        heap_backlog=heap_backlog, heap_churn=heap_churn,
        same_tick_ticks=same_tick_ticks)
    if only:
        unknown = sorted(set(only) - set(benchmarks))
        if unknown:
            raise ValueError(
                f"unknown benchmark(s): {', '.join(unknown)}; "
                f"known: {', '.join(benchmarks)}")
        wanted = set(only)
        benchmarks = {name: thunk for name, thunk in benchmarks.items()
                      if name in wanted}
    return {
        "schema": 1,
        "suite": "perf",
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            **_host_facts(),
        },
        "params": {
            "events": events, "messages": messages,
            "broadcast_rounds": broadcast_rounds, "clients": clients,
            "duration_ms": duration_ms, "seed": seed, "repeat": repeat,
            "heap_backlog": heap_backlog, "heap_churn": heap_churn,
            "same_tick_ticks": same_tick_ticks,
            "only": sorted(only) if only else None,
        },
        "benchmarks": {name: thunk() for name, thunk in benchmarks.items()},
    }


def format_suite(payload: Dict[str, Any]) -> str:
    """Plain-text rendering of a suite result."""
    lines = [f"{'benchmark':>20} {'units':>10} {'sec':>8} {'base sec':>9} "
             f"{'speedup':>8} {'match':>6}"]
    for name, bench in payload["benchmarks"].items():
        if "speedup" in bench:
            lines.append(
                f"{name:>20} {bench['units']:>10} {bench['seconds']:8.3f} "
                f"{bench['baseline_seconds']:9.3f} "
                f"{bench['speedup']:7.2f}x "
                f"{'yes' if bench['results_match'] else 'NO':>6}")
        else:
            det = "yes" if bench.get("deterministic") else "NO"
            lines.append(
                f"{name:>20} {bench['units']:>10} {bench['seconds']:8.3f} "
                f"{'':>9} {'':>8} {det:>6}")
    return "\n".join(lines)


def write_suite(payload: Dict[str, Any], path: str) -> None:
    """Write the suite result to ``path`` as JSON."""
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
