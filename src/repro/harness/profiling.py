"""First-class profiling for the hot paths (``repro bench --profile``,
``repro profile``).

Two complementary views of where time goes:

* **cProfile/pstats** -- wall-clock attribution by function, for finding
  the next thing to optimize.  :func:`profile_call` wraps any thunk;
  the stats can be dumped to a ``.pstats`` file (loadable with
  ``python -m pstats`` or snakeviz) and/or rendered with
  :func:`format_stats`.
* **Subsystem counters** -- the simulator's and network's own hot-loop
  counters (heap ops, fast-lane traffic, pool hit-rate, compactions,
  coalesced deliveries, MAC stamps/verifies), collected for free as the
  run executes.  :func:`format_subsystems` renders them side by side;
  ``docs/profiling.md`` explains how to read them.

The two disagree on purpose: cProfile says where *wall time* went under
instrumentation overhead; the counters say what the hot loops *did*.
Regressions usually show in the counters first (fast-lane fraction
drops, pool hit-rate collapses) before they are big enough to see in a
profile.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from dataclasses import asdict, is_dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.crypto.primitives import digest_cache_stats

#: Default number of rows shown by :func:`format_stats`.
DEFAULT_LIMIT = 25


def profile_call(thunk: Callable[[], Any]) -> Tuple[Any, cProfile.Profile]:
    """Run ``thunk`` under cProfile; returns ``(result, profiler)``.

    The profiler is disabled (but not consumed) on return, even if the
    thunk raises, so a failing run still leaves usable stats behind.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = thunk()
    finally:
        profiler.disable()
    return result, profiler


def dump_stats(profiler: cProfile.Profile, path: str) -> None:
    """Write the raw profile to ``path`` (pstats format).

    The file round-trips through ``pstats.Stats(path)``,
    ``python -m pstats``, snakeviz, gprof2dot, etc.
    """
    profiler.dump_stats(path)


def format_stats(profiler: cProfile.Profile, sort: str = "cumulative",
                 limit: int = DEFAULT_LIMIT) -> str:
    """Top-``limit`` rows of the profile, sorted by ``sort``
    (any pstats sort key: ``cumulative``, ``tottime``, ``ncalls``...).
    """
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats(sort).print_stats(limit)
    return stream.getvalue().rstrip()


def subsystem_counters(sim: Any = None,
                       network: Any = None) -> Dict[str, Dict[str, Any]]:
    """Collect the per-subsystem hot-loop counters of one run.

    ``sim`` is a :class:`repro.sim.core.Simulator` (its ``stats()``
    dict is taken as-is); ``network`` is a
    :class:`repro.net.network.Network` (its ``stats`` dataclass is
    flattened).  Either may be None.
    """
    out: Dict[str, Dict[str, Any]] = {}
    if sim is not None:
        out["sim"] = sim.stats()
    if network is not None:
        stats = network.stats
        out["network"] = (asdict(stats) if is_dataclass(stats)
                         else dict(vars(stats)))
    # Digest-cache counters are process-global (the cache lives on the
    # message instances, not on a sim or network), so they are always
    # reported; probes = every digest_of() call in the process.
    cache = dict(digest_cache_stats())
    probes = cache["hits"] + cache["stores"] + cache["uncached"]
    cache["hit_rate"] = cache["hits"] / probes if probes else 0.0
    out["digest_cache"] = cache
    return out


def format_subsystems(counters: Dict[str, Dict[str, Any]]) -> str:
    """Render :func:`subsystem_counters` output as an aligned table."""
    lines = []
    for subsystem, values in counters.items():
        lines.append(f"[{subsystem}]")
        width = max((len(k) for k in values), default=0)
        for key, value in values.items():
            if isinstance(value, float):
                rendered = f"{value:.4f}" if 0 < abs(value) < 1_000 \
                    else f"{value:.1f}"
            else:
                rendered = str(value)
            lines.append(f"  {key:<{width}}  {rendered}")
    return "\n".join(lines)


def profile_report(profiler: cProfile.Profile,
                   counters: Optional[Dict[str, Dict[str, Any]]] = None,
                   sort: str = "cumulative",
                   limit: int = DEFAULT_LIMIT) -> str:
    """The combined report ``repro profile`` prints: subsystem counters
    first (what the hot loops did), then the top of the wall-clock
    profile (where the time went)."""
    parts = []
    if counters:
        parts.append(format_subsystems(counters))
    parts.append(format_stats(profiler, sort=sort, limit=limit))
    return "\n\n".join(parts)
