"""Experiment runner: one run = (protocol, deployment, workload) -> metrics.

``ExperimentRunner.run_point`` executes a single closed-loop benchmark and
returns an :class:`ExperimentResult`; ``sweep_clients`` regenerates a
latency-vs-throughput curve by increasing the number of closed-loop clients,
exactly how the paper's Figures 7 and 10 are produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.common.config import ClusterConfig, ProtocolName, WorkloadConfig
from repro.crypto.costs import CostModel
from repro.harness.parallel import guard_global_rng, parallel_map
from repro.net.bandwidth import BandwidthModel
from repro.net.latency import LatencyModel
from repro.protocols.registry import build_cluster
from repro.sim.core import Simulator
from repro.smr.app import StateMachine
from repro.smr.runtime import ClusterRuntime
from repro.workloads.clients import make_driver


@dataclass
class ExperimentResult:
    """Metrics of one benchmark run."""

    protocol: str
    num_clients: int
    throughput_kops: float
    mean_latency_ms: Optional[float]
    p95_latency_ms: Optional[float]
    committed: int
    cpu_percent_most_loaded: float
    cpu_by_replica: Dict[int, float] = field(default_factory=dict)
    timeouts: int = 0
    #: Open-loop runs only: measured arrival rate and saturation marker.
    offered_load_kops: Optional[float] = None
    saturated: bool = False
    #: Open-loop runs only: commits whose latency sample had to be
    #: dropped because no arrival stamp matched (duplicate/late commits
    #: after a retransmit).  Nonzero values mean the latency summary
    #: undercounts; they should stay rare.
    dropped_samples: int = 0

    def __str__(self) -> str:
        lat = (f"{self.mean_latency_ms:.1f}"
               if self.mean_latency_ms is not None else "n/a")
        return (f"{self.protocol:>8} clients={self.num_clients:>4} "
                f"tput={self.throughput_kops:7.3f} kops/s "
                f"lat={lat:>8} ms cpu={self.cpu_percent_most_loaded:6.1f}%")


@dataclass
class SweepPoint:
    """One point of a latency-vs-throughput curve."""

    num_clients: int
    result: ExperimentResult


class ExperimentRunner:
    """Builds clusters and runs closed-loop benchmarks on them."""

    def __init__(
        self,
        latency_factory: Optional[Callable[[int], LatencyModel]] = None,
        bandwidth_factory: Optional[Callable[[], BandwidthModel]] = None,
        cost_model: Optional[CostModel] = None,
        app_factory: Optional[Callable[[], StateMachine]] = None,
        seed: int = 0,
    ) -> None:
        self.latency_factory = latency_factory or (
            lambda seed: LatencyModel.ec2(seed=seed))
        self.bandwidth_factory = bandwidth_factory or BandwidthModel
        self.cost_model = cost_model or CostModel()
        self.app_factory = app_factory
        self.seed = seed

    # ------------------------------------------------------------------
    def build(self, config: ClusterConfig,
              workload: WorkloadConfig) -> ClusterRuntime:
        """Assemble a cluster for one run."""
        return build_cluster(
            config,
            num_clients=workload.num_clients,
            app_factory=self.app_factory,
            latency=self.latency_factory(self.seed + workload.seed),
            bandwidth=self.bandwidth_factory(),
            cost_model=self.cost_model,
            client_site=workload.client_site,
            seed=self.seed + workload.seed,
        )

    def run_point(self, config: ClusterConfig,
                  workload: WorkloadConfig) -> ExperimentResult:
        """Run one benchmark (closed or open loop) and collect metrics."""
        runtime = self.build(config, workload)
        driver = make_driver(runtime, workload)
        # Snapshot each replica's CPU busy time when warmup ends, so CPU is
        # reported over the same measured window as throughput and latency
        # (keeps the Figure 8 comparison apples-to-apples).
        busy_at_warmup: Dict[int, float] = {}
        runtime.sim.call_at(
            workload.warmup_ms,
            lambda: busy_at_warmup.update(
                (r.replica_id, r.cpu.busy_us) for r in runtime.replicas),
            label="cpu-warmup-mark")
        driver.run()
        summary = driver.latency.summary()
        measured_ms = workload.duration_ms - workload.warmup_ms
        cpu_by_replica = {
            r.replica_id: r.cpu.utilisation_percent(
                measured_ms,
                busy_since_us=busy_at_warmup.get(r.replica_id, 0.0))
            for r in runtime.replicas
        }
        most_loaded = max(cpu_by_replica.values()) if cpu_by_replica else 0.0
        timeouts = sum(getattr(c, "timeouts", 0) for c in runtime.clients)
        return ExperimentResult(
            protocol=config.protocol.value,
            num_clients=workload.num_clients,
            throughput_kops=driver.mean_throughput_kops(),
            mean_latency_ms=summary.mean if summary else None,
            p95_latency_ms=summary.p95 if summary else None,
            committed=driver.throughput.total,
            cpu_percent_most_loaded=most_loaded,
            cpu_by_replica=cpu_by_replica,
            timeouts=timeouts,
            offered_load_kops=(driver.offered_load_kops()
                               if workload.open_loop else None),
            saturated=getattr(driver, "saturated", False),
            dropped_samples=getattr(driver, "dropped_samples", 0),
        )

    def run_points(
        self,
        config: ClusterConfig,
        workloads: Sequence[WorkloadConfig],
        jobs: int = 1,
    ) -> List[ExperimentResult]:
        """One :meth:`run_point` per workload, ``jobs`` at a time.

        Every point builds its own cluster from explicit seeds, so
        points can run in worker processes; results come back in
        workload order and are identical to a sequential run.  A point
        that fails raises (a sweep with a hole is not a curve), naming
        the failed point.
        """
        outcomes = parallel_map(
            _run_point_task,
            [(self, config, workload) for workload in workloads],
            jobs=jobs)
        results = []
        for workload, outcome in zip(workloads, outcomes):
            if not outcome.ok:
                raise RuntimeError(
                    f"sweep point (clients={workload.num_clients}, "
                    f"rate={workload.offered_load_rps}) failed:\n"
                    f"{outcome.error}")
            results.append(outcome.value)
        return results

    def sweep_clients(
        self,
        config: ClusterConfig,
        client_counts: Sequence[int],
        base_workload: WorkloadConfig,
        jobs: int = 1,
    ) -> List[SweepPoint]:
        """Latency-vs-throughput curve: one run per client count."""
        # dataclasses.replace keeps every other workload field intact,
        # so fields added to WorkloadConfig later are never silently
        # dropped from sweeps.
        workloads = [replace(base_workload, num_clients=count,
                             seed=base_workload.seed + count)
                     for count in client_counts]
        results = self.run_points(config, workloads, jobs=jobs)
        return [SweepPoint(count, result)
                for count, result in zip(client_counts, results)]

    def sweep_offered_load(
        self,
        config: ClusterConfig,
        offered_rps: Sequence[float],
        base_workload: WorkloadConfig,
        jobs: int = 1,
    ) -> List[SweepPoint]:
        """Open-loop throughput curve: one run per offered arrival rate.

        The client count stays fixed (it sizes the channel pool); the
        x-axis is the offered load, which -- unlike closed-loop client
        counts -- can be pushed orders of magnitude past the protocol's
        capacity to expose the throughput plateau.
        """
        # Unlike sweep_clients, the seed stays fixed: every rate point
        # sees the same network draw, so curve differences are pure
        # offered-load effects (arrival draws still differ by rate).
        workloads = [replace(base_workload, offered_load_rps=rate)
                     for rate in offered_rps]
        results = self.run_points(config, workloads, jobs=jobs)
        return [SweepPoint(workload.num_clients, result)
                for workload, result in zip(workloads, results)]

    # ------------------------------------------------------------------
    @staticmethod
    def peak_throughput(points: List[SweepPoint]) -> float:
        """Highest mean throughput across a sweep (the 'peak' the paper
        quotes when comparing protocols)."""
        return max((p.result.throughput_kops for p in points), default=0.0)

    @staticmethod
    def format_curve(points: List[SweepPoint]) -> str:
        """Plain-text rendering of a latency-vs-throughput curve."""
        lines = [f"{'clients':>8} {'kops/s':>9} {'lat ms':>9}"]
        for p in points:
            lat = (f"{p.result.mean_latency_ms:9.1f}"
                   if p.result.mean_latency_ms is not None else "      n/a")
            lines.append(
                f"{p.num_clients:>8} {p.result.throughput_kops:9.3f} {lat}")
        return "\n".join(lines)


@guard_global_rng
def _run_point_task(task) -> ExperimentResult:
    """One sweep point, shaped for :func:`parallel_map`.

    The guard asserts the point path never draws from the module-level
    ``random`` stream -- forked workers inherit that state, so a global
    draw would break cross-process determinism.
    """
    runner, config, workload = task
    return runner.run_point(config, workload)
