"""Perf-trajectory gate: archive benchmark points, fail on regressions.

``repro bench`` measures the current hot paths against the preserved seed
implementation and reports host-normalized *speedup ratios*.  One run is
a point; the archive under ``benchmarks/perf/history/`` is the
trajectory.  The gate compares the current point against the best
recorded speedup per benchmark and fails when any ratio drops more than
``tolerance`` (default 20%) below that best -- which catches the failure
mode a fresh-run smoke cannot: a PR that quietly gives back the speedups
earlier PRs banked, while still being "faster than the seed".

Speedup ratios are used (rather than wall-clock) because both sides of
each ratio run on the same host in the same process, so points recorded
on different machines remain comparable.  Wall-clock-ish numbers
(``units_per_sec``, the closed loop's ``commits_per_wall_sec``) are
archived for plotting but never gated on.

Used by ``scripts/ci.sh perf`` through the ``repro trajectory`` CLI::

    python -m repro trajectory check BENCH_perf.json
    python -m repro trajectory record BENCH_perf.json --label pr5
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

#: Default archive location, relative to the repository root.
HISTORY_DIR = os.path.join("benchmarks", "perf", "history")

#: Default slack: fail when a speedup drops >20% below the best recorded.
TOLERANCE = 0.2


def _point_from_suite(payload: Dict[str, Any],
                      label: Optional[str] = None) -> Dict[str, Any]:
    """Distill one ``BENCH_perf.json`` payload into a history point."""
    benchmarks: Dict[str, Any] = {}
    for name, bench in payload.get("benchmarks", {}).items():
        entry: Dict[str, Any] = {}
        for key in ("speedup", "units_per_sec", "seconds",
                    "commits_per_wall_sec", "results_match",
                    "deterministic"):
            if key in bench:
                entry[key] = bench[key]
        benchmarks[name] = entry
    return {
        "schema": 1,
        "label": label,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": payload.get("host", {}),
        "params": payload.get("params", {}),
        "benchmarks": benchmarks,
    }


def load_history(history_dir: str = HISTORY_DIR) -> List[Dict[str, Any]]:
    """All archived points, ordered by filename (i.e. by recording time
    for auto-named points).

    A corrupt point (e.g. a file truncated by a killed run, then
    re-propagated by a CI cache) is skipped with a warning instead of
    wedging the gate forever; its best values are lost, which the
    warning makes loud enough to act on.
    """
    if not os.path.isdir(history_dir):
        return []
    points = []
    for name in sorted(os.listdir(history_dir)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(history_dir, name)
        try:
            with open(path) as fh:
                point = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"warning: skipping corrupt trajectory point {path}: "
                  f"{exc}", file=sys.stderr)
            continue
        point["_file"] = name
        points.append(point)
    return points


def best_speedups(history: List[Dict[str, Any]]) -> Dict[str, float]:
    """Best recorded speedup per benchmark across the trajectory."""
    best: Dict[str, float] = {}
    for point in history:
        for name, bench in point.get("benchmarks", {}).items():
            speedup = bench.get("speedup")
            if speedup is None:
                continue
            if name not in best or speedup > best[name]:
                best[name] = speedup
    return best


def describe_host(host: Dict[str, Any]) -> str:
    """One-line summary of a payload's recorded host facts.

    Used by ``repro trajectory check`` when the gate trips: comparing
    the current run's line against the best point's line is the fastest
    way to tell a regression from host contention (different machine,
    fewer cores, or a loadavg showing something else was running).
    """
    if not host:
        return "(no host facts recorded)"
    parts: List[str] = []
    if host.get("cpu_model"):
        parts.append(str(host["cpu_model"]))
    if host.get("nproc") is not None:
        parts.append(f"nproc={host['nproc']}")
    loadavg = host.get("loadavg")
    if loadavg:
        parts.append("loadavg=" + "/".join(f"{x:.2f}" for x in loadavg))
    if host.get("platform"):
        parts.append(str(host["platform"]))
    return ", ".join(parts) if parts else "(no host facts recorded)"


def best_point_for(history: List[Dict[str, Any]],
                   benchmark: str) -> Optional[Dict[str, Any]]:
    """The archived point holding the best speedup for ``benchmark``."""
    best_point: Optional[Dict[str, Any]] = None
    best_speedup: Optional[float] = None
    for point in history:
        speedup = point.get("benchmarks", {}).get(benchmark, {}).get(
            "speedup")
        if speedup is None:
            continue
        if best_speedup is None or speedup > best_speedup:
            best_speedup = speedup
            best_point = point
    return best_point


def is_partial(payload: Dict[str, Any]) -> bool:
    """Was this payload produced by ``repro bench --only`` (a triage
    subset) or under ``--profile`` (instrumented timings)?

    Partial/instrumented payloads may be *checked* (each present
    benchmark is still gated) but never *recorded*: a subset would
    disarm the missing-benchmark guard for everyone after it, and
    profiled timings are not comparable to clean ones.
    """
    params = payload.get("params", {})
    return bool(params.get("only")) or bool(params.get("profiled"))


def check_point(payload: Dict[str, Any],
                history: List[Dict[str, Any]],
                tolerance: float = TOLERANCE) -> List[str]:
    """Regression messages for ``payload`` against the trajectory.

    Empty list = gate passes.  An empty history passes by definition
    (the first recorded point seeds the trajectory).  A partial payload
    (``repro bench --only``) is gated only on the benchmarks it
    contains; the missing-benchmark guard is skipped, since the subset
    declares itself in ``params.only``.
    """
    problems: List[str] = []
    best = best_speedups(history)
    benchmarks = payload.get("benchmarks", {})
    for name, bench in benchmarks.items():
        speedup = bench.get("speedup")
        if speedup is None or name not in best:
            continue
        floor = (1.0 - tolerance) * best[name]
        if speedup < floor:
            problems.append(
                f"{name}: speedup {speedup:.2f}x fell >"
                f"{tolerance:.0%} below the best recorded "
                f"{best[name]:.2f}x (floor {floor:.2f}x)")
    # A gated benchmark cannot vanish from the suite unnoticed: removing
    # or renaming it is the quietest way to give a speedup back.
    if not is_partial(payload):
        for name in sorted(best):
            if name not in benchmarks:
                problems.append(
                    f"{name}: on the trajectory (best {best[name]:.2f}x) "
                    f"but missing from this payload -- removed or renamed?")
    return problems


def record_point(payload: Dict[str, Any],
                 history_dir: str = HISTORY_DIR,
                 label: Optional[str] = None) -> str:
    """Archive ``payload`` as a trajectory point; returns the file path.

    Raises:
        ValueError: for a partial (``--only``) or profiled payload --
            recording one would either disarm the missing-benchmark
            guard or bank instrumented (non-comparable) timings.
    """
    if is_partial(payload):
        raise ValueError(
            "refusing to record a partial/profiled payload as a "
            "trajectory point (produced with --only or --profile); "
            "run the full suite uninstrumented")
    os.makedirs(history_dir, exist_ok=True)
    point = _point_from_suite(payload, label=label)
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    name = f"{stamp}-{label}.json" if label else f"{stamp}.json"
    path = os.path.join(history_dir, name)
    # Never clobber an existing point (two runs in the same second).
    serial = 1
    while os.path.exists(path):
        serial += 1
        path = os.path.join(
            history_dir, name.replace(".json", f"-{serial}.json"))
    # Write-then-rename so a killed run cannot leave a truncated point.
    tmp_path = path + ".tmp"
    with open(tmp_path, "w") as fh:
        json.dump(point, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp_path, path)
    return path


def format_check(payload: Dict[str, Any],
                 history: List[Dict[str, Any]],
                 tolerance: float = TOLERANCE) -> str:
    """Human-readable gate report (current vs best vs floor)."""
    best = best_speedups(history)
    lines = [f"{'benchmark':>24} {'current':>9} {'best':>9} {'floor':>9}"
             f" {'status':>8}"]
    for name, bench in payload.get("benchmarks", {}).items():
        speedup = bench.get("speedup")
        if speedup is None:
            continue
        if name in best:
            floor = (1.0 - tolerance) * best[name]
            status = "ok" if speedup >= floor else "REGRESS"
            lines.append(f"{name:>24} {speedup:8.2f}x {best[name]:8.2f}x "
                         f"{floor:8.2f}x {status:>8}")
        else:
            lines.append(f"{name:>24} {speedup:8.2f}x {'--':>9} {'--':>9} "
                         f"{'seeding':>8}")
    if is_partial(payload):
        lines.append("(partial/profiled payload: gated on present "
                     "benchmarks only, not recordable)")
    if not history:
        lines.append("(history empty: this run seeds the trajectory)")
    return "\n".join(lines)
