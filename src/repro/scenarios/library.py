"""The built-in scenario library.

Scenario design notes
---------------------

Cells run on a uniform-latency network with the test suite's fast
timeouts, so every schedule below is phrased in a few virtual seconds.
Protocol scoping follows what the paper (and this repo) actually claims:

* **Every protocol** now implements a leader-change path -- XPaxos and
  Paxos since the start, and the speculative-PBFT / Zyzzyva / Zab
  baselines through the shared election layer in ``protocols/base`` --
  so the crash, quorum-blackout and partition scenarios are in scope for
  all five and grade *liveness*: commit progress must resume within the
  bound once the system is healthy again.
* The paper's Figure 6/9 point survives as a *quantitative* difference
  (how much each baseline's transition costs), not a scoping one.
* **Byzantine and anarchy scenarios** need the non-crash adversary, which
  only XPaxos models.

Every scenario keeps all injected faults clear of the final two seconds,
so the liveness checker always gets a healthy tail window in which
progress must resume.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.config import ClusterConfig, ProtocolName
from repro.faults.adversary import DataLossAdversary, EquivocatingAdversary
from repro.faults.injector import FaultSchedule
from repro.scenarios.scenario import Scenario

#: All five protocols implement leader failover since the baseline
#: view-change work; kept as a named scope for readability.
FAILOVER = frozenset(ProtocolName)

#: Protocols that tolerate follower-side faults (now: all of them --
#: PBFT/Zyzzyva rotate their active set away from the faulty replica).
FOLLOWER_TOLERANT = frozenset(ProtocolName)

#: Protocols whose last replica is outside the common case (t = 1).
HAS_PASSIVE = frozenset({ProtocolName.XPAXOS, ProtocolName.PAXOS,
                         ProtocolName.ZAB, ProtocolName.PBFT})

#: The non-crash adversary is an XPaxos concept.
XPAXOS_ONLY = frozenset({ProtocolName.XPAXOS})


def _client_names(num_clients: int) -> List[str]:
    return [f"c{i}" for i in range(num_clients)]


def _no_faults(config: ClusterConfig) -> FaultSchedule:
    return FaultSchedule()


def _crash_primary(config: ClusterConfig) -> FaultSchedule:
    return FaultSchedule().crash_for(2_500.0, 0, 1_200.0)


def _crash_follower(config: ClusterConfig) -> FaultSchedule:
    return FaultSchedule().crash_for(2_500.0, 1, 1_200.0)


def _crash_passive(config: ClusterConfig) -> FaultSchedule:
    assert config.n is not None
    return FaultSchedule().crash_for(2_500.0, config.n - 1, 1_200.0)


def _rolling_crashes(config: ClusterConfig) -> FaultSchedule:
    # One replica down at a time, Figure 9 style, across the whole cluster.
    assert config.n is not None
    return FaultSchedule.rolling_crashes(
        replicas=list(range(min(config.n, 3))), start_ms=2_000.0,
        interval_ms=1_300.0, downtime_ms=900.0)


def _quorum_blackout(config: ClusterConfig) -> FaultSchedule:
    # Lose the majority (both non-primary CFT replicas) for one window:
    # no protocol can commit during it; progress must resume afterwards.
    return (FaultSchedule()
            .crash_for(2_500.0, 1, 1_500.0)
            .crash_for(2_500.0, 2, 1_500.0))


def _follower_isolated(config: ClusterConfig) -> FaultSchedule:
    assert config.n is not None
    others = [f"r{i}" for i in range(config.n) if i != 1]
    return (FaultSchedule()
            .isolate(2_500.0, "r1", others)
            .heal_isolation(4_500.0, "r1", others))


#: Client count of the client-primary-partition scenario; the schedule
#: below must sever *every* client, so the workload and the schedule
#: share this constant (the schedule factory only sees ClusterConfig).
_CLIENT_PARTITION_CLIENTS = 3


def _asymmetric_client_partition(config: ClusterConfig) -> FaultSchedule:
    # Clients lose the primary while the replicas stay fully connected --
    # asymmetric in which *layer* of the system the fault hits.  Clients
    # fall back to retransmission; no protocol state is lost.
    schedule = FaultSchedule()
    for client in _client_names(_CLIENT_PARTITION_CLIENTS):
        schedule.partition(2_500.0, "r0", client)
        schedule.heal(4_500.0, "r0", client)
    return schedule


def _flapping_partition(config: ClusterConfig) -> FaultSchedule:
    return FaultSchedule.flapping_partition(
        "r0", "r1", start_ms=2_500.0, period_ms=800.0, flaps=3, duty=0.5)


def _suspect_follower(config: ClusterConfig) -> FaultSchedule:
    # A view change with zero crash faults: replica 1 suspects the current
    # view (outside anarchy -- tnc <= t and tc = tp = 0 throughout).
    return FaultSchedule().suspect(3_000.0, 1)


def _crash_two_followers(config: ClusterConfig) -> FaultSchedule:
    # Two overlapping follower crashes: within the fault threshold only
    # at t = 2 (the scenario pins t via config_overrides).
    return (FaultSchedule()
            .crash_for(2_500.0, 1, 1_200.0)
            .crash_for(3_000.0, 2, 1_200.0))


def _byz_plus_crash(config: ClusterConfig) -> FaultSchedule:
    return FaultSchedule().crash_for(2_500.0, 1, 1_500.0)


def _byz_plus_partition(config: ClusterConfig) -> FaultSchedule:
    assert config.n is not None
    others = [f"r{i}" for i in range(config.n) if i != 1]
    return (FaultSchedule()
            .isolate(2_500.0, "r1", others)
            .suspect(3_000.0, 2)
            .heal_isolation(4_500.0, "r1", others))


def builtin_scenarios() -> List[Scenario]:
    """The standing conformance library (order is the report order)."""
    return [
        Scenario(
            name="fault-free",
            description="no faults: every protocol must commit steadily",
            schedule=_no_faults,
        ),
        Scenario(
            name="fault-free-openloop",
            description="no faults, open-loop cohort arrivals at 800 req/s: "
                        "every protocol must absorb rate-driven load",
            schedule=_no_faults,
            num_clients=6,
            offered_load_rps=800.0,
            cohorts=2,
        ),
        Scenario(
            name="crash-passive",
            description="the replica outside the common case crashes and "
                        "recovers; the common case must not notice",
            schedule=_crash_passive,
            protocols=HAS_PASSIVE,
        ),
        Scenario(
            name="crash-primary",
            description="leader crashes for 1.2 s; failover protocols must "
                        "elect and resume",
            schedule=_crash_primary,
            protocols=FAILOVER,
        ),
        Scenario(
            name="crash-follower",
            description="an active follower crashes and recovers",
            schedule=_crash_follower,
            protocols=FOLLOWER_TOLERANT,
        ),
        Scenario(
            name="rolling-crashes",
            description="Figure 9 cadence: each replica crashes in turn, "
                        "one down at a time",
            schedule=_rolling_crashes,
            protocols=FAILOVER,
            duration_ms=9_000.0,
        ),
        Scenario(
            name="quorum-blackout",
            description="a majority crashes simultaneously, then recovers; "
                        "progress must resume after the blackout",
            schedule=_quorum_blackout,
            protocols=FAILOVER,
        ),
        Scenario(
            name="follower-isolated",
            description="an active follower is partitioned from every "
                        "replica for 2 s, then healed",
            schedule=_follower_isolated,
            protocols=FOLLOWER_TOLERANT,
        ),
        Scenario(
            name="client-primary-partition",
            description="clients lose the primary (replicas stay "
                        "connected); retransmission must recover everyone",
            schedule=_asymmetric_client_partition,
            num_clients=_CLIENT_PARTITION_CLIENTS,
        ),
        Scenario(
            name="flapping-partition",
            description="the primary-follower link flaps three times",
            schedule=_flapping_partition,
            protocols=FOLLOWER_TOLERANT,
        ),
        Scenario(
            name="crash-primary-t2",
            description="t=2 cluster: the leader crashes and recovers; "
                        "the general-path view change (XPaxos "
                        "prepare/commit-vote groups, wider baseline "
                        "quorums) must elect and resume",
            schedule=_crash_primary,
            protocols=FAILOVER,
            config_overrides={"t": 2},
        ),
        Scenario(
            name="crash-two-followers-t2",
            description="t=2 cluster: two follower crashes overlap; the "
                        "quorum holds (or a view change routes around "
                        "them) and progress resumes",
            schedule=_crash_two_followers,
            config_overrides={"t": 2},
        ),
        Scenario(
            name="delta-stress",
            description="slow network: 20 ms one-way delays push RTT close "
                        "to Delta without ever breaking synchrony",
            schedule=_no_faults,
            one_way_ms=20.0,
            config_overrides={"delta_ms": 50.0},
        ),
        Scenario(
            name="byzantine-primary-data-loss",
            description="primary loses its logs above sn=1; a no-crash "
                        "view change must convict it (outside anarchy)",
            schedule=_suspect_follower,
            protocols=XPAXOS_ONLY,
            adversaries={0: lambda: DataLossAdversary(keep_upto=1)},
            config_overrides={"use_fault_detection": True},
            expect_detection=True,
            convicted=frozenset({0}),
        ),
        Scenario(
            name="byzantine-primary-equivocate",
            description="primary reports only a chosen slot at view change "
                        "(the Appendix A fork pattern); FD must convict",
            schedule=_suspect_follower,
            protocols=XPAXOS_ONLY,
            adversaries={0: lambda: EquivocatingAdversary(report_only={1})},
            config_overrides={"use_fault_detection": True},
            expect_detection=True,
            convicted=frozenset({0}),
        ),
        Scenario(
            name="anarchy-byzantine-plus-crash",
            description="a non-crash-faulty primary plus a crashed "
                        "follower: tnc + tc > t, the system enters anarchy",
            schedule=_byz_plus_crash,
            protocols=XPAXOS_ONLY,
            adversaries={0: lambda: DataLossAdversary(keep_upto=0)},
            expect_anarchy=True,
            check_liveness=False,
        ),
        Scenario(
            name="anarchy-byzantine-plus-partition",
            description="a non-crash-faulty primary plus a partitioned "
                        "follower crosses the anarchy boundary",
            schedule=_byz_plus_partition,
            protocols=XPAXOS_ONLY,
            adversaries={0: lambda: DataLossAdversary(keep_upto=0)},
            expect_anarchy=True,
            check_liveness=False,
        ),
    ]


def scenario_map() -> Dict[str, Scenario]:
    """``name -> scenario`` for the library."""
    return {s.name: s for s in builtin_scenarios()}


def get_scenario(name: str) -> Scenario:
    """Look one scenario up by name.

    Raises:
        KeyError: with the list of known names.
    """
    scenarios = scenario_map()
    if name not in scenarios:
        known = ", ".join(sorted(scenarios))
        raise KeyError(f"unknown scenario {name!r}; known: {known}")
    return scenarios[name]
