"""Declarative fault scenarios.

A :class:`Scenario` bundles everything one conformance experiment needs:

* a **fault schedule** (built per cluster config, since replica counts and
  names differ across protocols),
* a **workload shape** (clients, request size, duration),
* optional **non-crash adversaries** (XPaxos replicas only -- the only
  protocol in the repo that models Byzantine behaviour),
* the **invariants** the run must satisfy: total order via
  :class:`~repro.faults.checker.SafetyChecker`, commit progress via
  :class:`~repro.faults.liveness.LivenessChecker`, and optional
  expectations about anarchy and fault detection.

Scenarios are pure descriptions: the matrix runner in
:mod:`repro.harness.matrix` executes a ``(protocol, scenario)`` cell
deterministically and grades it.  The XFT guarantees (Definitions 1-3 of
the paper) are conditional on which faults occur, so each scenario also
declares which protocols it is *in scope* for: a leader crash is a
liveness test for protocols with failover (XPaxos, Paxos) but would merely
prove that a fixed-leader baseline stalls, which the paper already grants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Mapping, Optional

from repro.common.config import ClusterConfig, ProtocolName
from repro.faults.injector import FaultSchedule

#: Builds the schedule for one concrete cluster configuration.
ScheduleFactory = Callable[[ClusterConfig], FaultSchedule]

#: Builds one adversary instance (fresh per run; adversaries are stateful).
AdversaryFactory = Callable[[], Any]

#: Protocols whose replicas consult a ``byzantine`` adversary hook.  On any
#: other protocol an attached adversary would be silently inert -- and a
#: cell could report anarchy for a run in which no non-crash fault ever
#: happened -- so scenarios with adversaries must scope within this set.
ADVERSARY_PROTOCOLS = frozenset({ProtocolName.XPAXOS})


@dataclass(frozen=True)
class Scenario:
    """One named, self-contained fault scenario.

    Attributes:
        name: unique identifier (kebab-case; the CLI selects by it).
        description: one-line human summary.
        schedule: fault-schedule factory, called with the resolved
            :class:`ClusterConfig` of the cell being run.
        protocols: protocols the scenario applies to (None = all five).
            Out-of-scope cells are reported as ``skipped``.
        duration_ms / warmup_ms / num_clients / request_size: workload.
        adversaries: ``replica id -> adversary factory`` attached before
            the run; their ids are declared non-crash-faulty to the
            safety checker.  Only meaningful for XPaxos.
        config_overrides: fields replaced on the cell's base
            :class:`ClusterConfig` (e.g. ``use_fault_detection=True``).
        one_way_ms: uniform one-way network latency of the cell.
        expect_anarchy: the scenario intentionally crosses the anarchy
            boundary (Definition 2); its cells are graded
            ``expected-violation`` when anarchy is observed and ``fail``
            when it is not -- safety violations are then admissible.
        expect_detection: every adversary must be convicted by at least
            one benign replica (XPaxos fault detection, Section 4.4).
        convicted: when set, exactly these replica ids must end the run
            convicted by the benign replicas' fault detectors -- asserting
            *which* replica is blamed, not merely that someone is.
        check_liveness: arm the liveness checker.
        liveness_bound_ms: tolerated commit-free window while healthy.
        min_committed: floor on total client-visible commits.
        offered_load_rps: when set, the cell runs the open-loop cohort
            driver at this aggregate arrival rate instead of the closed
            loop; ``cohorts`` arrival streams share the rate.
    """

    name: str
    description: str
    schedule: ScheduleFactory = lambda config: FaultSchedule()
    protocols: Optional[FrozenSet[ProtocolName]] = None
    duration_ms: float = 8_000.0
    warmup_ms: float = 300.0
    num_clients: int = 3
    request_size: int = 64
    adversaries: Mapping[int, AdversaryFactory] = \
        field(default_factory=dict)
    config_overrides: Mapping[str, Any] = field(default_factory=dict)
    one_way_ms: float = 1.0
    expect_anarchy: bool = False
    expect_detection: bool = False
    convicted: Optional[FrozenSet[int]] = None
    check_liveness: bool = True
    liveness_bound_ms: float = 2_500.0
    min_committed: int = 1
    offered_load_rps: Optional[float] = None
    cohorts: int = 2

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario needs a name")
        if self.duration_ms <= self.warmup_ms:
            raise ValueError("duration_ms must exceed warmup_ms")
        if self.adversaries and (
                self.protocols is None
                or not self.protocols <= ADVERSARY_PROTOCOLS):
            raise ValueError(
                f"scenario {self.name!r} attaches adversaries; scope it "
                f"within the adversary-capable protocols "
                f"{sorted(p.value for p in ADVERSARY_PROTOCOLS)}")

    def applies_to(self, protocol: ProtocolName) -> bool:
        """Is a ``(protocol, self)`` cell in scope?"""
        return self.protocols is None or protocol in self.protocols

    def workload_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments for :class:`WorkloadConfig`."""
        kwargs = dict(num_clients=self.num_clients,
                      request_size=self.request_size,
                      duration_ms=self.duration_ms,
                      warmup_ms=self.warmup_ms)
        if self.offered_load_rps is not None:
            kwargs.update(offered_load_rps=self.offered_load_rps,
                          cohorts=self.cohorts)
        return kwargs
