"""Seeded random fault schedules that stay outside anarchy.

The generator composes crash/recover and isolate/heal windows under the
constraints that keep the XFT guarantees unconditional (Definition 2):

* no non-crash faults are ever injected, so ``tnc = 0`` and the system
  can never be in anarchy, whatever else happens;
* fault windows are sequential -- at most one replica is crashed or
  isolated at any instant, keeping the run inside the protocol's fault
  threshold ``t``;
* every fault heals before ``horizon_ms - tail_ms``, guaranteeing a
  healthy tail in which the liveness checker demands progress.

Everything is driven by a caller-provided :class:`random.Random`, so a
seed reproduces the schedule bit-for-bit.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.common.config import ClusterConfig
from repro.faults.injector import FaultSchedule


def random_schedule(
    rng: random.Random,
    config: ClusterConfig,
    horizon_ms: float,
    victims: Optional[Sequence[int]] = None,
    kinds: Sequence[str] = ("crash", "isolate"),
    start_ms: float = 1_500.0,
    tail_ms: float = 2_000.0,
    min_window_ms: float = 400.0,
    max_window_ms: float = 1_200.0,
    min_gap_ms: float = 600.0,
    max_faults: int = 4,
) -> FaultSchedule:
    """Generate one constrained random schedule.

    Args:
        rng: the seeded source of randomness.
        config: the cluster the schedule will run against.
        horizon_ms: workload duration; all faults heal ``tail_ms`` before
            it.
        victims: replica ids eligible for faults (default: all).
        kinds: fault kinds to draw from (``"crash"``, ``"isolate"``).
        start_ms: earliest fault instant (leave warmup alone).
        tail_ms: guaranteed healthy tail.
        min_window_ms / max_window_ms: fault duration range.
        min_gap_ms: healthy gap between consecutive fault windows.
        max_faults: upper bound on the number of fault windows.

    Returns:
        A :class:`FaultSchedule`; possibly empty when the horizon is too
        short for even one window.
    """
    assert config.n is not None
    if victims is None:
        victims = list(range(config.n))
    if not victims:
        raise ValueError("need at least one eligible victim")
    unknown = set(kinds) - {"crash", "isolate"}
    if unknown:
        raise ValueError(f"unknown fault kinds: {sorted(unknown)}")

    names = [f"r{i}" for i in range(config.n)]
    schedule = FaultSchedule()
    cursor = start_ms
    deadline = horizon_ms - tail_ms
    for _ in range(rng.randint(1, max_faults)):
        window = rng.uniform(min_window_ms, max_window_ms)
        if cursor + window > deadline:
            break
        victim = rng.choice(list(victims))
        kind = rng.choice(list(kinds))
        if kind == "crash":
            schedule.crash_for(cursor, victim, window)
        else:
            others = [n for n in names if n != f"r{victim}"]
            schedule.isolate(cursor, f"r{victim}", others)
            schedule.heal_isolation(cursor + window, f"r{victim}", others)
        cursor += window + rng.uniform(min_gap_ms, 2 * min_gap_ms)
    return schedule


def schedule_signature(schedule: FaultSchedule) -> List[tuple]:
    """A hashable rendering of a schedule, for determinism assertions."""
    return [(e.at_ms, e.kind, e.replica, e.pair) for e in schedule.events]
