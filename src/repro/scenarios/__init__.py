"""Declarative fault scenarios and the conformance library."""

from repro.scenarios.scenario import Scenario
from repro.scenarios.library import (
    builtin_scenarios,
    get_scenario,
    scenario_map,
)
from repro.scenarios.fuzz import random_schedule

__all__ = [
    "Scenario",
    "builtin_scenarios",
    "get_scenario",
    "scenario_map",
    "random_schedule",
]
