"""Lightweight identifier types used across the package.

All identifiers are plain ``int`` or ``str`` aliases rather than wrapper
classes: they appear in millions of simulated messages, so they must be cheap
to hash, compare, and copy. The aliases exist to make signatures readable
(``def send(self, dst: ReplicaId, ...)``).
"""

from __future__ import annotations

from typing import Tuple

#: Index of a replica within the cluster, ``0 <= ReplicaId < n``.
ReplicaId = int

#: Identifier of a client machine.  Clients are numbered from 0 and live in a
#: separate namespace from replicas (the paper's set ``C``).
ClientId = int

#: XPaxos view number ``i`` (Section 4.1).  Views advance monotonically.
ViewNumber = int

#: Sequence number ``sn`` assigned by a primary to a request.
SequenceNumber = int

#: A request is uniquely identified by ``(client id, client timestamp)``:
#: the client timestamp ``tsc`` increases by one per request (Algorithm 1).
RequestId = Tuple[ClientId, int]


def request_id(client: ClientId, timestamp: int) -> RequestId:
    """Build the canonical identifier for a client request."""
    return (client, timestamp)
