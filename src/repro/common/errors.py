"""Exception hierarchy for the reproduction library.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors such as
``TypeError``.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An experiment or cluster configuration is invalid.

    Raised eagerly at construction time (e.g. ``n != 2t+1`` for XPaxos,
    a latency matrix with missing entries, or a workload with zero clients)
    so that misconfiguration never surfaces as a mysterious mid-run failure.
    """


class ProtocolViolation(ReproError):
    """A replica observed a message that does not conform to the protocol.

    In XPaxos this triggers view-change initiation (Section 4.3.2, case (i));
    in the test suite it is also used to assert that faulty behaviour is
    noticed by correct replicas.
    """


class SignatureError(ProtocolViolation):
    """A digital signature or MAC failed verification.

    The simulated crypto layer raises this whenever a message claims an
    authenticator that its sender's key could not have produced -- the
    simulator's equivalent of "cannot break cryptographic primitives"
    (Section 2 of the paper).
    """


class CrashedError(ReproError):
    """An operation was attempted on a crashed node (test-harness misuse)."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven incorrectly.

    Examples: scheduling an event in the past, or running a simulator that
    was already exhausted with ``strict=True``.
    """
