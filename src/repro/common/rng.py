"""Deterministic random-number helpers.

Every stochastic component (latency sampling, workload think times, fault
schedules) draws from a stream derived from a single experiment seed, so any
run can be replayed exactly.  Streams are derived by name, which keeps the
draw sequence of one component independent from how often another component
draws -- adding a new latency sample never perturbs the fault schedule.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator


def derive_seed(root_seed: int, *names: object) -> int:
    """Derive a child seed from ``root_seed`` and a path of names.

    Uses SHA-256 so that distinct paths yield independent-looking streams and
    the derivation is stable across Python versions and platforms (unlike
    ``hash()``).
    """
    h = hashlib.sha256()
    h.update(str(root_seed).encode())
    for name in names:
        h.update(b"/")
        h.update(str(name).encode())
    return int.from_bytes(h.digest()[:8], "big")


def stream(root_seed: int, *names: object) -> random.Random:
    """Return a ``random.Random`` seeded for the component path ``names``."""
    return random.Random(derive_seed(root_seed, *names))


def lognormal_from_percentiles(
    rng: random.Random,
    median: float,
    p9999: float,
    n_sigma: float = 3.719,
) -> float:
    """Sample a log-normal value with a given median and 99.99th percentile.

    The paper's Table 3 reports average and extreme-percentile round-trip
    latencies; a log-normal body with the measured tail is the standard way
    to regenerate such a distribution.  ``n_sigma`` is the standard-normal
    quantile of the matched percentile (3.719 for 99.99%).

    Args:
        rng: the deterministic stream to draw from.
        median: target median of the distribution (> 0).
        p9999: target upper percentile value (>= median).
        n_sigma: standard-normal quantile for the percentile being matched.

    Returns:
        One sample from the fitted distribution.
    """
    if median <= 0:
        raise ValueError(f"median must be positive, got {median}")
    if p9999 < median:
        raise ValueError("p9999 must be >= median")
    import math

    mu = math.log(median)
    sigma = (math.log(p9999) - mu) / n_sigma if p9999 > median else 0.0
    return math.exp(rng.gauss(mu, sigma))


def exponential_backoff(
    base_ms: float, attempt: int, cap_ms: float = 60_000.0
) -> float:
    """Deterministic (jitter-free) exponential backoff used by clients."""
    if base_ms <= 0:
        raise ValueError("base_ms must be positive")
    if attempt < 0:
        raise ValueError("attempt must be >= 0")
    return min(cap_ms, base_ms * (2 ** attempt))


def zipf_keys(rng: random.Random, n_keys: int, skew: float) -> Iterator[int]:
    """Infinite stream of Zipf-distributed key indices in ``[0, n_keys)``.

    Used by the key-value-store workload generator.  ``skew = 0`` degenerates
    to uniform.
    """
    if n_keys < 1:
        raise ValueError("n_keys must be >= 1")
    if skew < 0:
        raise ValueError("skew must be >= 0")
    if skew == 0:
        while True:
            yield rng.randrange(n_keys)
    weights = [1.0 / ((i + 1) ** skew) for i in range(n_keys)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w
        cumulative.append(acc / total)
    import bisect

    while True:
        yield bisect.bisect_left(cumulative, rng.random())
