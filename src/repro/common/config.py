"""Configuration dataclasses shared by the SMR runtime and the harness.

The defaults follow the paper's evaluation setup (Section 5): ``t = 1``,
batch size 20, :math:`\\Delta` = 1.25 s, 1 kB requests with empty replies
(the "1/0" microbenchmark).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.common.errors import ConfigurationError

#: Network-fault timeout from Section 5.1.1 -- the paper measures that the
#: EC2 round trip stays under 2.5 s 99.99% of the time and therefore sets
#: ``Delta = 2.5 / 2`` seconds.  Our simulator works in milliseconds.
DEFAULT_DELTA_MS = 1250.0

#: Batch size used by every protocol in the paper's evaluation (Section 5.1.2).
DEFAULT_BATCH_SIZE = 20

#: Checkpoint period (number of committed requests between checkpoints).
DEFAULT_CHECKPOINT_PERIOD = 128


class ProtocolName(str, enum.Enum):
    """The five replication protocols evaluated by the paper."""

    XPAXOS = "xpaxos"
    PAXOS = "paxos"
    PBFT = "pbft"
    ZYZZYVA = "zyzzyva"
    ZAB = "zab"

    @property
    def replicas_for(self) -> "ReplicaCount":
        """Resource requirement class of this protocol."""
        if self in (ProtocolName.PBFT, ProtocolName.ZYZZYVA):
            return ReplicaCount.BFT
        return ReplicaCount.CFT


class ReplicaCount(enum.Enum):
    """How many replicas a protocol class needs to tolerate ``t`` faults."""

    CFT = "2t+1"
    BFT = "3t+1"

    def n(self, t: int) -> int:
        """Total replica count for fault threshold ``t``."""
        if self is ReplicaCount.CFT:
            return 2 * t + 1
        return 3 * t + 1


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of a replicated cluster.

    Attributes:
        t: number of tolerated faults.
        n: total number of replicas (defaults to the protocol-appropriate
            ``2t+1`` or ``3t+1`` when omitted).
        protocol: which replication protocol the cluster runs.
        delta_ms: the network-fault bound :math:`\\Delta` in milliseconds.
        batch_size: maximum number of requests batched into one ordering slot.
        batch_timeout_ms: how long the primary waits to fill a batch before
            sending a partial one.
        checkpoint_period: committed requests between checkpoints.
        sites: optional datacenter name per replica (index-aligned); used by
            the geo-replicated latency model.
        use_fault_detection: enable the XPaxos FD mechanism (Section 4.4).
        use_lazy_replication: propagate commit logs to passive replicas
            (Section 4.5.2), which shortens view changes.
        pipeline_depth: number of batches the primary may have in flight.
    """

    t: int = 1
    protocol: ProtocolName = ProtocolName.XPAXOS
    n: Optional[int] = None
    delta_ms: float = DEFAULT_DELTA_MS
    batch_size: int = DEFAULT_BATCH_SIZE
    batch_timeout_ms: float = 5.0
    checkpoint_period: int = DEFAULT_CHECKPOINT_PERIOD
    sites: Optional[Sequence[str]] = None
    use_fault_detection: bool = False
    use_lazy_replication: bool = True
    pipeline_depth: int = 8
    request_retransmit_ms: float = 4 * DEFAULT_DELTA_MS
    view_change_timeout_ms: float = 4 * DEFAULT_DELTA_MS

    def __post_init__(self) -> None:
        if self.t < 1:
            raise ConfigurationError(f"t must be >= 1, got {self.t}")
        if self.n is None:
            default_n = ReplicaCount(self.protocol.replicas_for).n(self.t)
            object.__setattr__(self, "n", default_n)
        minimum = ReplicaCount(self.protocol.replicas_for).n(self.t)
        if self.n < minimum:
            raise ConfigurationError(
                f"{self.protocol.value} with t={self.t} needs at least "
                f"{minimum} replicas, got n={self.n}"
            )
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if self.delta_ms <= 0:
            raise ConfigurationError("delta_ms must be positive")
        if self.checkpoint_period < 1:
            raise ConfigurationError("checkpoint_period must be >= 1")
        if self.pipeline_depth < 1:
            raise ConfigurationError("pipeline_depth must be >= 1")
        if self.sites is not None and len(self.sites) < self.n:
            raise ConfigurationError(
                f"sites lists {len(self.sites)} datacenters but the cluster "
                f"has n={self.n} replicas"
            )

    @property
    def quorum(self) -> int:
        """Majority quorum size ``floor(n/2) + 1``."""
        assert self.n is not None
        return self.n // 2 + 1

    @property
    def active_count(self) -> int:
        """Replicas involved in the common case.

        XPaxos, Paxos: ``t + 1``; speculative PBFT: ``2t + 1``; Zyzzyva and
        Zab: all replicas.
        """
        if self.protocol in (ProtocolName.XPAXOS, ProtocolName.PAXOS):
            return self.t + 1
        if self.protocol is ProtocolName.PBFT:
            return 2 * self.t + 1
        assert self.n is not None
        return self.n

    def replica_ids(self) -> range:
        """All replica identifiers in this cluster."""
        assert self.n is not None
        return range(self.n)


@dataclass(frozen=True)
class WorkloadConfig:
    """A microbenchmark workload (Section 5.1.3).

    The paper's "1/0" benchmark is 1 kB requests and 0 kB replies; "4/0" is
    4 kB requests.  Two driving models are supported:

    * **Closed loop** (the default, the paper's setup): each of
      ``num_clients`` clients waits for the reply to its current request
      before issuing the next one.
    * **Open loop** (``offered_load_rps`` set): ``cohorts`` simulated
      processes each model ``num_clients / cohorts`` logical clients,
      issuing requests by Poisson arrival draws at the configured
      aggregate rate regardless of completions -- the model that reveals
      a server's real throughput ceiling.
    """

    num_clients: int = 100
    request_size: int = 1024
    reply_size: int = 0
    duration_ms: float = 60_000.0
    warmup_ms: float = 5_000.0
    client_site: Optional[str] = None
    seed: int = 0
    #: Aggregate open-loop arrival rate in requests/second; None selects
    #: the closed-loop driver.
    offered_load_rps: Optional[float] = None
    #: Number of cohort processes sharing the open-loop arrival stream.
    cohorts: int = 4

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ConfigurationError("num_clients must be >= 1")
        if self.request_size < 0 or self.reply_size < 0:
            raise ConfigurationError("request/reply sizes must be >= 0")
        if self.duration_ms <= 0:
            raise ConfigurationError("duration_ms must be positive")
        if self.warmup_ms < 0 or self.warmup_ms >= self.duration_ms:
            raise ConfigurationError(
                "warmup_ms must be in [0, duration_ms)"
            )
        if self.offered_load_rps is not None and self.offered_load_rps <= 0:
            raise ConfigurationError("offered_load_rps must be positive")
        if self.cohorts < 1:
            raise ConfigurationError("cohorts must be >= 1")

    @property
    def open_loop(self) -> bool:
        """True when this workload selects the open-loop cohort driver."""
        return self.offered_load_rps is not None

    @classmethod
    def one_zero(cls, num_clients: int = 100, **kwargs) -> "WorkloadConfig":
        """The paper's 1/0 benchmark: 1 kB requests, empty replies."""
        return cls(num_clients=num_clients, request_size=1024, reply_size=0,
                   **kwargs)

    @classmethod
    def four_zero(cls, num_clients: int = 100, **kwargs) -> "WorkloadConfig":
        """The paper's 4/0 benchmark: 4 kB requests, empty replies."""
        return cls(num_clients=num_clients, request_size=4096, reply_size=0,
                   **kwargs)


@dataclass
class MetricsConfig:
    """Controls what the harness records during a run."""

    record_latencies: bool = True
    record_cpu: bool = True
    throughput_window_ms: float = 1_000.0
    latency_reservoir: int = 100_000

    def __post_init__(self) -> None:
        if self.throughput_window_ms <= 0:
            raise ConfigurationError("throughput_window_ms must be positive")


#: Datacenter layout used throughout Section 5 for ``t = 1`` (Table 4): the
#: primary and clients sit in US-West (CA), the follower in US-East (VA), the
#: XPaxos passive replica in Tokyo (JP) and the PBFT passive one in Europe.
T1_SITES: Dict[str, Sequence[str]] = {
    "xpaxos": ("CA", "VA", "JP"),
    "paxos": ("CA", "VA", "JP"),
    "zab": ("CA", "VA", "JP"),
    "pbft": ("CA", "VA", "JP", "EU"),
    "zyzzyva": ("CA", "VA", "JP", "EU"),
}

#: Datacenter layout for the ``t = 2`` fault-scalability experiment
#: (Section 5.2): CA, OR, VA, JP, EU, AU, SG.
T2_SITES: Dict[str, Sequence[str]] = {
    "xpaxos": ("CA", "OR", "VA", "JP", "EU"),
    "paxos": ("CA", "OR", "VA", "JP", "EU"),
    "zab": ("CA", "OR", "VA", "JP", "EU"),
    "pbft": ("CA", "OR", "VA", "JP", "EU", "AU", "SG"),
    "zyzzyva": ("CA", "OR", "VA", "JP", "EU", "AU", "SG"),
}


def sites_for(protocol: ProtocolName, t: int) -> Sequence[str]:
    """Return the paper's datacenter placement for ``protocol`` at ``t``.

    Raises:
        ConfigurationError: if the paper has no placement for this ``t``
            (only ``t = 1`` and ``t = 2`` are evaluated).
    """
    table = {1: T1_SITES, 2: T2_SITES}.get(t)
    if table is None:
        raise ConfigurationError(
            f"the paper's evaluation only places replicas for t=1 and t=2, "
            f"got t={t}"
        )
    return table[protocol.value]
