"""Shared identifiers, configuration dataclasses, and error types."""

from repro.common.config import ClusterConfig, ProtocolName, WorkloadConfig
from repro.common.errors import (
    ConfigurationError,
    ProtocolViolation,
    ReproError,
    SignatureError,
)
from repro.common.ids import ClientId, ReplicaId, RequestId, ViewNumber

__all__ = [
    "ClusterConfig",
    "ProtocolName",
    "WorkloadConfig",
    "ReproError",
    "ConfigurationError",
    "ProtocolViolation",
    "SignatureError",
    "ClientId",
    "ReplicaId",
    "RequestId",
    "ViewNumber",
]
