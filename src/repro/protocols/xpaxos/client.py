"""The XPaxos client: signed requests, the commit rule, retransmission.

Commit rules (Section 4.2):

* ``t = 1``: the client receives a single reply from the primary that embeds
  the follower's signed commit ``m1``; it commits when the MAC verifies, the
  follower's signature verifies, and all digests match -- two attestations
  in one message.
* ``t >= 2``: the client commits on ``t + 1`` matching replies, one from
  each active replica (the primary's carries the full result, followers'
  carry digests).

On timeout the client runs Algorithm 4: broadcast ``RE-SEND`` to all active
replicas, accept a ``SIGNED-REPLIES`` bundle with ``t + 1`` signed replies,
and follow ``SUSPECT`` messages into the next view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.common.config import ClusterConfig
from repro.crypto.costs import CostModel
from repro.crypto.primitives import KeyStore, digest_of, replica_principal
from repro.net.network import Network
from repro.protocols.xpaxos import messages as msg
from repro.protocols.xpaxos.groups import SynchronousGroups
from repro.sim.core import Simulator
from repro.sim.process import Timer
from repro.smr.messages import Request
from repro.smr.runtime import SmrClientBase


@dataclass
class _Outstanding:
    """State of the client's single in-flight request (closed loop)."""

    request: Request
    sent_at: float
    replies: Dict[int, msg.ReplyMsg] = field(default_factory=dict)
    result: Any = None
    retries: int = 0


class XPaxosClient(SmrClientBase):
    """A closed-loop XPaxos client."""

    def __init__(self, client_id: int, config: ClusterConfig,
                 sim: Simulator, network: Network, keystore: KeyStore,
                 site: str, cost_model: Optional[CostModel] = None) -> None:
        super().__init__(client_id, config, sim, network, keystore, site,
                         cost_model)
        assert config.n is not None
        self.groups = SynchronousGroups(config.n, config.t)
        self.view = 0
        self._outstanding: Optional[_Outstanding] = None
        self._timer = Timer(self, self._on_timeout, "timer_c")
        #: Called with the committed result when the in-flight op finishes.
        self.on_result: Optional[Callable[[Any], None]] = None
        self.timeouts = 0

    # ------------------------------------------------------------------
    def propose(self, op: Any, size_bytes: int = 0) -> Request:
        """Invoke one operation (the client must be idle -- closed loop)."""
        if self._outstanding is not None:
            raise RuntimeError(
                f"client {self.client_id} already has a request in flight")
        ts = self.next_timestamp()
        body = (op, ts, self.client_id)
        sig = self.sign(body)
        request = Request(op=op, timestamp=ts, client=self.client_id,
                          size_bytes=size_bytes, signature=sig)
        self._outstanding = _Outstanding(request=request, sent_at=self.sim.now)
        primary = self.groups.primary(self.view)
        self.send_authenticated(f"r{primary}", msg.Replicate(request),
                                size_bytes=size_bytes)
        self._timer.start(self.config.request_retransmit_ms)
        return request

    @property
    def busy(self) -> bool:
        """True while a request is in flight."""
        return self._outstanding is not None

    # ------------------------------------------------------------------
    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, msg.ReplyMsg):
            self._on_reply(payload)
        elif isinstance(payload, msg.SignedReplies):
            self._on_signed_replies(payload)
        elif isinstance(payload, msg.Suspect):
            self._on_suspect(payload)

    def _on_reply(self, reply: msg.ReplyMsg) -> None:
        # The reply's channel MAC was stamped and verified by the
        # transport (MAC_VECTOR policy); only content checks remain here.
        out = self._outstanding
        if out is None or reply.timestamp != out.request.timestamp:
            return
        if reply.view > self.view:
            self.view = reply.view

        if self.config.t == 1:
            self._fast_commit_rule(reply)
        else:
            out.replies[reply.replica] = reply
            self._general_commit_rule(reply)

    def _fast_commit_rule(self, reply: msg.ReplyMsg) -> None:
        """t = 1: one primary reply embedding the follower's m1."""
        out = self._outstanding
        assert out is not None
        fc = reply.follower_commit
        if fc is None:
            return
        follower = self.groups.followers(reply.view)[0]
        self.cpu.charge_verify()
        if not self.keystore.verify(
                fc.m1, msg.commit1_payload(fc.batch_digest, fc.seqno,
                                           fc.view, fc.reply_digest)) \
                or fc.m1.signer != replica_principal(follower):
            return
        if fc.view != reply.view or fc.seqno != reply.seqno:
            return
        if digest_of(reply.result) != reply.result_digest:
            return
        self._commit(reply.result)

    def _general_commit_rule(self, reply: msg.ReplyMsg) -> None:
        """t >= 2: t+1 matching replies from all active replicas."""
        out = self._outstanding
        assert out is not None
        active = set(self.groups.group(reply.view))
        matching = [r for r in out.replies.values()
                    if r.view == reply.view and r.seqno == reply.seqno
                    and r.result_digest == reply.result_digest
                    and r.replica in active]
        if len(matching) < self.config.t + 1:
            return
        full = next((r.result for r in matching if r.result is not None),
                    None)
        if full is None:
            return  # need at least the primary's full result
        if digest_of(full) != reply.result_digest:
            return
        self._commit(full)

    def _on_signed_replies(self, bundle: msg.SignedReplies) -> None:
        """Retransmission answer: t+1 signed replies (Algorithm 4)."""
        out = self._outstanding
        if out is None:
            return
        shares = [s for s in bundle.shares
                  if s.timestamp == out.request.timestamp
                  and s.client == self.client_id]
        if len(shares) < self.config.t + 1:
            return
        reference = shares[0]
        for share in shares:
            if (share.seqno, share.reply_digest) != (
                    reference.seqno, reference.reply_digest):
                return
            self.cpu.charge_verify()
            if not self.keystore.verify(
                    share.sig,
                    msg.signed_reply_payload(share.seqno, share.view,
                                             share.timestamp, share.client,
                                             share.reply_digest,
                                             share.sender)):
                return
        full = next((s.result for s in shares if s.result is not None), None)
        if bundle.view > self.view:
            self.view = bundle.view
        self._commit(full)

    def _on_suspect(self, suspect: msg.Suspect) -> None:
        """Algorithm 4 lines 11-15: follow the view change."""
        if suspect.view < self.view:
            return
        if not self.groups.is_active(suspect.view, suspect.sender):
            return
        self.cpu.charge_verify()
        if not self.keystore.verify(
                suspect.sig,
                msg.suspect_payload(suspect.view, suspect.sender)):
            return
        self.view = suspect.view + 1
        out = self._outstanding
        if out is None:
            return
        # Forward the suspicion to the new actives and re-send the request.
        self.multicast_authenticated(
            [f"r{r}" for r in self.groups.group(self.view)],
            suspect, size_bytes=48)
        primary = self.groups.primary(self.view)
        self.send_authenticated(f"r{primary}", msg.Replicate(out.request),
                                size_bytes=out.request.size_bytes)
        self._timer.start(self.config.request_retransmit_ms)

    # ------------------------------------------------------------------
    def _commit(self, result: Any) -> None:
        out = self._outstanding
        assert out is not None
        self._outstanding = None
        self._timer.stop()
        self.record_completion(out.request.rid, out.sent_at)
        if self.on_result is not None:
            self.on_result(result)

    def _on_timeout(self) -> None:
        """Client timer expiry: broadcast RE-SEND to all actives.

        The retry timer backs off exponentially (capped): during a view
        change the request cannot commit anyway, and re-sending faster than
        the view-change period only feeds the suspicion cascade.
        """
        out = self._outstanding
        if out is None:
            return
        self.timeouts += 1
        out.retries += 1
        self.multicast_authenticated(
            [f"r{r}" for r in self.groups.group(self.view)],
            msg.ReSend(out.request), size_bytes=out.request.size_bytes)
        backoff = (2.0 if out.retries > 1 else 1.0) \
            * self.config.request_retransmit_ms
        self._timer.start(backoff)
