"""XPaxos: the first XFT state-machine-replication protocol (Section 4).

Components:

* :mod:`repro.protocols.xpaxos.groups` -- the view-to-synchronous-group
  mapping (Section 4.3.1, generalizing Table 2).
* :mod:`repro.protocols.xpaxos.messages` -- every wire message of the
  protocol (common case, view change, fault detection, checkpointing,
  lazy replication, retransmission).
* :mod:`repro.protocols.xpaxos.replica` -- Algorithms 1-5: the replica.
* :mod:`repro.protocols.xpaxos.client` -- signed requests, the commit rule,
  and the retransmission protocol of Algorithm 4.
* :mod:`repro.protocols.xpaxos.detection` -- Algorithm 6's fault-detection
  predicates (state-loss, fork-I, fork-II).
"""

from repro.protocols.xpaxos.groups import SynchronousGroups
from repro.protocols.xpaxos.client import XPaxosClient
from repro.protocols.xpaxos.replica import XPaxosReplica

__all__ = ["SynchronousGroups", "XPaxosReplica", "XPaxosClient"]
