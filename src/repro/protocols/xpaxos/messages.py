"""Every wire message of XPaxos.

Naming follows the paper's pseudocode (Appendix B).  All inter-replica
messages carry digital signatures *in their payloads* and therefore need
no transport authenticator (:data:`~repro.crypto.authenticators.NULL`).
The two MAC-authenticated channels -- client-bound replies and the
active-to-active ``PRECHK`` exchange -- use the transport-level
:data:`~repro.crypto.authenticators.MAC_VECTOR` policy: the per-receiver
MAC is stamped by the network at delivery fan-out time instead of being
embedded in the payload, so these fan-outs ride the multicast fast path.

Signed payloads are tuples built by the ``*_payload`` helpers so that signer
and verifier hash exactly the same bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.crypto.authenticators import MAC_VECTOR, NULL, register
from repro.crypto.primitives import Digest, Signature
from repro.smr.log import CommitEntry, PrepareEntry
from repro.smr.messages import Batch, Request

# ---------------------------------------------------------------------------
# Signed-payload constructors (the tuples that actually get hashed/signed)
# ---------------------------------------------------------------------------


def batch_digest_of(batch: Batch) -> Digest:
    """The paper's ``D(req)`` lifted to batches.

    Covers the full signed body of every request (operation, timestamp,
    client) -- not just the identifiers -- so two different operations can
    never share a digest.
    """
    return batch.bodies_digest()


def prepare_payload(batch_digest: Digest, seqno: int, view: int) -> tuple:
    """``<PREPARE, D(req), sn, i>`` -- signed by the primary (t >= 2)."""
    return ("prepare", batch_digest, seqno, view)


def commit_payload(batch_digest: Digest, seqno: int, view: int,
                   sender: int) -> tuple:
    """``<COMMIT, D(req), sn, i>`` -- signed by a follower (t >= 2)."""
    return ("commit", batch_digest, seqno, view, sender)


def commit0_payload(batch_digest: Digest, seqno: int, view: int) -> tuple:
    """``m0`` of the t = 1 fast path -- the primary's signed commit."""
    return ("commit0", batch_digest, seqno, view)


def commit1_payload(batch_digest: Digest, seqno: int, view: int,
                    reply_digest: Digest) -> tuple:
    """``m1`` of the t = 1 fast path -- the follower's signed commit, also
    covering the digest of the replies it computed."""
    return ("commit1", batch_digest, seqno, view, reply_digest)


def suspect_payload(view: int, sender: int) -> tuple:
    """``<SUSPECT, i, sj>``."""
    return ("suspect", view, sender)


def view_change_payload(new_view: int, sender: int,
                        commit_entries: tuple,
                        prepare_entries: Optional[tuple],
                        checkpoint_digest: Optional[Digest]) -> tuple:
    """``<VIEW-CHANGE, i+1, sj, CommitLog [, PrepareLog]>``."""
    return ("view-change", new_view, sender, commit_entries,
            prepare_entries, checkpoint_digest)


def vc_final_payload(new_view: int, sender: int, vcset_digest: Digest) -> tuple:
    """``<VC-FINAL, i+1, sj, VCSet>`` -- signs the digest of the set."""
    return ("vc-final", new_view, sender, vcset_digest)


def vc_confirm_payload(new_view: int, sender: int,
                       vcset_digest: Digest) -> tuple:
    """``<VC-CONFIRM, i+1, D(VCSet)>`` (fault-detection mode)."""
    return ("vc-confirm", new_view, sender, vcset_digest)


def new_view_payload(new_view: int, entries_digest: Digest) -> tuple:
    """``<NEW-VIEW, i+1, PrepareLog>`` -- signs the digest of the log."""
    return ("new-view", new_view, entries_digest)


def chkpt_payload(seqno: int, view: int, state_digest: bytes,
                  sender: int) -> tuple:
    """``<CHKPT, sn, i, D(st), sj>``."""
    return ("chkpt", seqno, view, state_digest, sender)


def signed_reply_payload(seqno: int, view: int, timestamp: int,
                         client: int, reply_digest: Digest,
                         sender: int) -> tuple:
    """Per-replica signed reply used by the retransmission protocol."""
    return ("signed-reply", seqno, view, timestamp, client, reply_digest,
            sender)


# ---------------------------------------------------------------------------
# Common case
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Replicate:
    """Client -> primary: a signed request (``<REPLICATE, op, ts, c>``)."""

    request: Request


@dataclass(frozen=True)
class Prepare:
    """Primary -> followers (t >= 2): ``<req, prep>``."""

    view: int
    seqno: int
    batch: Batch
    batch_digest: Digest
    primary_sig: Signature


@dataclass(frozen=True)
class CommitVote:
    """Follower -> active replicas (t >= 2): a signed commit message."""

    view: int
    seqno: int
    batch_digest: Digest
    sender: int
    sig: Signature


@dataclass(frozen=True)
class FastPrepare:
    """Primary -> follower (t = 1): ``<req, m0>``."""

    view: int
    seqno: int
    batch: Batch
    batch_digest: Digest
    m0: Signature


@dataclass(frozen=True)
class FastCommit:
    """Follower -> primary (t = 1): ``m1`` plus the reply digest it covers."""

    view: int
    seqno: int
    batch_digest: Digest
    reply_digest: Digest
    m1: Signature


@dataclass(frozen=True)
class ReplyMsg:
    """Active replica -> client (channel MAC stamped by the transport).

    ``result`` is the full application reply from the primary and ``None``
    (digest only) from followers.  In the t = 1 pattern the primary's reply
    embeds the follower's ``m1`` so the client can check both attestations
    from a single message.
    """

    replica: int
    view: int
    seqno: int
    timestamp: int
    client: int
    result: Any
    result_digest: Digest
    follower_commit: Optional[FastCommit] = None
    size_bytes: int = 0


# ---------------------------------------------------------------------------
# View change
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Suspect:
    """``<SUSPECT, i, sj>`` broadcast to all replicas (and to clients that
    asked for retransmission)."""

    view: int
    sender: int
    sig: Signature


@dataclass(frozen=True)
class CheckpointProof:
    """A stable checkpoint: sequence number, state digest, t+1 signatures,
    and the state snapshot used for state transfer."""

    seqno: int
    view: int
    state_digest: bytes
    sigs: Tuple[Signature, ...]
    snapshot: Any


@dataclass(frozen=True)
class ViewChange:
    """``<VIEW-CHANGE, i+1, sj, CommitLog, ...>``.

    ``commit_entries`` / ``prepare_entries`` are tuples of ``(sn, entry)``
    pairs -- immutable snapshots of the sender's logs.  ``prepare_entries``
    and ``final_proof`` are only present in fault-detection mode
    (Algorithm 5).
    """

    new_view: int
    sender: int
    commit_entries: Tuple[Tuple[int, CommitEntry], ...]
    checkpoint: Optional[CheckpointProof]
    sig: Signature
    prepare_entries: Optional[Tuple[Tuple[int, PrepareEntry], ...]] = None
    prepare_view: int = 0
    final_proof: Optional[Tuple[Signature, ...]] = None


@dataclass(frozen=True)
class VcFinal:
    """``<VC-FINAL, i+1, sj, VCSet>``."""

    new_view: int
    sender: int
    vcset: Tuple[ViewChange, ...]
    vcset_digest: Digest
    sig: Signature


@dataclass(frozen=True)
class VcConfirm:
    """``<VC-CONFIRM, i+1, D(VCSet)>`` (fault-detection mode only)."""

    new_view: int
    sender: int
    vcset_digest: Digest
    sig: Signature


@dataclass(frozen=True)
class NewView:
    """``<NEW-VIEW, i+1, PrepareLog>`` from the new primary."""

    new_view: int
    entries: Tuple[PrepareEntry, ...]
    checkpoint: Optional[CheckpointProof]
    sig: Signature


# ---------------------------------------------------------------------------
# Fault detection accusations (Algorithm 6)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultAccusation:
    """``<STATE-LOSS | FORK-I | FORK-II, ...>`` broadcast to all replicas."""

    kind: str  # "state-loss" | "fork-i" | "fork-ii"
    accused: int
    seqno: int
    view: int
    evidence: Any


# ---------------------------------------------------------------------------
# Checkpointing and lazy replication (Section 4.5)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PreChk:
    """``<PRECHK, sn, i, D(st), sj>`` on the cheap active-to-active
    MAC channel; the per-receiver MAC is stamped by the transport."""

    seqno: int
    view: int
    state_digest: bytes
    sender: int


@dataclass(frozen=True)
class Chkpt:
    """``<CHKPT, sn, i, D(st), sj>`` signed (the durable proof)."""

    seqno: int
    view: int
    state_digest: bytes
    sender: int
    sig: Signature


@dataclass(frozen=True)
class LazyChk:
    """``<LAZYCHK, chkProof>`` pushed to passive replicas."""

    proof: CheckpointProof


@dataclass(frozen=True)
class LazyCommit:
    """Lazy replication of one commit-log entry to a passive replica."""

    view: int
    seqno: int
    entry: CommitEntry


@dataclass(frozen=True)
class FetchEntries:
    """Passive/recovering replica -> active replica: request the committed
    entries in ``[from_seqno, to_seqno]`` (state retrieval, Section 4.5.2:
    a replica behind the lazy stream "could only retrieve the missing
    state from others")."""

    from_seqno: int
    to_seqno: int
    sender: int


@dataclass(frozen=True)
class FetchReply:
    """Active replica -> requester: the requested commit-log entries plus
    the responder's stable checkpoint (for requests below the log's
    low-water mark)."""

    entries: Tuple[CommitEntry, ...]
    checkpoint: Optional[CheckpointProof]


# ---------------------------------------------------------------------------
# Request retransmission (Algorithm 4)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReSend:
    """Client -> all active replicas after its timer expires."""

    request: Request


@dataclass(frozen=True)
class SignedReplyShare:
    """Active -> active: one replica's signed reply for a retransmitted
    request (Algorithm 4, lines 16-17)."""

    view: int
    seqno: int
    timestamp: int
    client: int
    reply_digest: Digest
    result: Any
    sender: int
    sig: Signature


@dataclass(frozen=True)
class SignedReplies:
    """Active -> client: ``t + 1`` matching signed replies (line 21)."""

    view: int
    shares: Tuple[SignedReplyShare, ...]


# ---------------------------------------------------------------------------
# Transport authenticator policies per message class
# ---------------------------------------------------------------------------

#: MAC-vector channels: the paper's HMAC-authenticated paths.
register(ReplyMsg, MAC_VECTOR)
register(PreChk, MAC_VECTOR)

#: Everything else embeds digital signatures in the payload (or forwards
#: signed material) -- the transport adds nothing.
for _cls in (Replicate, Prepare, CommitVote, FastPrepare, FastCommit,
             Suspect, ViewChange, VcFinal, VcConfirm, NewView,
             FaultAccusation, Chkpt, LazyChk, LazyCommit, FetchEntries,
             FetchReply, ReSend, SignedReplyShare, SignedReplies):
    register(_cls, NULL)
del _cls
