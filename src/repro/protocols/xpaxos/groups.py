"""Synchronous-group selection (Section 4.3.1).

Every view number ``i`` deterministically maps to a *synchronous group*
``sg_i`` of ``t + 1`` active replicas (one primary + ``t`` followers); the
remaining ``t`` replicas are passive.  The paper enumerates all
``C(2t+1, t+1)`` subsets and rotates through them round-robin, so that
"eventually, view change in XPaxos will complete with t + 1 correct and
synchronous active replicas" (Section 4.6, availability).

For ``t = 1`` this reproduces Table 2 exactly:

====================  =====  ======  ======
view (mod 3)            i     i + 1   i + 2
====================  =====  ======  ======
primary                s0     s0      s1
follower               s1     s2      s2
passive                s2     s1      s0
====================  =====  ======  ======
"""

from __future__ import annotations

import itertools
from typing import List, Sequence, Tuple

from repro.common.errors import ConfigurationError


class SynchronousGroups:
    """The deterministic ``view -> synchronous group`` mapping.

    The combination list is ordered lexicographically, and within a group
    the lowest replica id is the primary -- the convention that makes the
    ``t = 1`` rotation match the paper's Table 2.
    """

    def __init__(self, n: int, t: int) -> None:
        if n != 2 * t + 1:
            raise ConfigurationError(
                f"XPaxos requires n = 2t+1; got n={n}, t={t}"
            )
        self.n = n
        self.t = t
        self._groups: List[Tuple[int, ...]] = [
            combo for combo in itertools.combinations(range(n), t + 1)
        ]

    @property
    def group_count(self) -> int:
        """Number of distinct synchronous groups, ``C(2t+1, t+1)``."""
        return len(self._groups)

    def group(self, view: int) -> Tuple[int, ...]:
        """Active replicas (sorted ids) of view ``view``."""
        if view < 0:
            raise ValueError(f"view must be >= 0, got {view}")
        return self._groups[view % len(self._groups)]

    def primary(self, view: int) -> int:
        """The primary of view ``view`` (lowest id in the group)."""
        return self.group(view)[0]

    def followers(self, view: int) -> Tuple[int, ...]:
        """The ``t`` followers of view ``view``."""
        return self.group(view)[1:]

    def passive(self, view: int) -> Tuple[int, ...]:
        """The ``t`` passive replicas of view ``view``."""
        active = set(self.group(view))
        return tuple(r for r in range(self.n) if r not in active)

    def is_active(self, view: int, replica: int) -> bool:
        """Is ``replica`` in the synchronous group of ``view``?"""
        return replica in self.group(view)

    def is_primary(self, view: int, replica: int) -> bool:
        """Is ``replica`` the primary of ``view``?"""
        return replica == self.primary(view)

    def next_view_with_group(self, after_view: int,
                             group: Sequence[int]) -> int:
        """Smallest view strictly after ``after_view`` whose synchronous
        group equals ``group`` (used by availability tests)."""
        target = tuple(sorted(group))
        if target not in self._groups:
            raise ValueError(f"{group} is not a valid synchronous group")
        index = self._groups.index(target)
        cycle = len(self._groups)
        base = (after_view // cycle) * cycle + index
        while base <= after_view:
            base += cycle
        return base


class LeaderRotationGroups:
    """The paper's sketched alternative for large clusters (Section 4.3.1).

    "For a large number of replicas, the combinatorial number of
    synchronous groups may be inefficient.  To this end, XPaxos can be
    modified to rotate only the leader, which may then resort to
    deterministic verifiable pseudorandom selection of the set of f
    followers in each view."

    The primary of view ``i`` is ``i mod n``; the ``t`` followers are
    drawn from the remaining replicas by a deterministic PRF over
    ``(seed, view)`` that every replica can recompute and verify.  The
    scheme keeps the properties the view change relies on:

    * the mapping is a pure function of the view number (all replicas
      agree without communication);
    * every replica is the primary infinitely often; and
    * every replica appears as a follower with frequency ~t/(n-1), so a
      correct synchronous group recurs with bounded expected wait.
    """

    def __init__(self, n: int, t: int, seed: int = 0) -> None:
        if n != 2 * t + 1:
            raise ConfigurationError(
                f"XPaxos requires n = 2t+1; got n={n}, t={t}"
            )
        self.n = n
        self.t = t
        self.seed = seed

    @property
    def group_count(self) -> int:
        """Distinct (primary, follower-set) pairs is unbounded in view
        space; the rotation period of the *primary* is ``n``."""
        return self.n

    def primary(self, view: int) -> int:
        """Round-robin leader rotation."""
        if view < 0:
            raise ValueError(f"view must be >= 0, got {view}")
        return view % self.n

    def followers(self, view: int) -> Tuple[int, ...]:
        """The ``t`` pseudorandomly selected followers of ``view``.

        Selection is a Fisher-Yates prefix over the non-primary replicas,
        driven by SHA-256 of ``(seed, view)`` -- deterministic, uniform,
        and verifiable by any replica.
        """
        import hashlib

        primary = self.primary(view)
        candidates = [r for r in range(self.n) if r != primary]
        digest = hashlib.sha256(
            f"{self.seed}/{view}".encode()).digest()
        state = int.from_bytes(digest, "big")
        chosen = []
        for slot in range(self.t):
            index = state % len(candidates)
            state //= max(len(candidates), 1)
            chosen.append(candidates.pop(index))
        return tuple(sorted(chosen))

    def group(self, view: int) -> Tuple[int, ...]:
        """Active replicas (sorted ids) of ``view``."""
        return tuple(sorted((self.primary(view), *self.followers(view))))

    def passive(self, view: int) -> Tuple[int, ...]:
        """The ``t`` passive replicas of ``view``."""
        active = set(self.group(view))
        return tuple(r for r in range(self.n) if r not in active)

    def is_active(self, view: int, replica: int) -> bool:
        """Is ``replica`` in the synchronous group of ``view``?"""
        return replica in self.group(view)

    def is_primary(self, view: int, replica: int) -> bool:
        """Is ``replica`` the primary of ``view``?"""
        return replica == self.primary(view)
