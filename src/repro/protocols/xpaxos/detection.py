"""Fault detection (Section 4.4 and Algorithm 6).

The detector inspects the set of ``VIEW-CHANGE`` messages gathered during a
view change and flags replicas whose logs betray a fault that *would* have
violated consistency had the system been in anarchy:

* **state loss** -- a replica that was active in some earlier view ``i'``
  reports a prepare log missing an entry even though another replica of
  ``sg_{i'}`` holds a commit-log entry for that slot generated in ``i'``.
  The commit-log entry causally depends on the missing prepare entry, so its
  absence proves data loss.
* **fork-I** -- a replica reports a prepare-log entry for slot ``sn`` that
  either conflicts with a commit-log entry of the same view (different
  request) or is older than a commit proof the same replica must have known.
* **fork-II** -- a prepare-log entry generated in a *later* view ``i''``
  conflicts with a commit-log entry generated in ``i' < i''``; the entry can
  only be legitimate if view ``i''`` actually selected it, which the
  ``FinalProof`` (the t+1 ``VC-CONFIRM`` signatures of view ``i''``)
  certifies.  A missing or mismatched proof convicts the sender.

Detection is *strongly accurate* outside anarchy: a benign replica's logs
always pass these checks (Theorem 6), which the property-based test suite
exercises heavily.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Set, Tuple

from repro.crypto.primitives import digest_of
from repro.protocols.xpaxos import messages as msg

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.protocols.xpaxos.replica import XPaxosReplica


def _batch_rid_digest(batch) -> Tuple:
    """Comparison key for batches: the full signed request bodies."""
    return tuple(r.body() for r in batch)


class FaultDetector:
    """Runs Algorithm 6 over a set of view-change messages."""

    def __init__(self, replica: "XPaxosReplica") -> None:
        self.replica = replica
        self.groups = replica.groups

    def detect(self, new_view: int,
               vcset: List[msg.ViewChange]) -> Set[int]:
        """Return the set of replica ids convicted by the evidence in
        ``vcset``; broadcast an accusation for each conviction."""
        faulty: Set[int] = set()
        by_sender: Dict[int, msg.ViewChange] = {vc.sender: vc for vc in vcset}
        for vc in vcset:
            for other in vcset:
                if vc.sender == other.sender:
                    continue
                kind = self._check_pair(new_view, vc, other)
                if kind is not None:
                    faulty.add(vc.sender)
                    accusation = msg.FaultAccusation(
                        kind=kind, accused=vc.sender, seqno=-1,
                        view=new_view, evidence=(vc.sender, other.sender))
                    self.replica.broadcast_accusation(accusation)
        return faulty

    # ------------------------------------------------------------------
    def _check_pair(self, new_view: int, suspect_vc: msg.ViewChange,
                    witness_vc: msg.ViewChange) -> "str | None":
        """Check ``suspect_vc`` against the evidence in ``witness_vc``.

        Returns the accusation kind, or None if no fault is proven.
        """
        if suspect_vc.prepare_entries is None:
            # Without FD payloads there is nothing to cross-check.
            return None
        suspect = suspect_vc.sender
        prepare_by_sn = dict(suspect_vc.prepare_entries)

        for seqno, commit_entry in witness_vc.commit_entries:
            commit_view = commit_entry.view
            # The obligation to hold a prepare-log entry for a committed
            # slot applies only to replicas that maintain a prepare log in
            # that view: with t = 1 "only the primary maintains a prepare
            # log" (Section 4.4); with t >= 2 every active replica does.
            if self.replica.config.t == 1:
                obliged = self.groups.is_primary(commit_view, suspect)
            else:
                obliged = self.groups.is_active(commit_view, suspect)
            if not obliged:
                continue
            if not self._commit_proof_valid(commit_entry):
                continue  # the witness's evidence itself is bogus
            pentry = prepare_by_sn.get(seqno)
            if pentry is None:
                if suspect_vc.prepare_view >= commit_view \
                        and seqno > self._checkpoint_floor(suspect_vc):
                    # Algorithm 6 line 3: the commit entry causally
                    # follows the suspect's prepare entry -> state loss.
                    return "state-loss"
                continue
            if pentry.view == commit_view:
                if (_batch_rid_digest(pentry.batch)
                        != _batch_rid_digest(commit_entry.batch)):
                    # Same view, different request: fork-I.
                    return "fork-i"
            elif pentry.view < commit_view:
                # The suspect prepared in an older view than a commit it
                # participated in: fork-I (Algorithm 6 line 6, i'' < i').
                return "fork-i"
            else:
                # pentry.view > commit_view: legitimate only if the later
                # view's state selection actually adopted this request --
                # certified by the FinalProof (fork-II query, lines 9-16).
                if not self._final_proof_covers(suspect_vc, pentry.view):
                    return "fork-ii"
                if (_batch_rid_digest(pentry.batch)
                        != _batch_rid_digest(commit_entry.batch)
                        and not self._selection_overrode(
                            suspect_vc, seqno, commit_view)):
                    return "fork-ii"
        return None

    # ------------------------------------------------------------------
    def _commit_proof_valid(self, entry) -> bool:
        """Spot-check a commit entry's signatures (witness credibility)."""
        if not entry.proof:
            return False
        keystore = self.replica.keystore
        for sig in entry.proof:
            self.replica.cpu.charge_verify()
            if not keystore.verify_digest(sig, sig.digest):
                return False
        return True

    @staticmethod
    def _checkpoint_floor(vc: msg.ViewChange) -> int:
        return vc.checkpoint.seqno if vc.checkpoint is not None else 0

    @staticmethod
    def _final_proof_covers(vc: msg.ViewChange, view: int) -> bool:
        """Does the sender hold the FinalProof for the view in which its
        prepare log was generated?"""
        return vc.final_proof is not None and vc.prepare_view == view

    def _selection_overrode(self, vc: msg.ViewChange, seqno: int,
                            commit_view: int) -> bool:
        """A later view may legitimately re-order a slot only if the slot's
        commit in ``commit_view`` never reached t+1 replicas -- which cannot
        happen for sg-committed slots outside anarchy.  We conservatively
        answer False (convict) unless the sender was passive in
        ``commit_view``."""
        return not self.groups.is_active(commit_view, vc.sender)
