"""The XPaxos replica: common case, view change, checkpointing, lazy
replication, retransmission handling, and (optionally) fault detection.

This module implements Algorithms 1-5 of the paper's Appendix B.  The
``t = 1`` fast path (Algorithm 1, Figure 2b) and the general path
(Algorithm 2, Figure 2a) are both present; the replica picks the path from
``config.t``.

State layout mirrors the pseudocode:

* ``view`` -- current view number ``i``.
* ``prepare_log`` / ``commit_log`` -- the paper's ``PrepareLog`` /
  ``CommitLog`` (sparse, checkpoint-truncated).
* ``sn`` -- highest sequence number prepared locally; ``ex`` -- highest
  executed.
* View-change state is per target view: the ``VCSet``, received
  ``VC-FINAL``s, the ``2 Delta`` network timer, and the view-change timer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.common.config import ClusterConfig
from repro.common.errors import ProtocolViolation
from repro.crypto.costs import CostModel
from repro.crypto.primitives import (
    Digest,
    KeyStore,
    digest_of,
    replica_principal,
)
from repro.net.network import Network
from repro.protocols.base import PipelinedSequencer
from repro.protocols.xpaxos import messages as msg
from repro.protocols.xpaxos.detection import FaultDetector
from repro.protocols.xpaxos.groups import SynchronousGroups
from repro.sim.core import Simulator
from repro.sim.process import Timer
from repro.smr.app import StateMachine
from repro.smr.log import CommitEntry, CommitLog, PrepareEntry, PrepareLog
from repro.smr.messages import Batch, Request
from repro.smr.runtime import ReplicaBase


@dataclass
class _ViewChangeState:
    """Per-target-view bookkeeping during a view change."""

    vcset: Dict[int, msg.ViewChange] = field(default_factory=dict)
    vc_finals: Dict[int, msg.VcFinal] = field(default_factory=dict)
    vc_confirms: Dict[int, msg.VcConfirm] = field(default_factory=dict)
    net_timer_expired: bool = False
    sent_vc_final: bool = False
    confirmed_digest: Optional[Digest] = None
    processed_new_view: bool = False


@dataclass
class _RetransmissionState:
    """Per-request bookkeeping for Algorithm 4."""

    request: Request
    shares: Dict[int, msg.SignedReplyShare] = field(default_factory=dict)
    timer: Optional[Timer] = None
    done: bool = False
    retries: int = 0


class XPaxosReplica(ReplicaBase):
    """One XPaxos replica (active or passive depending on the view)."""

    def __init__(self, replica_id: int, config: ClusterConfig,
                 sim: Simulator, network: Network, keystore: KeyStore,
                 app_factory: Callable[[], StateMachine], site: str,
                 cost_model: Optional[CostModel] = None) -> None:
        super().__init__(replica_id, config, sim, network, keystore,
                         app_factory, site, cost_model)
        assert config.n is not None
        self.groups = SynchronousGroups(config.n, config.t)
        self.view = 0
        self.sn = 0          # highest prepared sequence number
        self.ex = 0          # highest executed sequence number
        self.prepare_log = PrepareLog()
        self.commit_log = CommitLog()
        self.prepare_view = 0   # view in which prepare_log was generated (FD)

        # Batching and slot pipelining at the primary (shared sequencer).
        self.sequencer = PipelinedSequencer(
            self,
            may_propose=lambda: self.is_primary and not self.in_view_change,
            propose=self._propose_slot)

        # Per-slot transient state for the general (t >= 2) path.
        self._commit_votes: Dict[int, Dict[int, msg.CommitVote]] = {}
        self._pending_prepares: Dict[int, Any] = {}  # out-of-order buffer

        # Reply cache: client -> (timestamp, ReplyMsg fields) for dedup.
        self._last_reply: Dict[int, msg.ReplyMsg] = {}

        # View change.
        self._suspected_views: Set[int] = set()
        self._forwarded_suspects: Set[tuple] = set()
        self._vc: Dict[int, _ViewChangeState] = {}
        self._net_timer = Timer(self, self._on_net_timer, "timer_net")
        self._vc_timer = Timer(self, self._on_vc_timer, "timer_vc")
        self._vc_retx_timer = Timer(self, self._on_vc_retransmit,
                                    "timer_vc_retx")
        self.view_changes_completed = 0
        self.in_view_change = False

        # Fault detection.
        self.detector = FaultDetector(self) if config.use_fault_detection \
            else None
        self.detected_faulty: Set[int] = set()
        self.final_proofs: Dict[int, Tuple] = {}

        # Checkpointing.
        self._prechk_votes: Dict[int, Dict[int, bytes]] = {}
        self._chkpt_sigs: Dict[int, Dict[int, msg.Chkpt]] = {}
        self.stable_checkpoint: Optional[msg.CheckpointProof] = None

        # Retransmission handling (Algorithm 4).
        self._retransmissions: Dict[tuple, _RetransmissionState] = {}
        self._buffered_resends: List[msg.ReSend] = []

        # State retrieval for recovering/lagging passive replicas.
        self._fetch_pending = False

        # Fault-injection hooks (see repro.faults): mutate outgoing
        # view-change content to model non-crash faults.
        self.byzantine: Optional[Any] = None

        # Metrics hooks.
        self.on_commit_batch: Optional[Callable[[int, Batch], None]] = None

    # ------------------------------------------------------------------
    # Role helpers
    # ------------------------------------------------------------------
    @property
    def is_active(self) -> bool:
        """Is this replica in the current synchronous group?"""
        return self.groups.is_active(self.view, self.replica_id)

    @property
    def is_primary(self) -> bool:
        """Is this replica the current primary?"""
        return self.groups.is_primary(self.view, self.replica_id)

    @property
    def is_follower(self) -> bool:
        """Is this replica a follower in the current view?"""
        return self.is_active and not self.is_primary

    def _active_names(self, view: Optional[int] = None) -> List[str]:
        v = self.view if view is None else view
        return [self.replica_name(r) for r in self.groups.group(v)]

    def _passive_names(self, view: Optional[int] = None) -> List[str]:
        v = self.view if view is None else view
        return [self.replica_name(r) for r in self.groups.passive(v)]

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def on_message(self, src: str, payload: Any) -> None:
        handlers = {
            msg.Replicate: self._on_replicate,
            msg.Prepare: self._on_prepare,
            msg.CommitVote: self._on_commit_vote,
            msg.FastPrepare: self._on_fast_prepare,
            msg.FastCommit: self._on_fast_commit,
            msg.Suspect: self._on_suspect,
            msg.ViewChange: self._on_view_change,
            msg.VcFinal: self._on_vc_final,
            msg.VcConfirm: self._on_vc_confirm,
            msg.NewView: self._on_new_view,
            msg.PreChk: self._on_prechk,
            msg.Chkpt: self._on_chkpt,
            msg.LazyChk: self._on_lazychk,
            msg.LazyCommit: self._on_lazy_commit,
            msg.FetchEntries: self._on_fetch,
            msg.FetchReply: self._on_fetch_reply,
            msg.ReSend: self._on_resend,
            msg.SignedReplyShare: self._on_signed_reply_share,
            msg.FaultAccusation: self._on_fault_accusation,
        }
        handler = handlers.get(type(payload))
        if handler is None:
            return  # unknown message types are ignored, not fatal
        try:
            handler(src, payload)
        except ProtocolViolation:
            # Section 4.3.2 case (i): a non-conforming message from an
            # active replica triggers view-change initiation.
            self.suspect_view(self.view)

    # ==================================================================
    # Common case -- Algorithms 1 and 2
    # ==================================================================
    def _on_replicate(self, src: str, m: msg.Replicate) -> None:
        request = m.request
        if not self._verify_request(request):
            return
        if not self.is_primary or self.in_view_change:
            return  # clients retransmit to the right primary eventually
        if self._already_executed(request):
            self._resend_cached_reply(request)
            return
        self.sequencer.offer(request)

    def _verify_request(self, request: Request) -> bool:
        """Verify the client's signature on a request."""
        if request.signature is None:
            return False
        self.cpu.charge_verify()
        return self.keystore.verify(request.signature, request.body())

    def _already_executed(self, request: Request) -> bool:
        cached = self._last_reply.get(request.client)
        return cached is not None and cached.timestamp >= request.timestamp

    def _resend_cached_reply(self, request: Request) -> None:
        cached = self._last_reply.get(request.client)
        if cached is not None and cached.timestamp == request.timestamp:
            self.send_authenticated(f"c{request.client}", cached,
                                    size_bytes=cached.size_bytes)

    def _propose_slot(self, seqno: int, batch: Batch) -> None:
        """Start ordering one sequencer-cut batch on the configured path."""
        if self.config.t == 1:
            self._fast_propose(seqno, batch)
        else:
            self._propose(seqno, batch)

    # -- general case (t >= 2) ------------------------------------------
    def _propose(self, seqno: int, batch: Batch) -> None:
        batch_digest = self._batch_digest(batch)
        sig = self.sign(msg.prepare_payload(batch_digest, seqno, self.view))
        entry = PrepareEntry(seqno, self.view, batch, sig)
        self.prepare_log.put(seqno, entry)
        prepare = msg.Prepare(self.view, seqno, batch, batch_digest, sig)
        self.multicast_authenticated(
            [self.replica_name(f) for f in self.groups.followers(self.view)],
            prepare, size_bytes=batch.size_bytes)

    def _on_prepare(self, src: str, m: msg.Prepare) -> None:
        if self.config.t == 1:
            return
        if m.view != self.view or not self.is_follower:
            return
        if self.in_view_change:
            # A prepare for the view we are still installing: the sender
            # adopted it a moment before us.  Buffer and drain on adoption.
            self._pending_prepares[m.seqno] = m
            return
        primary = self.groups.primary(self.view)
        if src != self.replica_name(primary):
            return
        self._verify_prepare(m, primary)
        if m.seqno != self.sn + 1:
            if m.seqno > self.sn + 1:
                self._pending_prepares[m.seqno] = m  # out-of-order buffer
            return
        self._accept_prepare(m)
        # Drain any buffered successors that are now in order.
        while self.sn + 1 in self._pending_prepares:
            self._accept_prepare(self._pending_prepares.pop(self.sn + 1))

    def _verify_prepare(self, m: msg.Prepare, primary: int) -> None:
        expected = self._batch_digest(m.batch)
        if expected != m.batch_digest:
            raise ProtocolViolation("prepare digest mismatch")
        self.cpu.charge_verify()
        if not self.keystore.verify(
                m.primary_sig,
                msg.prepare_payload(m.batch_digest, m.seqno, m.view)) \
                or m.primary_sig.signer != replica_principal(primary):
            raise ProtocolViolation("bad primary signature on prepare")
        for request in m.batch:
            if not self._verify_request(request):
                raise ProtocolViolation("bad client signature in batch")

    def _accept_prepare(self, m: msg.Prepare) -> None:
        self.sn = m.seqno
        entry = PrepareEntry(m.seqno, m.view, m.batch, m.primary_sig)
        self.prepare_log.put(m.seqno, entry)
        sig = self.sign(msg.commit_payload(m.batch_digest, m.seqno, m.view,
                                           self.replica_id))
        vote = msg.CommitVote(m.view, m.seqno, m.batch_digest,
                              self.replica_id, sig)
        # Record our own vote at this replica's position in the active list
        # so the send (and latency draw) order matches a sequential loop.
        self._fanout_with_self(self._active_names(), vote, 64,
                               lambda: self._record_commit_vote(vote))

    def _on_commit_vote(self, src: str, m: msg.CommitVote) -> None:
        if self.config.t == 1:
            return
        if m.view != self.view or not self.is_active or self.in_view_change:
            return
        if m.sender not in self.groups.followers(self.view):
            return
        self.cpu.charge_verify()
        if not self.keystore.verify(
                m.sig, msg.commit_payload(m.batch_digest, m.seqno, m.view,
                                          m.sender)) \
                or m.sig.signer != replica_principal(m.sender):
            raise ProtocolViolation("bad follower signature on commit")
        self._record_commit_vote(m)

    def _record_commit_vote(self, vote: msg.CommitVote) -> None:
        votes = self._commit_votes.setdefault(vote.seqno, {})
        votes[vote.sender] = vote
        self._try_commit_general(vote.seqno)

    def _try_commit_general(self, seqno: int) -> None:
        """Commit once the prepare entry and all t follower votes are in."""
        if seqno in self.commit_log:
            return
        entry = self.prepare_log.get(seqno)
        if entry is None:
            return
        votes = self._commit_votes.get(seqno, {})
        followers = set(self.groups.followers(self.view))
        have = {s for s in votes if s in followers}
        if len(have) < self.config.t:
            return
        batch_digest = self._batch_digest(entry.batch)
        matching = [votes[s].sig for s in sorted(have)
                    if votes[s].batch_digest == batch_digest]
        if len(matching) < self.config.t:
            return
        proof = (entry.primary_sig, *matching)
        self.commit_log.put(
            seqno, CommitEntry(seqno, entry.view, entry.batch, proof))
        self._commit_votes.pop(seqno, None)
        self._execute_ready()

    # -- fast path (t = 1) ------------------------------------------------
    def _fast_propose(self, seqno: int, batch: Batch) -> None:
        batch_digest = self._batch_digest(batch)
        m0 = self.sign(msg.commit0_payload(batch_digest, seqno, self.view))
        entry = PrepareEntry(seqno, self.view, batch, m0)
        self.prepare_log.put(seqno, entry)
        fast = msg.FastPrepare(self.view, seqno, batch, batch_digest, m0)
        follower = self.groups.followers(self.view)[0]
        self.send_authenticated(self.replica_name(follower), fast,
                                size_bytes=batch.size_bytes)

    def _on_fast_prepare(self, src: str, m: msg.FastPrepare) -> None:
        if self.config.t != 1:
            return
        if m.view != self.view or not self.is_follower:
            return
        if self.in_view_change:
            # Same-view prepare racing our own view-change completion:
            # buffer it and drain once the NEW-VIEW is adopted.
            self._pending_prepares[m.seqno] = m
            return
        primary = self.groups.primary(self.view)
        if src != self.replica_name(primary):
            return
        if self._batch_digest(m.batch) != m.batch_digest:
            raise ProtocolViolation("fast-prepare digest mismatch")
        self.cpu.charge_verify()
        if not self.keystore.verify(
                m.m0, msg.commit0_payload(m.batch_digest, m.seqno, m.view)) \
                or m.m0.signer != replica_principal(primary):
            raise ProtocolViolation("bad m0 signature")
        for request in m.batch:
            if not self._verify_request(request):
                raise ProtocolViolation("bad client signature in batch")
        if m.seqno != self.sn + 1:
            if m.seqno > self.sn + 1:
                self._pending_prepares[m.seqno] = m
            return
        self._accept_fast_prepare(m)
        while self.sn + 1 in self._pending_prepares:
            self._accept_fast_prepare(
                self._pending_prepares.pop(self.sn + 1))

    def _accept_fast_prepare(self, m: msg.FastPrepare) -> None:
        """Follower side of the t = 1 pattern: execute, sign m1, log."""
        self.sn = m.seqno
        results = self._execute_batch(m.seqno, m.batch)
        reply_digest = digest_of(tuple(results))
        m1 = self.sign(msg.commit1_payload(m.batch_digest, m.seqno, m.view,
                                           reply_digest))
        entry = CommitEntry(m.seqno, m.view, m.batch, (m.m0, m1))
        self.commit_log.put(m.seqno, entry)
        self.ex = m.seqno
        # The follower does not answer clients in the fast path, but it
        # must cache its replies so the retransmission protocol
        # (Algorithm 4) can later produce its signed reply share.
        self._cache_replies(m.seqno, m.batch, results)
        fast_commit = msg.FastCommit(m.view, m.seqno, m.batch_digest,
                                     reply_digest, m1)
        primary = self.groups.primary(self.view)
        self.send_authenticated(self.replica_name(primary), fast_commit,
                                size_bytes=96)
        self._lazy_replicate(entry)
        self._maybe_checkpoint(m.seqno)

    def _on_fast_commit(self, src: str, m: msg.FastCommit) -> None:
        if self.config.t != 1:
            return
        if m.view != self.view or not self.is_primary \
                or self.in_view_change:
            return
        follower = self.groups.followers(self.view)[0]
        if src != self.replica_name(follower):
            return
        entry = self.prepare_log.get(m.seqno)
        if entry is None or self._batch_digest(entry.batch) != m.batch_digest:
            return
        self.cpu.charge_verify()
        if not self.keystore.verify(
                m.m1, msg.commit1_payload(m.batch_digest, m.seqno, m.view,
                                          m.reply_digest)) \
                or m.m1.signer != replica_principal(follower):
            raise ProtocolViolation("bad m1 signature")
        if m.seqno in self.commit_log:
            return
        commit_entry = CommitEntry(m.seqno, m.view, entry.batch,
                                   (entry.primary_sig, m.m1))
        self.commit_log.put(m.seqno, commit_entry)
        self._fast_commits_pending = getattr(self, "_fast_commits_pending",
                                             {})
        self._fast_commits_pending[m.seqno] = m
        self._execute_ready()

    # -- execution ---------------------------------------------------------
    def _execute_ready(self) -> None:
        """Execute committed batches in sequence order."""
        progressed = False
        while True:
            entry = self.commit_log.get(self.ex + 1)
            if entry is None:
                break
            progressed = True
            seqno = self.ex + 1
            results = self._execute_batch(seqno, entry.batch)
            self.ex = seqno
            if self.is_active:
                self._reply_to_clients(seqno, entry, results)
                if self.config.t >= 2 and self.is_follower:
                    self._lazy_replicate(entry)
            else:
                self._cache_replies(seqno, entry.batch, results)
            self._maybe_checkpoint(seqno)
        if progressed:
            self.sequencer.pump()

    def _execute_batch(self, seqno: int, batch: Batch) -> List[Any]:
        results = []
        for request in batch:
            results.append(self.app.execute(request.op))
            self.execution_trace.append((seqno, request.rid))
            self.committed_requests += 1
        if self.on_commit_batch is not None:
            self.on_commit_batch(seqno, batch)
        return results

    def _cache_replies(self, seqno: int, batch: Batch,
                       results: List[Any]) -> None:
        """Record this replica's reply per request (dedup + Algorithm 4)
        without sending anything to clients."""
        for request, result in zip(batch, results):
            reply_digest = digest_of(result)
            self._last_reply[request.client] = msg.ReplyMsg(
                replica=self.replica_id, view=self.view, seqno=seqno,
                timestamp=request.timestamp, client=request.client,
                result=result, result_digest=reply_digest)
            if request.rid in self._retransmissions:
                self._emit_signed_reply_share(request)

    def _reply_to_clients(self, seqno: int, entry: CommitEntry,
                          results: List[Any]) -> None:
        fast = None
        if self.config.t == 1 and self.is_primary:
            pending = getattr(self, "_fast_commits_pending", {})
            fast = pending.pop(seqno, None)
            if fast is not None:
                # Cross-check our reply digest against the follower's.
                if digest_of(tuple(results)) != fast.reply_digest:
                    raise ProtocolViolation(
                        "follower reply digest mismatch (divergent state)")
        for request, result in zip(entry.batch, results):
            reply_digest = digest_of(result)
            full = self.is_primary
            reply = msg.ReplyMsg(
                replica=self.replica_id, view=self.view, seqno=seqno,
                timestamp=request.timestamp, client=request.client,
                result=result if full else None,
                result_digest=reply_digest,
                follower_commit=fast,
                size_bytes=(getattr(result, "__len__", lambda: 0)()
                            if full else 32),
            )
            self._last_reply[request.client] = reply
            if request.rid in self._retransmissions:
                self._emit_signed_reply_share(request)
            # t = 1: only the primary replies (the reply carries m1).
            if self.config.t == 1 and not self.is_primary:
                continue
            self.send_authenticated(f"c{request.client}", reply,
                                    size_bytes=reply.size_bytes)

    def _batch_digest(self, batch: Batch) -> Digest:
        self.cpu.charge_digest(batch.size_bytes)
        return msg.batch_digest_of(batch)

    # ==================================================================
    # View change -- Algorithm 3
    # ==================================================================
    def suspect_view(self, view: int) -> None:
        """Initiate a view change for ``view`` (Section 4.3.2)."""
        if view != self.view or view in self._suspected_views:
            return
        if not self.groups.is_active(view, self.replica_id):
            return  # only active replicas may initiate
        self._suspected_views.add(view)
        sig = self.sign(msg.suspect_payload(view, self.replica_id))
        suspect = msg.Suspect(view, self.replica_id, sig)
        self.multicast_authenticated(self.other_replica_names(), suspect,
                                     size_bytes=48)
        self._process_suspect(suspect)

    def _on_suspect(self, src: str, m: msg.Suspect) -> None:
        if not self.groups.is_active(m.view, m.sender):
            return  # only active replicas of that view may suspect it
        self.cpu.charge_verify()
        if not self.keystore.verify(
                m.sig, msg.suspect_payload(m.view, m.sender)) \
                or m.sig.signer != replica_principal(m.sender):
            return
        key = (m.view, m.sender)
        if key not in self._forwarded_suspects:
            self._forwarded_suspects.add(key)
            self.multicast_authenticated(
                [n for n in self.all_replica_names()
                 if n != self.name and n != src],
                m, size_bytes=48)
        self._process_suspect(m)

    def _process_suspect(self, m: msg.Suspect) -> None:
        """Enter view ``m.view + 1`` if the suspicion concerns our view."""
        if m.view < self.view:
            return
        # Enter each view in order (Algorithm 3 line 6-7): a suspect for a
        # future view fast-forwards us through the intermediate ones.
        target = m.view + 1
        while self.view < target:
            self._enter_view(self.view + 1)

    def _enter_view(self, new_view: int) -> None:
        """Stop the old view and send our VIEW-CHANGE to the new actives."""
        self.view = new_view
        self.in_view_change = True
        self.sequencer.stop_timer()
        self._pending_prepares.clear()
        self._commit_votes.clear()
        # Give pending retransmissions a fresh window: the new view needs
        # time to form before it can possibly commit them.
        for state in self._retransmissions.values():
            if not state.done and state.timer is not None \
                    and state.timer.armed:
                state.timer.start(4 * self.config.delta_ms
                                  + 8 * self.config.batch_timeout_ms)
        vc = self._build_view_change(new_view)
        self._fanout_with_self(self._active_names(new_view), vc,
                               self._vc_size(vc),
                               lambda: self._record_view_change(vc))
        if self.groups.is_active(new_view, self.replica_id):
            self._vc.setdefault(new_view, _ViewChangeState())
            self._net_timer.start(2 * self.config.delta_ms)
            self._vc_timer.start(self.config.view_change_timeout_ms)
        else:
            # Passive in the new view: re-send our VIEW-CHANGE until the
            # change is observed complete (see _on_vc_retransmit).
            self._vc_retx_timer.start(self.config.view_change_timeout_ms)

    def _on_vc_retransmit(self) -> None:
        """Reliable-channel emulation: the paper assumes a VIEW-CHANGE
        sent while its receiver is down is retransmitted until received.
        The simulator sends once, so a replica that is the sole holder of
        a committed entry (e.g. the survivor of overlapping crashes)
        could have its log silently excluded from the n - t VCSet --
        losing committed state outside anarchy (the Appendix A pattern
        without any non-crash fault).  Active replicas already escalate
        through their view-change timer; the passive replica of the
        pending view (which has no timer) re-sends its VIEW-CHANGE on the
        same cadence until the change is observed complete."""
        if not self.in_view_change \
                or self.groups.is_active(self.view, self.replica_id):
            return
        vc = self._build_view_change(self.view)
        self.multicast_authenticated(self._active_names(self.view), vc,
                                     size_bytes=self._vc_size(vc))
        self._vc_retx_timer.start(self.config.view_change_timeout_ms)

    def _build_view_change(self, new_view: int) -> msg.ViewChange:
        commit_entries = tuple(self.commit_log.items())
        prepare_entries = None
        final_proof = None
        if self.config.use_fault_detection:
            prepare_entries = tuple(self.prepare_log.items())
            final_proof = self.final_proofs.get(self.prepare_view)
        payload = msg.view_change_payload(
            new_view, self.replica_id, commit_entries, prepare_entries,
            digest_of(self.stable_checkpoint.state_digest)
            if self.stable_checkpoint else None)
        sig = self.sign(payload)
        vc = msg.ViewChange(
            new_view=new_view, sender=self.replica_id,
            commit_entries=commit_entries,
            checkpoint=self.stable_checkpoint, sig=sig,
            prepare_entries=prepare_entries,
            prepare_view=self.prepare_view,
            final_proof=final_proof)
        if self.byzantine is not None:
            vc = self.byzantine.mutate_view_change(self, vc)
        return vc

    @staticmethod
    def _vc_size(vc: msg.ViewChange) -> int:
        size = 128
        for _, entry in vc.commit_entries:
            size += entry.batch.size_bytes + 128
        if vc.prepare_entries:
            for _, entry in vc.prepare_entries:
                size += entry.batch.size_bytes + 64
        return size

    def _on_view_change(self, src: str, m: msg.ViewChange) -> None:
        if m.new_view < self.view:
            return
        if m.new_view > self.view:
            # We are behind: a view change for a future view implies its
            # initiators suspected everything up to it.
            while self.view < m.new_view:
                self._enter_view(self.view + 1)
        if not self.groups.is_active(m.new_view, self.replica_id):
            return
        self._record_view_change(m)

    def _record_view_change(self, m: msg.ViewChange) -> None:
        state = self._vc.setdefault(m.new_view, _ViewChangeState())
        # First message per (view, sender) wins: retransmissions rebuild
        # the message from live state, and actives must select from the
        # same VCSet or the NEW-VIEW cross-check would mis-fire.
        state.vcset.setdefault(m.sender, m)
        self._maybe_send_vc_final(m.new_view)

    def _on_net_timer(self) -> None:
        state = self._vc.get(self.view)
        if state is None:
            return
        state.net_timer_expired = True
        self._maybe_send_vc_final(self.view)

    def _maybe_send_vc_final(self, new_view: int) -> None:
        """Algorithm 3 line 13: all n collected, or timer expired with
        >= n - t."""
        if new_view != self.view:
            return
        state = self._vc.get(new_view)
        if state is None or state.sent_vc_final:
            return
        n = self.config.n
        assert n is not None
        enough = (len(state.vcset) >= n
                  or (state.net_timer_expired
                      and len(state.vcset) >= n - self.config.t))
        if not enough:
            return
        state.sent_vc_final = True
        self._net_timer.stop()
        vcset = tuple(sorted(state.vcset.values(), key=lambda v: v.sender))
        vcset_digest = digest_of(vcset)
        sig = self.sign(msg.vc_final_payload(new_view, self.replica_id,
                                             vcset_digest))
        final = msg.VcFinal(new_view, self.replica_id, vcset, vcset_digest,
                            sig)
        self._fanout_with_self(self._active_names(new_view), final, 256,
                               lambda: self._record_vc_final(final))

    def _on_vc_final(self, src: str, m: msg.VcFinal) -> None:
        if m.new_view != self.view:
            return
        if not self.groups.is_active(m.new_view, self.replica_id):
            return
        if m.sender not in self.groups.group(m.new_view):
            return
        self.cpu.charge_verify()
        if not self.keystore.verify(
                m.sig, msg.vc_final_payload(m.new_view, m.sender,
                                            m.vcset_digest)):
            return
        self._record_vc_final(m)

    def _record_vc_final(self, m: msg.VcFinal) -> None:
        state = self._vc.setdefault(m.new_view, _ViewChangeState())
        state.vc_finals[m.sender] = m
        # Merge the piggybacked view-change messages into our VCSet.
        for vc in m.vcset:
            state.vcset.setdefault(vc.sender, vc)
        needed = set(self.groups.group(m.new_view))
        if set(state.vc_finals) < needed:
            return
        if self.config.use_fault_detection:
            self._run_fault_detection(m.new_view, state)
        else:
            self._finish_view_change(m.new_view, state)

    # -- fault-detection insertion point (Algorithm 5) --------------------
    def _run_fault_detection(self, new_view: int,
                             state: _ViewChangeState) -> None:
        assert self.detector is not None
        if state.confirmed_digest is not None:
            return  # already ran
        merged: Dict[int, msg.ViewChange] = {}
        for final in state.vc_finals.values():
            for vc in final.vcset:
                merged.setdefault(vc.sender, vc)
        merged.update(state.vcset)
        faulty = self.detector.detect(new_view, list(merged.values()))
        for accused in faulty:
            self.detected_faulty.add(accused)
        clean = {sender: vc for sender, vc in merged.items()
                 if sender not in faulty}
        state.vcset = clean
        vcset = tuple(sorted(clean.values(), key=lambda v: v.sender))
        vcset_digest = digest_of(vcset)
        state.confirmed_digest = vcset_digest
        sig = self.sign(msg.vc_confirm_payload(new_view, self.replica_id,
                                               vcset_digest))
        confirm = msg.VcConfirm(new_view, self.replica_id, vcset_digest, sig)
        self._fanout_with_self(self._active_names(new_view), confirm, 96,
                               lambda: self._record_vc_confirm(confirm))

    def _on_vc_confirm(self, src: str, m: msg.VcConfirm) -> None:
        if m.new_view != self.view:
            return
        if not self.groups.is_active(m.new_view, self.replica_id):
            return
        self.cpu.charge_verify()
        if not self.keystore.verify(
                m.sig, msg.vc_confirm_payload(m.new_view, m.sender,
                                              m.vcset_digest)):
            return
        self._record_vc_confirm(m)

    def _record_vc_confirm(self, m: msg.VcConfirm) -> None:
        state = self._vc.setdefault(m.new_view, _ViewChangeState())
        state.vc_confirms[m.sender] = m
        needed = set(self.groups.group(m.new_view))
        if set(state.vc_confirms) < needed:
            return
        digests = {c.vcset_digest for c in state.vc_confirms.values()}
        if len(digests) != 1:
            self.suspect_view(self.view)
            return
        self.final_proofs[m.new_view] = tuple(
            c.sig for c in sorted(state.vc_confirms.values(),
                                  key=lambda c: c.sender))
        self._finish_view_change(m.new_view, state)

    # -- state selection and NEW-VIEW -------------------------------------
    def _finish_view_change(self, new_view: int,
                            state: _ViewChangeState) -> None:
        selection, checkpoint = self._select_state(state)
        if self.groups.is_primary(new_view, self.replica_id):
            entries = []
            for seqno in sorted(selection):
                batch = selection[seqno].batch
                batch_digest = msg.batch_digest_of(batch)
                if self.config.t == 1:
                    payload = msg.commit0_payload(batch_digest, seqno,
                                                  new_view)
                else:
                    payload = msg.prepare_payload(batch_digest, seqno,
                                                  new_view)
                sig = self.sign(payload)
                entries.append(PrepareEntry(seqno, new_view, batch, sig))
            entries_tuple = tuple(entries)
            sig = self.sign(msg.new_view_payload(new_view,
                                                 digest_of(entries_tuple)))
            new_view_msg = msg.NewView(new_view, entries_tuple, checkpoint,
                                       sig)
            self._fanout_with_self(
                self._active_names(new_view), new_view_msg, 1024,
                lambda: self._adopt_new_view(new_view_msg, selection))
        # Followers wait for the primary's NEW-VIEW; _vc_timer still runs.
        self._pending_selection = (new_view, selection, checkpoint)

    def _select_state(self, state: _ViewChangeState):
        """Per sequence number, pick the entry with the highest view
        (Section 4.3.3), considering prepare logs too under FD
        (Algorithm 5 lines 12-20)."""
        selection: Dict[int, CommitEntry] = {}
        best_checkpoint: Optional[msg.CheckpointProof] = None
        for vc in state.vcset.values():
            if vc.checkpoint is not None:
                if (best_checkpoint is None
                        or vc.checkpoint.seqno > best_checkpoint.seqno):
                    best_checkpoint = vc.checkpoint
            for seqno, entry in vc.commit_entries:
                current = selection.get(seqno)
                if current is None or entry.view > current.view:
                    selection[seqno] = entry
            if self.config.use_fault_detection and vc.prepare_entries:
                for seqno, pentry in vc.prepare_entries:
                    current = selection.get(seqno)
                    if current is None or pentry.view > current.view:
                        selection[seqno] = CommitEntry(
                            seqno, pentry.view, pentry.batch,
                            (pentry.primary_sig,))
        if best_checkpoint is not None:
            selection = {sn: e for sn, e in selection.items()
                         if sn > best_checkpoint.seqno}
        return selection, best_checkpoint

    def _on_new_view(self, src: str, m: msg.NewView) -> None:
        if m.new_view != self.view:
            return
        if not self.groups.is_active(m.new_view, self.replica_id):
            return
        primary = self.groups.primary(m.new_view)
        if src != self.replica_name(primary):
            return
        self.cpu.charge_verify()
        if not self.keystore.verify(
                m.sig, msg.new_view_payload(m.new_view,
                                            digest_of(m.entries))):
            self.suspect_view(self.view)
            return
        # Verify the primary's selection against our own (Algorithm 3
        # line 26): mismatch means a faulty primary -> suspect.
        pending = getattr(self, "_pending_selection", None)
        if pending is not None and pending[0] == m.new_view:
            _, selection, _ = pending
            expected = {sn: msg.batch_digest_of(e.batch)
                        for sn, e in selection.items()}
            offered = {e.seqno: msg.batch_digest_of(e.batch)
                       for e in m.entries}
            if expected != offered:
                self.suspect_view(self.view)
                return
        selection = {e.seqno: CommitEntry(e.seqno, e.view, e.batch,
                                          (e.primary_sig,))
                     for e in m.entries}
        self._adopt_new_view(m, selection)

    def _adopt_new_view(self, m: msg.NewView,
                        selection: Dict[int, CommitEntry]) -> None:
        state = self._vc.get(m.new_view)
        if state is not None and state.processed_new_view:
            return
        if state is not None:
            state.processed_new_view = True
        # State transfer: restore from the checkpoint if we are behind it.
        if m.checkpoint is not None and self.ex < m.checkpoint.seqno:
            self.app.restore(m.checkpoint.snapshot)
            self.ex = m.checkpoint.seqno
            self.sn = max(self.sn, m.checkpoint.seqno)
            self.stable_checkpoint = m.checkpoint
            self.commit_log.truncate_to(m.checkpoint.seqno)
            self.prepare_log.truncate_to(m.checkpoint.seqno)
        # Re-commit every selected request in the new view.
        for entry in m.entries:
            self.prepare_log.put(entry.seqno,
                                 PrepareEntry(entry.seqno, m.new_view,
                                              entry.batch,
                                              entry.primary_sig))
            proof = (entry.primary_sig,)
            self.commit_log.put(entry.seqno,
                                CommitEntry(entry.seqno, m.new_view,
                                            entry.batch, proof))
        self.prepare_view = m.new_view
        highest = max((e.seqno for e in m.entries), default=0)
        if m.checkpoint is not None:
            highest = max(highest, m.checkpoint.seqno)
        highest = max(highest, self.ex)
        # Algorithm 3 line 29: sn <- End(PrepareLog).  Slots this replica
        # prepared in older views that the selection did not adopt are
        # abandoned (their clients retransmit); keeping a higher sn would
        # make the follower reject every new prepare as out-of-order.
        self.sn = highest
        for stale in [s for s, _ in self.prepare_log.items() if s > highest]:
            self.prepare_log.drop(stale)
        self._execute_ready()
        # Catch up execution over any holes left by a sparse selection: a
        # hole below the highest selected seqno means no request committed
        # there in any previous view, so it is skipped.
        if self.ex < highest:
            for seqno in range(self.ex + 1, highest + 1):
                if seqno not in self.commit_log:
                    self.ex = seqno
                else:
                    self._execute_ready()
            self._execute_ready()
        self._vc_timer.stop()
        self._vc_retx_timer.stop()
        self.in_view_change = False
        self.view_changes_completed += 1
        # Drain prepares for this view that arrived while we were still
        # installing it (they were buffered by the prepare handlers).
        if self.is_follower:
            primary_name = self.replica_name(
                self.groups.primary(self.view))
            buffered_prepares = [p for _, p in sorted(
                self._pending_prepares.items())
                if getattr(p, "view", -1) == self.view]
            self._pending_prepares.clear()
            for prepared in buffered_prepares:
                if isinstance(prepared, msg.FastPrepare):
                    self.sim.call_soon(
                        lambda p=prepared: self._on_fast_prepare(
                            primary_name, p))
                elif isinstance(prepared, msg.Prepare):
                    self.sim.call_soon(
                        lambda p=prepared: self._on_prepare(
                            primary_name, p))
        # Replay client retransmissions that arrived during the change, and
        # re-drive every still-unresolved retransmission: requests prepared
        # but not committed in the old view were dropped by the state
        # selection, and waiting for the client's next backoff retry would
        # race the replica-side progress timer.
        buffered, self._buffered_resends = self._buffered_resends, []
        if self.is_active:
            for resend in buffered:
                self.sim.call_soon(
                    lambda m=resend: self._on_resend("buffered", m))
            for state in self._retransmissions.values():
                if state.done or state.request.signature is None:
                    continue
                resend = msg.ReSend(state.request)
                self.sim.call_soon(
                    lambda m=resend: self._on_resend("replayed", m))
        # Start afresh in the new view.
        if self.is_primary:
            self.sequencer.reset_seen(
                req.rid for _, e in self.commit_log.items()
                for req in e.batch)
            # Slots prepared in the old view and re-adopted here are
            # carried state, outside the new view's pipeline window.
            self.sequencer.carry_over()
            self.sequencer.kick()

    def _on_vc_timer(self) -> None:
        """The view change did not complete in time (Section 4.3.2 (iii))."""
        if self.in_view_change:
            self._suspected_views.discard(self.view)
            self.suspect_view(self.view)

    # ==================================================================
    # Checkpointing -- Section 4.5.1
    # ==================================================================
    def _maybe_checkpoint(self, seqno: int) -> None:
        if seqno % self.config.checkpoint_period != 0:
            return
        if not self.is_active:
            return
        state_digest = self.app.state_digest()
        prechk = msg.PreChk(seqno, self.view, state_digest, self.replica_id)
        # 44 payload bytes + the 20-byte transport MAC = the 64 bytes the
        # embedded-MAC encoding used to put on the wire.
        self._fanout_with_self(
            self._active_names(), prechk, 44,
            lambda: self._record_prechk(seqno, self.replica_id,
                                        state_digest))

    def _on_prechk(self, src: str, m: msg.PreChk) -> None:
        # The channel MAC was stamped and verified by the transport
        # (MAC_VECTOR policy): a forged or tampered PRECHK never gets here.
        if m.view != self.view or not self.is_active:
            return
        if src != self.replica_name(m.sender):
            return  # a replica cannot inject PreChk votes for a peer
        self._record_prechk(m.seqno, m.sender, m.state_digest)

    def _record_prechk(self, seqno: int, sender: int,
                       state_digest: bytes) -> None:
        votes = self._prechk_votes.setdefault(seqno, {})
        votes[sender] = state_digest
        matching = [s for s, d in votes.items()
                    if d == votes.get(self.replica_id, d)]
        if self.replica_id not in votes or len(votes) < self.config.t + 1:
            return
        my_digest = votes[self.replica_id]
        if sum(1 for d in votes.values() if d == my_digest) \
                < self.config.t + 1:
            return
        if seqno in self._chkpt_sigs and self.replica_id in \
                self._chkpt_sigs[seqno]:
            return
        sig = self.sign(msg.chkpt_payload(seqno, self.view, my_digest,
                                          self.replica_id))
        chkpt = msg.Chkpt(seqno, self.view, my_digest, self.replica_id, sig)
        self._fanout_with_self(self._active_names(), chkpt, 96,
                               lambda: self._record_chkpt(chkpt))

    def _on_chkpt(self, src: str, m: msg.Chkpt) -> None:
        if m.view != self.view or not self.is_active:
            return
        self.cpu.charge_verify()
        if not self.keystore.verify(
                m.sig, msg.chkpt_payload(m.seqno, m.view, m.state_digest,
                                         m.sender)):
            return
        self._record_chkpt(m)

    def _record_chkpt(self, m: msg.Chkpt) -> None:
        sigs = self._chkpt_sigs.setdefault(m.seqno, {})
        sigs[m.sender] = m
        matching = [c for c in sigs.values()
                    if c.state_digest == m.state_digest]
        if len(matching) < self.config.t + 1:
            return
        if (self.stable_checkpoint is not None
                and self.stable_checkpoint.seqno >= m.seqno):
            return
        proof = msg.CheckpointProof(
            seqno=m.seqno, view=m.view, state_digest=m.state_digest,
            sigs=tuple(c.sig for c in matching[: self.config.t + 1]),
            snapshot=self.app.snapshot())
        self.stable_checkpoint = proof
        self.commit_log.truncate_to(m.seqno)
        self.prepare_log.truncate_to(m.seqno)
        self._prechk_votes = {sn: v for sn, v in self._prechk_votes.items()
                              if sn > m.seqno}
        self._chkpt_sigs = {sn: v for sn, v in self._chkpt_sigs.items()
                            if sn > m.seqno}
        self.multicast_authenticated(self._passive_names(),
                                     msg.LazyChk(proof), size_bytes=512)

    def _on_lazychk(self, src: str, m: msg.LazyChk) -> None:
        proof = m.proof
        if len(proof.sigs) < self.config.t + 1:
            return
        for sig in proof.sigs:
            self.cpu.charge_verify()
            if not self.keystore.verify_digest(
                    sig, sig.digest):
                return
        if self.ex >= proof.seqno:
            return
        self.app.restore(proof.snapshot)
        self.ex = proof.seqno
        self.sn = max(self.sn, proof.seqno)
        self.stable_checkpoint = proof
        self.commit_log.truncate_to(proof.seqno)
        self.prepare_log.truncate_to(proof.seqno)
        self._execute_ready()

    # ==================================================================
    # Lazy replication -- Section 4.5.2
    # ==================================================================
    def _lazy_replicate(self, entry: CommitEntry) -> None:
        if not self.config.use_lazy_replication:
            return
        passive = self.groups.passive(self.view)
        if not passive:
            return
        if self.config.t == 1:
            targets = passive
        else:
            followers = self.groups.followers(self.view)
            index = followers.index(self.replica_id) \
                if self.replica_id in followers else 0
            targets = (passive[index % len(passive)],)
        lazy = msg.LazyCommit(self.view, entry.seqno, entry)
        self.multicast_authenticated(
            [self.replica_name(target) for target in targets], lazy,
            size_bytes=entry.batch.size_bytes)

    def _on_lazy_commit(self, src: str, m: msg.LazyCommit) -> None:
        # A passive replica that entered a view it is not active in never
        # receives the NEW-VIEW; lazy traffic at or above that view is its
        # evidence that the change completed.
        if (m.view >= self.view and self.in_view_change
                and not self.groups.is_active(self.view, self.replica_id)):
            self.in_view_change = False
            self._vc_retx_timer.stop()
        # Lazy traffic from a newer view tells a (recovered) passive
        # replica that a view change completed while it was away: adopt
        # the view number so later suspicions reference the right view.
        if (m.view > self.view and not self.in_view_change
                and not self.groups.is_active(m.view, self.replica_id)):
            self.view = m.view
        if m.seqno in self.commit_log or m.seqno <= self.ex:
            return
        self.commit_log.put(m.seqno, m.entry)
        self._execute_ready()
        if self.ex + 1 < m.seqno:
            # A hole below this entry: some lazy messages were lost while
            # we were down.  Retrieve the missing state (Section 4.5.2).
            self._fetch_missing(self.ex + 1, m.seqno - 1)

    def _fetch_missing(self, from_seqno: int, to_seqno: int) -> None:
        if self._fetch_pending:
            return
        self._fetch_pending = True
        request = msg.FetchEntries(from_seqno, to_seqno, self.replica_id)
        self.multicast_authenticated(
            [name for name in self._active_names() if name != self.name],
            request, size_bytes=48)
        # Allow a re-fetch if the reply is lost.
        self.after(2 * self.config.delta_ms, self._clear_fetch_pending,
                   label="fetch-retry")

    def _clear_fetch_pending(self) -> None:
        self._fetch_pending = False

    def _on_fetch(self, src: str, m: msg.FetchEntries) -> None:
        entries = []
        for seqno in range(m.from_seqno, m.to_seqno + 1):
            entry = self.commit_log.get(seqno)
            if entry is not None:
                entries.append(entry)
        reply = msg.FetchReply(tuple(entries), self.stable_checkpoint)
        size = sum(e.batch.size_bytes for e in entries) + 64
        self.send_authenticated(src, reply, size_bytes=size)

    def _on_fetch_reply(self, src: str, m: msg.FetchReply) -> None:
        self._fetch_pending = False
        if (m.checkpoint is not None and m.checkpoint.seqno > self.ex
                and len(m.checkpoint.sigs) >= self.config.t + 1):
            self.app.restore(m.checkpoint.snapshot)
            self.ex = m.checkpoint.seqno
            self.sn = max(self.sn, m.checkpoint.seqno)
            self.stable_checkpoint = m.checkpoint
            self.commit_log.truncate_to(m.checkpoint.seqno)
            self.prepare_log.truncate_to(m.checkpoint.seqno)
        for entry in m.entries:
            if entry.seqno > self.ex and entry.seqno not in self.commit_log:
                self.commit_log.put(entry.seqno, entry)
        self._execute_ready()

    # ==================================================================
    # Request retransmission -- Algorithm 4
    # ==================================================================
    def _on_resend(self, src: str, m: msg.ReSend) -> None:
        if self.in_view_change:
            # The request cannot commit until the view change finishes;
            # buffer the retransmission and replay it in the new view.
            self._buffered_resends.append(m)
            return
        if not self.is_active:
            return
        request = m.request
        if not self._verify_request(request):
            return
        cached = self._last_reply.get(request.client)
        if cached is not None and cached.timestamp >= request.timestamp:
            # Already executed: re-answer immediately with signed replies.
            self._start_retransmission(request, already_executed=True)
            return
        if not self.is_primary:
            self.send_authenticated(
                self.replica_name(self.groups.primary(self.view)),
                msg.Replicate(request), size_bytes=request.size_bytes)
        else:
            self._on_replicate(src, msg.Replicate(request))
        self._start_retransmission(request, already_executed=False)

    def _start_retransmission(self, request: Request,
                              already_executed: bool) -> None:
        state = self._retransmissions.get(request.rid)
        if state is None:
            state = _RetransmissionState(request=request)
            state.timer = Timer(self, lambda rid=request.rid:
                                self._on_retransmission_timeout(rid),
                                "timer_req")
            self._retransmissions[request.rid] = state
        if state.done:
            return
        if state.timer is not None and not state.timer.armed:
            # The retransmitted request must commit within roughly one view
            # change (bounded by the 2-Delta collection phase) plus a round
            # of normal operation.
            state.timer.start(2 * self.config.delta_ms
                              + 8 * self.config.batch_timeout_ms)
        if already_executed:
            self._emit_signed_reply_share(request)

    def _emit_signed_reply_share(self, request: Request) -> None:
        cached = self._last_reply.get(request.client)
        if cached is None:
            return
        if cached.timestamp > request.timestamp:
            # The client already committed this request and moved on; the
            # retransmission is settled, not a liveness problem.
            self._settle_retransmission(request.rid)
            return
        if cached.timestamp != request.timestamp:
            return
        payload = msg.signed_reply_payload(
            cached.seqno, self.view, cached.timestamp, cached.client,
            cached.result_digest, self.replica_id)
        sig = self.sign(payload)
        share = msg.SignedReplyShare(
            view=self.view, seqno=cached.seqno, timestamp=cached.timestamp,
            client=cached.client, reply_digest=cached.result_digest,
            result=cached.result, sender=self.replica_id, sig=sig)
        self._fanout_with_self(
            self._active_names(), share, 96,
            lambda: self._on_signed_reply_share(self.name, share))

    def _on_signed_reply_share(self, src: str,
                               m: msg.SignedReplyShare) -> None:
        rid = (m.client, m.timestamp)
        state = self._retransmissions.get(rid)
        if state is None:
            # A peer is collecting signed replies for this request
            # (Algorithm 4 line 7: every active replica is asked to sign):
            # join in, contributing our own share once we have executed it.
            cached = self._last_reply.get(m.client)
            if cached is None or cached.timestamp < m.timestamp:
                return  # not executed here yet; our share will follow
            from repro.smr.messages import Request

            placeholder = Request(op=None, timestamp=m.timestamp,
                                  client=m.client)
            self._start_retransmission(placeholder, already_executed=True)
            state = self._retransmissions.get(rid)
            if state is None:
                return
        if state.done:
            return
        self.cpu.charge_verify()
        if not self.keystore.verify(
                m.sig, msg.signed_reply_payload(m.seqno, m.view, m.timestamp,
                                                m.client, m.reply_digest,
                                                m.sender)):
            return
        state.shares[m.sender] = m
        matching = [s for s in state.shares.values()
                    if (s.seqno, s.reply_digest) == (m.seqno, m.reply_digest)]
        if len(matching) >= self.config.t + 1:
            state.done = True
            if state.timer is not None:
                state.timer.stop()
            bundle = msg.SignedReplies(
                view=self.view,
                shares=tuple(sorted(matching, key=lambda s: s.sender)
                             [: self.config.t + 1]))
            self.send_authenticated(f"c{m.client}", bundle, size_bytes=256)

    def _settle_retransmission(self, rid: tuple) -> None:
        """Mark a retransmission as resolved and disarm its timer."""
        state = self._retransmissions.get(rid)
        if state is not None:
            state.done = True
            if state.timer is not None:
                state.timer.stop()

    def _on_retransmission_timeout(self, rid: tuple) -> None:
        state = self._retransmissions.get(rid)
        if state is None or state.done:
            return
        client, timestamp = rid
        cached = self._last_reply.get(client)
        if cached is not None and cached.timestamp > timestamp:
            # The client committed this request and moved past it: settled.
            self._settle_retransmission(rid)
            return
        if (cached is not None and cached.timestamp == timestamp
                and state.retries == 0):
            # We executed the request but the signed-reply quorum has not
            # formed (a peer may have missed the RE-SEND or a share was
            # lost).  Retry the collection once before suspecting; the
            # share exchange is a single active-to-active round trip, so
            # one Delta bounds it.
            state.retries += 1
            self._emit_signed_reply_share(state.request)
            if state.timer is not None:
                state.timer.start(self.config.delta_ms)
            return
        # Algorithm 4 lines 8-10: suspect the view and tell the client.
        view = self.view
        self.suspect_view(view)
        sig_payload = msg.suspect_payload(view, self.replica_id)
        sig = self.keystore.sign(self.principal, sig_payload)
        self.send_authenticated(f"c{state.request.client}",
                                msg.Suspect(view, self.replica_id, sig),
                                size_bytes=48)

    # ==================================================================
    # Fault accusations (Algorithm 6 lines 17-18)
    # ==================================================================
    def _on_fault_accusation(self, src: str, m: msg.FaultAccusation) -> None:
        if m.accused in self.detected_faulty:
            return
        self.detected_faulty.add(m.accused)
        self.multicast_authenticated(
            [n for n in self.all_replica_names()
             if n != self.name and n != src],
            m, size_bytes=256)

    def broadcast_accusation(self, accusation: msg.FaultAccusation) -> None:
        """Broadcast a fault-detection accusation to every replica."""
        self.detected_faulty.add(accusation.accused)
        self.multicast_authenticated(self.other_replica_names(), accusation,
                                     size_bytes=256)

    # ==================================================================
    # Crash / recovery
    # ==================================================================
    def recover(self) -> None:
        """Recover with durable protocol state.

        We model replicas with synchronously persisted logs and application
        state (the strongest practical recovery discipline): ``view``,
        ``sn``, ``ex``, both logs, and the app survive; volatile vote /
        view-change buffers do not.
        """
        self._crashed = False  # Process.recover without the app reset
        self._commit_votes.clear()
        self._pending_prepares.clear()
        self.sequencer.pending.clear()
        self._retransmissions.clear()
        # A recovering replica cannot tell whether its view is stale; it
        # rejoins and relies on suspect/view-change traffic to catch up.
        self.in_view_change = False
