"""Replication protocols: XPaxos and the baselines it is compared against."""

from repro.protocols.registry import build_cluster, PROTOCOL_BUILDERS

__all__ = ["build_cluster", "PROTOCOL_BUILDERS"]
