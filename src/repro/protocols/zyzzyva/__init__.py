"""Zyzzyva: speculative BFT (the paper's second BFT baseline, Figure 6b)."""

from repro.protocols.zyzzyva.replica import ZyzzyvaReplica
from repro.protocols.zyzzyva.client import ZyzzyvaClient

__all__ = ["ZyzzyvaReplica", "ZyzzyvaClient"]
