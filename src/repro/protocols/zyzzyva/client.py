"""Zyzzyva client: fast path commits on all 3t + 1 matching responses."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.protocols.base import GenericReply, QuorumClient
from repro.protocols.zyzzyva.replica import CommitCert


class ZyzzyvaClient(QuorumClient):
    """Closed-loop client committing on all ``3t + 1`` speculative replies.

    When the retransmission timer fires while the client already holds
    ``2t + 1`` matching speculative responses (a replica is slow or down),
    it assembles a commit certificate from them, forwards it to every
    replica (:class:`CommitCert`), and completes -- the protocol's second
    phase, with the grace period modelled by the timer.
    """

    def __init__(self, client_id, config, sim, network, keystore, site,
                 cost_model=None) -> None:
        assert config.n is not None
        super().__init__(client_id, config, sim, network, keystore, site,
                         reply_quorum=config.n, cost_model=cost_model)
        self.fallback_commits = 0

    def _on_timeout(self) -> None:
        request = self._request
        if request is None:
            return
        groups: Dict[Tuple, List[GenericReply]] = {}
        for reply in self._replies.values():
            groups.setdefault((reply.seqno, reply.result_digest),
                              []).append(reply)
        need = 2 * self.config.t + 1
        for (seqno, digest), replies in sorted(groups.items(),
                                               key=lambda kv: kv[0][0]):
            if len(replies) < need:
                continue
            cert = CommitCert(
                view=max(r.view for r in replies), seqno=seqno,
                result_digest=digest, client=self.client_id,
                timestamp=request.timestamp,
                repliers=tuple(sorted(r.replica for r in replies)))
            assert self.config.n is not None
            names = [f"r{r}" for r in range(self.config.n)]
            self.multicast_authenticated(names, cert, size_bytes=96)
            self.fallback_commits += 1
            full = next((r.result for r in replies
                         if r.result is not None), replies[0].result)
            self._complete(request, full)
            return
        super()._on_timeout()
