"""Zyzzyva client: fast path commits on all 3t + 1 matching responses."""

from __future__ import annotations

from repro.protocols.base import QuorumClient


class ZyzzyvaClient(QuorumClient):
    """Closed-loop client committing on all ``3t + 1`` speculative replies.

    The fault-free evaluation always completes on the fast path; a
    commit-certificate fallback on ``2t + 1`` matching replies is modelled
    by the retransmission timer re-driving the request (the second phase's
    extra round trip is dominated by the timer in WAN settings).
    """

    def __init__(self, client_id, config, sim, network, keystore, site,
                 cost_model=None) -> None:
        assert config.n is not None
        super().__init__(client_id, config, sim, network, keystore, site,
                         reply_quorum=config.n, cost_model=cost_model)
