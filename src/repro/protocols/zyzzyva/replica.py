"""Zyzzyva replica (Figure 6b).

The paper chose Zyzzyva "because it is the fastest BFT protocol that
involves all replicas in the common case" (Section 5.1.2).  The
speculative fast path:

1. client -> primary: request;
2. primary -> all 3t other replicas: ``ORDER-REQ(sn, batch)``;
3. every replica *speculatively executes* immediately and sends a
   ``SPEC-RESPONSE`` straight to the client;
4. the client commits when all ``3t + 1`` speculative responses match.

If fewer than 3t + 1 but at least 2t + 1 match, the client assembles a
*commit certificate* from the matching responses, forwards it to the
replicas (:class:`CommitCert`), and completes -- the real protocol's
second phase, with its message bookkeeping reduced to the certificate
itself.  A replica that receives a certificate for a slot it never saw
knows the primary failed to deliver its ORDER-REQ: it fetches the gap and
starts suspecting the primary.

View change: replicas suspecting the primary broadcast ``VIEW-CHANGE``
messages carrying their speculative histories (their commit logs -- in
Zyzzyva speculative execution *is* commitment, to be rolled back only
across view changes, which the certificate forwarding makes unnecessary
for crash faults); the new primary merges the longest certified history,
announces ``NEW-VIEW``, and resumes ordering above it.

History digest: every ``ORDER-REQ`` carries the primary's rolling history
``h_n = D(h_{n-1}, d_n)``.  Replicas recompute it in *execution* order and
check it against the primary's claim as each slot executes; a mismatch
(``history_divergences``) triggers a sync from the primary and starts the
election timer.  Across view changes the rolling digest is re-anchored
deterministically from the ``NEW-VIEW``'s merged entries, so the check
stays live in every view -- the primary of view ``v+1`` cannot quietly
present a history that contradicts what the quorum handed it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.crypto.primitives import Digest, digest_of
from repro.protocols.base import BaselineReplica, register_modeled
from repro.smr.log import CommitEntry
from repro.smr.messages import Batch


@register_modeled
@dataclass(frozen=True)
class OrderReq:
    """Primary -> all replicas: speculative ordering of a batch."""

    view: int
    seqno: int
    batch: Batch
    batch_digest: Digest
    history_digest: Digest


@register_modeled
@dataclass(frozen=True)
class CommitCert:
    """Client -> all replicas: 2t + 1 matching speculative responses for
    one slot (the fallback path's commit proof)."""

    view: int
    seqno: int
    result_digest: Digest
    client: int
    timestamp: int
    repliers: Tuple[int, ...]


@register_modeled
@dataclass(frozen=True)
class ViewChange:
    """Suspecting replica -> all: its speculative history for ``view``."""

    view: int
    sender: int
    executed_upto: int
    entries: Tuple[Tuple[int, Batch], ...]


@register_modeled
@dataclass(frozen=True)
class NewView:
    """New primary -> all: the merged history the new view starts from."""

    view: int
    sender: int
    executed_upto: int
    entries: Tuple[Tuple[int, Batch], ...]


class ZyzzyvaReplica(BaselineReplica):
    """One replica of the Zyzzyva deployment (n = 3t + 1, all active)."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._history = Digest(b"\x00" * 32)
        #: Highest seqno the rolling history digest covers.
        self._history_covered = 0
        #: False after a view change or state-transfer jump, until the
        #: next NEW-VIEW re-anchors the digest (checks are suspended).
        self._history_anchored = True
        #: seqno -> history digest the primary's ORDER-REQ claimed.
        self._claimed_history: Dict[int, Digest] = {}
        #: seqno -> batch digest from the ORDER-REQ (avoids recomputing).
        self._order_digests: Dict[int, Digest] = {}
        #: Primary history claims that failed verification.
        self.history_divergences = 0
        self.certs_received = 0

    def supports_view_change(self) -> bool:
        return True

    def view_change_quorum(self) -> int:
        return 2 * self.config.t + 1

    def on_protocol_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, OrderReq):
            self._on_order_req(src, payload)
        elif isinstance(payload, CommitCert):
            self._on_commit_cert(payload)
        elif isinstance(payload, ViewChange):
            self.on_view_change_msg(payload.sender, payload.view, payload)
        elif isinstance(payload, NewView):
            self._on_new_view(src, payload)

    def propose_batch(self, seqno: int, batch: Batch) -> None:
        digest = self.batch_digest(batch)
        history = self._claim_history(seqno, digest)
        self._order_digests[seqno] = digest
        order = OrderReq(self.view, seqno, batch, digest, history)
        assert self.config.n is not None
        peers = [f"r{r}" for r in range(self.config.n)
                 if r != self.replica_id]
        self.multicast_authenticated(peers, order,
                                     size_bytes=batch.size_bytes)
        # The primary executes speculatively too.
        self.commit_batch(seqno, batch)

    def _on_order_req(self, src: str, m: OrderReq) -> None:
        if m.view > self.view and src == f"r{self.new_leader_of(m.view)}":
            # A fresher view's primary is ordering: its view change
            # completed (the NEW-VIEW may still be in flight).
            self.enter_view(m.view)
        if m.view != self.view or self.is_leader or self.campaigning:
            return
        self.cpu.charge_mac(m.batch.size_bytes)
        self._claimed_history[m.seqno] = m.history_digest
        self._order_digests[m.seqno] = m.batch_digest
        # Speculative execution: commit immediately on the primary's order.
        self.commit_batch(m.seqno, m.batch)

    def _on_commit_cert(self, m: CommitCert) -> None:
        self.cpu.charge_mac(96)
        self.certs_received += 1
        if m.seqno not in self.commit_log and m.seqno > self.ex:
            # A certified slot we never received: the primary failed to
            # deliver our ORDER-REQ.  Repair the gap from a certifying
            # replica and start suspecting the primary.
            if m.repliers:
                self.request_sync(m.repliers[0])
            if not self.is_leader \
                    and not self._election_timer.armed:
                self._election_timer.start(
                    self.config.request_retransmit_ms)

    # -- history digest ---------------------------------------------------
    def _claim_history(self, seqno: int, digest: Digest) -> Digest:
        """The history digest the primary advertises for ``seqno``.

        ``h_n = D(h_{n-1}, d_n)`` when the rolling digest is contiguous up
        to ``seqno``; the extension is applied here (the synchronous
        execution that follows sees ``seqno`` already covered and skips
        it, so the digest is computed exactly once per proposal).  A
        primary proposing over a hole (sparse merge) ships its current
        digest and drops the anchor -- followers then skip verification
        until the next NEW-VIEW re-anchors everyone.
        """
        if self._history_anchored and seqno == self._history_covered + 1:
            self.cpu.charge_digest(64)
            self._history = digest_of((self._history, digest))
            self._history_covered = seqno
            return self._history
        self._history_anchored = False
        return self._history

    def _advance_history(self, seqno: int, batch: Batch) -> None:
        """Extend the rolling digest in execution order and verify the
        primary's claim for this slot (execution order *is* seqno order,
        unlike arrival order, so every replica computes the same h_n)."""
        claimed = self._claimed_history.pop(seqno, None)
        digest = self._order_digests.pop(seqno, None)
        if not self._history_anchored or seqno <= self._history_covered:
            return
        if seqno != self._history_covered + 1:
            # A state-transfer jump outran the rolling digest; re-anchor
            # at the next NEW-VIEW rather than verify against garbage.
            self._history_anchored = False
            return
        if digest is None:  # slot arrived via sync, not an ORDER-REQ
            digest = self.batch_digest(batch)
        self.cpu.charge_digest(64)
        self._history = digest_of((self._history, digest))
        self._history_covered = seqno
        if claimed is not None and claimed != self._history:
            self._on_history_divergence(seqno)

    def _on_history_divergence(self, seqno: int) -> None:
        """The primary's claimed history contradicts the locally
        recomputed one: our speculative state diverged from the primary's
        (a dropped/reordered slot, or a lying primary).  Repair via sync
        and start suspecting."""
        self.history_divergences += 1
        self._history_anchored = False
        if not self.is_leader:
            self.request_sync(self.leader_id)
            if not self._election_timer.armed:
                self._election_timer.start(
                    self.config.request_retransmit_ms)

    def _anchor_history(self, view: int,
                        entries: Tuple[Tuple[int, Batch], ...]) -> None:
        """Deterministically rebuild the rolling digest from a NEW-VIEW's
        merged entries, then replay any slots this replica already
        executed past the merge.  Every replica anchors from the same
        entries, so the digests agree in the new view no matter how far
        each replica's speculation had run."""
        self.cpu.charge_digest(64 * max(1, len(entries)))
        history = digest_of(("zyzzyva-history", view))
        covered = 0
        for sn, batch in entries:
            history = digest_of((history, batch.bodies_digest()))
            covered = sn
        self._history = history
        self._history_covered = covered
        self._history_anchored = True
        self._claimed_history.clear()
        self._order_digests.clear()
        for sn in range(covered + 1, self.ex + 1):
            entry = self.commit_log.get(sn)
            if entry is None:
                self._history_anchored = False
                return
            self._history = digest_of(
                (self._history, entry.batch.bodies_digest()))
            self._history_covered = sn

    def on_enter_view(self, view: int) -> None:
        # The old view's claims are void; checks stay suspended until the
        # NEW-VIEW re-anchors the rolling digest.
        self._history_anchored = False
        self._claimed_history.clear()
        self._order_digests.clear()

    def after_execute(self, seqno: int, batch: Batch,
                      results: List[Any]) -> None:
        self._advance_history(seqno, batch)
        # Every replica sends a speculative response to the client.
        self.reply_to_clients(seqno, batch, results)

    # -- view change ------------------------------------------------------
    def make_view_change(self, target: int) -> ViewChange:
        entries = tuple((sn, entry.batch)
                        for sn, entry in self.commit_log.items())
        return ViewChange(target, self.replica_id, self.ex, entries)

    def view_change_size(self, message: ViewChange) -> int:
        return sum(b.size_bytes + 16 for _, b in message.entries) + 128

    def install_view(self, target: int, msgs: Dict[int, Any]) -> None:
        merged: Dict[int, Batch] = {}
        freshest = self.replica_id
        freshest_ex = self.ex
        for m in msgs.values():
            for sn, batch in m.entries:
                merged.setdefault(sn, batch)
            if m.executed_upto > freshest_ex:
                freshest, freshest_ex = m.sender, m.executed_upto
        for sn in sorted(merged):
            if sn > self.ex and sn not in self.commit_log:
                self.commit_log.put(
                    sn, CommitEntry(sn, target, merged[sn], ()))
        self.execute_ready()
        announcement = NewView(target, self.replica_id, self.ex,
                               tuple(sorted(merged.items())))
        size = sum(b.size_bytes for b in merged.values()) + 128
        self.multicast_authenticated(self.other_replica_names(),
                                     announcement, size_bytes=size)
        self._anchor_history(target, announcement.entries)
        self.sn = max(self.sn, self.ex, max(merged, default=0))
        if freshest_ex > self.ex:
            self.request_sync(freshest)

    def _on_new_view(self, src: str, m: NewView) -> None:
        if m.view < self.view or src != f"r{self.new_leader_of(m.view)}":
            return
        self.cpu.charge_mac(128)
        for sn, batch in m.entries:
            if sn > self.ex and sn not in self.commit_log:
                self.commit_log.put(sn, CommitEntry(sn, m.view, batch, ()))
        self.enter_view(m.view)
        self._anchor_history(m.view, m.entries)
        self.sn = max(self.sn, self.ex,
                      max((sn for sn, _ in m.entries), default=0))
        self.execute_ready()
        if m.executed_upto > self.ex:
            self.request_sync(m.sender)
