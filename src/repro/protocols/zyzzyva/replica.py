"""Zyzzyva replica (Figure 6b).

The paper chose Zyzzyva "because it is the fastest BFT protocol that
involves all replicas in the common case" (Section 5.1.2).  The
speculative fast path:

1. client -> primary: request;
2. primary -> all 3t other replicas: ``ORDER-REQ(sn, batch)``;
3. every replica *speculatively executes* immediately and sends a
   ``SPEC-RESPONSE`` straight to the client;
4. the client commits when all ``3t + 1`` speculative responses match.

If fewer than 3t + 1 but at least 2t + 1 match, the real protocol runs the
commit-certificate round; the client here falls back to accepting 2t + 1
matching responses after a grace period, which models that second phase's
latency without its message bookkeeping (the evaluation is fault-free, so
the fast path dominates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List

from repro.crypto.primitives import Digest
from repro.protocols.base import BaselineReplica, ClientRequestMsg
from repro.smr.messages import Batch


@dataclass(frozen=True)
class OrderReq:
    """Primary -> all replicas: speculative ordering of a batch."""

    view: int
    seqno: int
    batch: Batch
    batch_digest: Digest
    history_digest: Digest


class ZyzzyvaReplica(BaselineReplica):
    """One replica of the Zyzzyva deployment (n = 3t + 1, all active)."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._history = Digest(b"\x00" * 32)

    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, ClientRequestMsg):
            self.receive_request(payload.request)
        elif isinstance(payload, OrderReq):
            self._on_order_req(src, payload)

    def propose_batch(self, seqno: int, batch: Batch) -> None:
        digest = self.batch_digest(batch)
        history = self._extend_history(digest)
        order = OrderReq(self.view, seqno, batch, digest, history)
        assert self.config.n is not None
        peers = [f"r{r}" for r in range(self.config.n)
                 if r != self.replica_id]
        self.cpu.charge_macs(len(peers), batch.size_bytes)
        self.multicast(peers, order, size_bytes=batch.size_bytes)
        # The primary executes speculatively too.
        self.commit_batch(seqno, batch)

    def _on_order_req(self, src: str, m: OrderReq) -> None:
        if m.view != self.view or self.is_leader:
            return
        self.cpu.charge_mac(m.batch.size_bytes)
        self._extend_history(m.batch_digest)
        # Speculative execution: commit immediately on the primary's order.
        self.commit_batch(m.seqno, m.batch)

    def _extend_history(self, digest: Digest) -> Digest:
        """Zyzzyva's rolling history digest ``h_n = D(h_{n-1}, d_n)``."""
        from repro.crypto.primitives import digest_of

        self.cpu.charge_digest(64)
        self._history = digest_of((self._history, digest))
        return self._history

    def after_execute(self, seqno: int, batch: Batch,
                      results: List[Any]) -> None:
        # Every replica sends a speculative response to the client.
        self.reply_to_clients(seqno, batch, results)
