"""Zab: ZooKeeper's native atomic broadcast (baseline for Figure 10)."""

from repro.protocols.zab.replica import ZabReplica
from repro.protocols.zab.client import ZabClient

__all__ = ["ZabReplica", "ZabClient"]
