"""Zab replica: ZooKeeper's primary-backup atomic broadcast.

Zab [Junqueira et al., DSN'11] is crash-resilient with 2t + 1 replicas.
Common-case (broadcast) flow for a stable leader:

1. client -> leader: request;
2. leader -> **all 2t followers**: ``PROPOSAL(zxid, batch)``;
3. follower -> leader: ``ACK(zxid)`` after durably logging the proposal;
4. on a quorum of acks (majority incl. leader), the leader sends
   ``COMMITZAB(zxid)`` to all followers, delivers, and replies.

The detail driving Figure 10's result is step 2: the Zab leader ships every
request to *2t* followers, whereas the XPaxos primary ships to only *t*
followers, so with the leader's WAN uplink as the bottleneck XPaxos reaches
a higher peak throughput (Section 5.5).

Epoch change: a follower that suspects the leader broadcasts a
``FOLLOWER-INFO`` for the next epoch carrying its acked history (committed
entries plus acked-but-uncommitted proposals; the old leader contributes
its in-flight proposals the same way).  The prospective leader
(``epoch mod n``) collects a majority of these, keeps the entry acked in
the highest epoch per zxid -- the freshest acked prefix -- announces
``NEW-EPOCH``, and re-proposes that history in the new epoch, which both
re-commits anything the old quorum had accepted and synchronises lagging
followers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Set, Tuple

from repro.crypto.primitives import digest_of
from repro.protocols.base import BaselineReplica, GenericReply, \
    register_modeled
from repro.smr.messages import Batch


@register_modeled
@dataclass(frozen=True)
class Proposal:
    """Leader -> followers: a proposed transaction (zxid = seqno here)."""

    epoch: int
    seqno: int
    batch: Batch


@register_modeled
@dataclass(frozen=True)
class Ack:
    """Follower -> leader: proposal durably logged."""

    epoch: int
    seqno: int
    sender: int


@register_modeled
@dataclass(frozen=True)
class CommitZab:
    """Leader -> followers: deliver the transaction."""

    epoch: int
    seqno: int


@register_modeled
@dataclass(frozen=True)
class FollowerInfo:
    """Suspecting replica -> all: acked history for the target epoch.

    ``entries`` is ``(seqno, epoch acked in, batch)``; the new leader keeps
    the highest-epoch entry per slot.
    """

    epoch: int
    sender: int
    executed_upto: int
    entries: Tuple[Tuple[int, int, Batch], ...]


@register_modeled
@dataclass(frozen=True)
class NewEpoch:
    """New leader -> all: the epoch is installed; history follows as
    re-proposals (lagging followers sync from the leader)."""

    epoch: int
    sender: int
    executed_upto: int


class ZabReplica(BaselineReplica):
    """One replica of a Zab ensemble (n = 2t + 1)."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._proposed: Dict[int, Batch] = {}
        self._acks: Dict[int, Set[int]] = {}
        self._pending_commits: Dict[int, Batch] = {}
        # COMMITZAB can outrun its PROPOSAL across links: remember the
        # zxid and deliver as soon as the proposal arrives instead of
        # silently losing the commit.
        self._early_commits: Set[int] = set()

    def follower_ids(self) -> List[int]:
        """All 2t followers of the current epoch."""
        assert self.config.n is not None
        return [r for r in range(self.config.n) if r != self.leader_id]

    def supports_view_change(self) -> bool:
        return True

    def on_protocol_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, Proposal):
            self._on_proposal(src, payload)
        elif isinstance(payload, Ack):
            self._on_ack(payload)
        elif isinstance(payload, CommitZab):
            self._on_commit(payload)
        elif isinstance(payload, FollowerInfo):
            self.on_view_change_msg(payload.sender, payload.epoch, payload)
        elif isinstance(payload, NewEpoch):
            self._on_new_epoch(src, payload)

    def propose_batch(self, seqno: int, batch: Batch) -> None:
        self._proposed[seqno] = batch
        self._acks[seqno] = {self.replica_id}
        proposal = Proposal(self.view, seqno, batch)
        # The leader ships the full payload to ALL followers -- the
        # bandwidth profile that caps Zab's peak throughput in Figure 10.
        followers = [f"r{f}" for f in self.follower_ids()]
        self.multicast_authenticated(followers, proposal,
                                     size_bytes=batch.size_bytes)

    def _on_proposal(self, src: str, m: Proposal) -> None:
        if m.epoch > self.view and src == f"r{self.new_leader_of(m.epoch)}":
            # A fresher epoch's leader is proposing: its election
            # completed (the NEW-EPOCH may still be in flight).
            self.enter_view(m.epoch)
        if m.epoch != self.view or self.is_leader or self.campaigning:
            return
        self.cpu.charge_mac(m.batch.size_bytes)
        self._pending_commits[m.seqno] = m.batch
        self.send_authenticated(f"r{self.leader_id}",
                                Ack(m.epoch, m.seqno, self.replica_id),
                                size_bytes=32)
        if m.seqno in self._early_commits:
            self._early_commits.discard(m.seqno)
            self._deliver(m.seqno)

    def _on_ack(self, m: Ack) -> None:
        if m.epoch != self.view or not self.is_leader:
            return
        self.cpu.charge_mac(32)
        acks = self._acks.get(m.seqno)
        if acks is None:
            return
        acks.add(m.sender)
        if len(acks) >= self.config.quorum:
            batch = self._proposed.pop(m.seqno, None)
            self._acks.pop(m.seqno, None)
            if batch is None:
                return
            commit = CommitZab(self.view, m.seqno)
            followers = [f"r{f}" for f in self.follower_ids()]
            self.multicast_authenticated(followers, commit, size_bytes=32)
            self.commit_batch(m.seqno, batch)

    def _on_commit(self, m: CommitZab) -> None:
        self.cpu.charge_mac(32)
        if m.seqno not in self._pending_commits:
            if m.seqno > self.ex and m.seqno not in self.commit_log:
                # The commit outran its proposal: buffer the zxid until
                # the proposal lands rather than losing it forever.
                self._early_commits.add(m.seqno)
            return
        self._deliver(m.seqno)

    def _deliver(self, seqno: int) -> None:
        batch = self._pending_commits.pop(seqno)
        self.commit_batch(seqno, batch)

    def after_execute(self, seqno: int, batch: Batch,
                      results: List[Any]) -> None:
        if self.is_leader:
            self.reply_to_clients(seqno, batch, results)
        else:
            # Followers cache their replies so a later leader answers
            # retried requests from the cache instead of re-ordering them.
            for request, result in zip(batch, results):
                self._last_reply[request.client] = GenericReply(
                    replica=self.replica_id, view=self.view, seqno=seqno,
                    timestamp=request.timestamp, client=request.client,
                    result=result, result_digest=digest_of(result))

    # -- epoch change -----------------------------------------------------
    def on_enter_view(self, view: int) -> None:
        # In-flight proposals of the old epoch either had a quorum of acks
        # (then some majority member reported them and the new leader
        # re-proposes them) or are re-driven by client retransmission.
        self._proposed.clear()
        self._acks.clear()
        self._pending_commits.clear()
        self._early_commits.clear()

    def make_view_change(self, target: int) -> FollowerInfo:
        entries: Dict[int, Tuple[int, Batch]] = {}
        for sn, entry in self.commit_log.items():
            entries[sn] = (entry.view, entry.batch)
        for sn, batch in self._pending_commits.items():
            entries.setdefault(sn, (self.view, batch))
        for sn, batch in self._proposed.items():
            entries.setdefault(sn, (self.view, batch))
        return FollowerInfo(
            target, self.replica_id, self.ex,
            tuple((sn, epoch, batch)
                  for sn, (epoch, batch) in sorted(entries.items())))

    def view_change_size(self, message: FollowerInfo) -> int:
        return (sum(b.size_bytes + 24 for _, _, b in message.entries)
                + 128)

    def install_view(self, target: int, msgs: Dict[int, Any]) -> None:
        # Freshest acked prefix: per slot, the entry acked in the highest
        # epoch wins (any committed slot was acked by a majority, which
        # intersects this majority of FOLLOWER-INFOs).
        merged: Dict[int, Tuple[int, Batch]] = {}
        for m in msgs.values():
            for sn, epoch, batch in m.entries:
                current = merged.get(sn)
                if current is None or epoch > current[0]:
                    merged[sn] = (epoch, batch)
        announcement = NewEpoch(target, self.replica_id, self.ex)
        self.multicast_authenticated(self.other_replica_names(),
                                     announcement, size_bytes=64)
        self.sn = max(self.sn, self.ex, max(merged, default=0))
        for sn in sorted(merged):
            if sn <= self.ex and sn in self.commit_log:
                continue
            _, batch = merged[sn]
            self.propose_batch(sn, batch)

    def _on_new_epoch(self, src: str, m: NewEpoch) -> None:
        if m.epoch < self.view or src != f"r{self.new_leader_of(m.epoch)}":
            return
        self.cpu.charge_mac(64)
        self.enter_view(m.epoch)
        if m.executed_upto > self.ex:
            self.request_sync(m.sender)
