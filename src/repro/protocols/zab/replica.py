"""Zab replica: ZooKeeper's primary-backup atomic broadcast.

Zab [Junqueira et al., DSN'11] is crash-resilient with 2t + 1 replicas.
Common-case (broadcast) flow for a stable leader:

1. client -> leader: request;
2. leader -> **all 2t followers**: ``PROPOSAL(zxid, batch)``;
3. follower -> leader: ``ACK(zxid)`` after durably logging the proposal;
4. on a quorum of acks (majority incl. leader), the leader sends
   ``COMMITZAB(zxid)`` to all followers, delivers, and replies.

The detail driving Figure 10's result is step 2: the Zab leader ships every
request to *2t* followers, whereas the XPaxos primary ships to only *t*
followers, so with the leader's WAN uplink as the bottleneck XPaxos reaches
a higher peak throughput (Section 5.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Set

from repro.crypto.primitives import Digest
from repro.protocols.base import BaselineReplica, ClientRequestMsg
from repro.smr.messages import Batch


@dataclass(frozen=True)
class Proposal:
    """Leader -> followers: a proposed transaction (zxid = seqno here)."""

    epoch: int
    seqno: int
    batch: Batch


@dataclass(frozen=True)
class Ack:
    """Follower -> leader: proposal durably logged."""

    epoch: int
    seqno: int
    sender: int


@dataclass(frozen=True)
class CommitZab:
    """Leader -> followers: deliver the transaction."""

    epoch: int
    seqno: int


class ZabReplica(BaselineReplica):
    """One replica of a Zab ensemble (n = 2t + 1)."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._proposed: Dict[int, Batch] = {}
        self._acks: Dict[int, Set[int]] = {}
        self._pending_commits: Dict[int, Batch] = {}

    def follower_ids(self) -> List[int]:
        """All 2t followers of the current epoch."""
        assert self.config.n is not None
        return [r for r in range(self.config.n) if r != self.leader_id]

    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, ClientRequestMsg):
            self.receive_request(payload.request)
        elif isinstance(payload, Proposal):
            self._on_proposal(src, payload)
        elif isinstance(payload, Ack):
            self._on_ack(payload)
        elif isinstance(payload, CommitZab):
            self._on_commit(payload)

    def propose_batch(self, seqno: int, batch: Batch) -> None:
        self._proposed[seqno] = batch
        self._acks[seqno] = {self.replica_id}
        proposal = Proposal(self.view, seqno, batch)
        # The leader ships the full payload to ALL followers -- the
        # bandwidth profile that caps Zab's peak throughput in Figure 10.
        followers = [f"r{f}" for f in self.follower_ids()]
        self.cpu.charge_macs(len(followers), batch.size_bytes)
        self.multicast(followers, proposal, size_bytes=batch.size_bytes)

    def _on_proposal(self, src: str, m: Proposal) -> None:
        if m.epoch != self.view or self.is_leader:
            return
        self.cpu.charge_mac(m.batch.size_bytes)
        self._pending_commits[m.seqno] = m.batch
        self.send(f"r{self.leader_id}",
                  Ack(m.epoch, m.seqno, self.replica_id), size_bytes=32)

    def _on_ack(self, m: Ack) -> None:
        if m.epoch != self.view or not self.is_leader:
            return
        self.cpu.charge_mac(32)
        acks = self._acks.get(m.seqno)
        if acks is None:
            return
        acks.add(m.sender)
        if len(acks) >= self.config.quorum:
            batch = self._proposed.pop(m.seqno, None)
            self._acks.pop(m.seqno, None)
            if batch is None:
                return
            commit = CommitZab(self.view, m.seqno)
            followers = [f"r{f}" for f in self.follower_ids()]
            self.cpu.charge_macs(len(followers), 32)
            self.multicast(followers, commit, size_bytes=32)
            self.commit_batch(m.seqno, batch)

    def _on_commit(self, m: CommitZab) -> None:
        batch = self._pending_commits.pop(m.seqno, None)
        if batch is None:
            return
        self.cpu.charge_mac(32)
        self.commit_batch(m.seqno, batch)

    def after_execute(self, seqno: int, batch: Batch,
                      results: List[Any]) -> None:
        if self.is_leader:
            self.reply_to_clients(seqno, batch, results)
