"""Zab client: the leader's reply is authoritative (CFT)."""

from __future__ import annotations

from repro.protocols.base import QuorumClient


class ZabClient(QuorumClient):
    """Closed-loop client committing on the leader's single reply."""

    def __init__(self, client_id, config, sim, network, keystore, site,
                 cost_model=None) -> None:
        super().__init__(client_id, config, sim, network, keystore, site,
                         reply_quorum=1, cost_model=cost_model)
