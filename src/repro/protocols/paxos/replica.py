"""WAN-optimized multi-Paxos replica (Figure 6c).

The paper compares against "a very efficient WAN-optimized variant of
crash-tolerant Paxos inspired by [Megastore, MDCC, Spanner]" that
"requires 2t + 1 replicas to tolerate t faults, but involves t + 1 replicas
in the common case, i.e., just like XPaxos" (Section 5.1.2).

Common case for a stable leader (phase 2 only):

1. client -> leader: request;
2. leader -> the ``t`` common-case acceptors: ``ACCEPT(ballot, sn, batch)``;
3. acceptor -> leader: ``ACCEPTED(sn)``;
4. once all ``t`` acceptors answered (leader + t = majority of 2t+1), the
   leader commits, executes, replies to the client, and lazily propagates
   the decision to the remaining ``t`` replicas.

Leader failover (phase 1) is implemented so the baseline survives leader
crashes: a non-leader that sees client requests stall starts an election
timer; on expiry it advances the ballot, broadcasts ``NEW-BALLOT``, gathers
a majority of ``PROMISE`` messages carrying accepted entries, re-proposes
the merged log, and resumes the common case.

Only MACs are used -- crash faults cannot forge messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.crypto.primitives import Digest, digest_of
from repro.protocols.base import (
    BaselineReplica,
    GenericReply,
    register_modeled,
)
from repro.smr.messages import Batch


@register_modeled
@dataclass(frozen=True)
class Accept:
    """Leader -> acceptor: order ``batch`` at ``seqno`` (phase 2a)."""

    view: int
    seqno: int
    batch: Batch
    batch_digest: Digest


@register_modeled
@dataclass(frozen=True)
class Accepted:
    """Acceptor -> leader: phase-2b acknowledgement."""

    view: int
    seqno: int
    batch_digest: Digest
    sender: int


@register_modeled
@dataclass(frozen=True)
class Learn:
    """Leader -> passive replicas: the decided batch (lazy propagation)."""

    view: int
    seqno: int
    batch: Batch


@register_modeled
@dataclass(frozen=True)
class NewBallot:
    """Prospective leader -> all: phase 1a for ballot ``view``."""

    view: int
    sender: int


@register_modeled
@dataclass(frozen=True)
class Promise:
    """Replica -> prospective leader: phase 1b.

    Carries the replica's accepted-but-possibly-undecided entries as
    ``(seqno, accepted_ballot, batch)`` tuples plus its execution horizon.
    """

    view: int
    sender: int
    entries: Tuple[Tuple[int, int, Batch], ...]
    executed_upto: int


class PaxosReplica(BaselineReplica):
    """One replica of the WAN-optimized Paxos deployment."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._acks: Dict[int, Set[int]] = {}
        self._proposed: Dict[int, Batch] = {}
        # Accepted-but-undecided state kept for failover re-proposal:
        # seqno -> (ballot, batch).
        self._accepted: Dict[int, Tuple[int, Batch]] = {}
        # Election state (the election timer itself lives in the base).
        self._promises: Dict[int, Promise] = {}
        self._pending_ballot: Optional[int] = None

    # -- roles ------------------------------------------------------------
    def supports_view_change(self) -> bool:
        return True
    def common_case_acceptors(self) -> List[int]:
        """The ``t`` acceptors contacted in the common case: the lowest
        replica ids after the leader (the paper places them in the closest
        datacenters, which the site layout reflects)."""
        assert self.config.n is not None
        others = [r for r in range(self.config.n) if r != self.leader_id]
        return others[: self.config.t]

    def passive_ids(self) -> List[int]:
        """Replicas outside the common case (learn lazily)."""
        assert self.config.n is not None
        active = {self.leader_id, *self.common_case_acceptors()}
        return [r for r in range(self.config.n) if r not in active]

    # -- message handling ---------------------------------------------------
    def on_protocol_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, Accept):
            self._on_accept(src, payload)
        elif isinstance(payload, Accepted):
            self._on_accepted(payload)
        elif isinstance(payload, Learn):
            self._on_learn(payload)
        elif isinstance(payload, NewBallot):
            self._on_new_ballot(payload)
        elif isinstance(payload, Promise):
            self._on_promise(payload)

    # -- phase 2 (common case) ---------------------------------------------
    def propose_batch(self, seqno: int, batch: Batch) -> None:
        digest = self.batch_digest(batch)
        self._proposed[seqno] = batch
        self._acks[seqno] = set()
        # The leader accepts its own proposal (it is one of the majority
        # counted in ``_on_accepted``).  Recording it here means a later
        # ballot's merge re-proposes in-flight batches instead of losing
        # them -- their rids are already in the sequencer's seen set, so client
        # retransmissions alone could never resurrect them.
        self._accepted[seqno] = (self.view, batch)
        accept = Accept(self.view, seqno, batch, digest)
        acceptors = [f"r{a}" for a in self.common_case_acceptors()]
        self.multicast_authenticated(acceptors, accept,
                                     size_bytes=batch.size_bytes)

    def _on_accept(self, src: str, m: Accept) -> None:
        if m.view < self.view:
            return  # stale ballot
        if m.view > self.view:
            self.view = m.view  # adopt the higher ballot
        self.cpu.charge_mac(m.batch.size_bytes)
        self._accepted[m.seqno] = (m.view, m.batch)
        self._election_timer.stop()
        # Acceptors execute on accept: the stable leader's order is
        # authoritative in the common case.
        self.commit_batch(m.seqno, m.batch)
        self.send_authenticated(
            f"r{self.leader_id}",
            Accepted(m.view, m.seqno, m.batch_digest, self.replica_id),
            size_bytes=48)

    def _on_accepted(self, m: Accepted) -> None:
        if m.view != self.view or not self.is_leader:
            return
        self.cpu.charge_mac(48)
        acks = self._acks.get(m.seqno)
        if acks is None:
            return
        acks.add(m.sender)
        if len(acks) >= self.config.t:  # leader + t = majority
            batch = self._proposed.pop(m.seqno, None)
            self._acks.pop(m.seqno, None)
            if batch is None:
                return
            self.commit_batch(m.seqno, batch)
            learn = Learn(self.view, m.seqno, batch)
            passives = [f"r{p}" for p in self.passive_ids()]
            self.multicast_authenticated(passives, learn,
                                         size_bytes=batch.size_bytes)

    def _on_learn(self, m: Learn) -> None:
        self.cpu.charge_mac(m.batch.size_bytes)
        self._accepted[m.seqno] = (m.view, m.batch)
        self.commit_batch(m.seqno, m.batch)

    def after_execute(self, seqno: int, batch: Batch,
                      results: List[Any]) -> None:
        # Only the leader answers clients (CFT: one reply suffices), but
        # every replica caches its replies for dedup and failover.
        self._election_timer.stop()
        if self.is_leader:
            self.reply_to_clients(seqno, batch, results)
        else:
            for request, result in zip(batch, results):
                self._last_reply[request.client] = GenericReply(
                    replica=self.replica_id, view=self.view, seqno=seqno,
                    timestamp=request.timestamp, client=request.client,
                    result=result, result_digest=digest_of(result))

    def on_enter_view(self, view: int) -> None:
        # Adopting a ballot someone else established (e.g. via a recovery
        # sync): drop in-flight proposals and any stale campaign of our
        # own -- winning it later would roll the view back.
        self._proposed.clear()
        self._acks.clear()
        if self._pending_ballot is not None and self._pending_ballot <= view:
            self._pending_ballot = None
            self._promises = {}

    # -- phase 1 (leader failover) -------------------------------------------
    def suspect_view(self, view: int) -> None:
        """The leader did not commit a retried request in time (or the
        fault injector scripted a suspicion): campaign for the next
        ballot whose leader is this replica."""
        if view < self.view:
            return
        assert self.config.n is not None
        ballot = self.view + 1
        while ballot % self.config.n != self.replica_id:
            ballot += 1
        self.elections_started += 1
        self._pending_ballot = ballot
        self._promises = {}
        message = NewBallot(ballot, self.replica_id)
        self._fanout_with_self(self.all_replica_names(), message, 32,
                               lambda: self._on_new_ballot(message))
        # If the campaign stalls (e.g. competing ballots), try again.
        self._election_timer.start(2 * self.config.request_retransmit_ms)

    def _on_new_ballot(self, m: NewBallot) -> None:
        if m.view <= self.view and m.sender != self.replica_id:
            return  # stale campaign
        if m.view > self.view:
            self.view = m.view
            self.sequencer.stop_timer()
            self._proposed.clear()
            self._acks.clear()
            if m.sender != self.replica_id:
                # A fresher campaign is under way: abandon any stale one
                # of our own (winning it later would roll the view back)
                # and give the campaigner a grace period before we run
                # against it -- forwarding a stalled client request
                # re-arms the timer if the new leader fails to deliver.
                if self._pending_ballot is not None \
                        and m.view > self._pending_ballot:
                    self._pending_ballot = None
                self._election_timer.stop()
        # Ship every retained accepted entry: the new leader's merge picks
        # the highest-ballot value per slot and discards what it already
        # executed, so over-reporting is safe and simplest.
        entries = tuple(
            (seqno, ballot, batch)
            for seqno, (ballot, batch) in sorted(self._accepted.items()))
        promise = Promise(m.view, self.replica_id, entries, self.ex)
        if m.sender == self.replica_id:
            self._on_promise(promise)
        else:
            self.send_authenticated(f"r{m.sender}", promise, size_bytes=256)

    def _on_promise(self, m: Promise) -> None:
        if self._pending_ballot is None or m.view != self._pending_ballot:
            return
        self._promises[m.sender] = m
        if len(self._promises) < self.config.quorum:
            return
        # Majority promised: become leader of the new ballot.
        ballot = self._pending_ballot
        self._pending_ballot = None
        self.view = ballot
        self.view_changes_completed += 1
        self._election_timer.stop()
        # Merge: per slot, the entry accepted at the highest ballot wins.
        merged: Dict[int, Tuple[int, Batch]] = {}
        for promise in self._promises.values():
            for seqno, accepted_ballot, batch in promise.entries:
                current = merged.get(seqno)
                if current is None or accepted_ballot > current[0]:
                    merged[seqno] = (accepted_ballot, batch)
        self._promises = {}
        # Re-propose merged entries above our execution horizon, then
        # resume normal operation; sequence numbering continues after the
        # highest merged slot.
        highest = max(merged, default=self.ex)
        self.sn = max(self.sn, highest, self.ex)
        for seqno in sorted(merged):
            if seqno <= self.ex and seqno in self.commit_log:
                continue
            _, batch = merged[seqno]
            self.propose_batch(seqno, batch)
        # Merged re-proposals are carried state, outside the pipeline
        # window; requests queued while campaigning flow through a flush.
        self.sequencer.carry_over()
        self.sequencer.kick()