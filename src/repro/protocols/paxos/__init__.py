"""WAN-optimized multi-Paxos (the paper's CFT baseline, Figure 6c)."""

from repro.protocols.paxos.replica import PaxosReplica
from repro.protocols.paxos.client import PaxosClient

__all__ = ["PaxosReplica", "PaxosClient"]
